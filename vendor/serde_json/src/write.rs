//! JSON text emission.

use serde::Value;
use std::fmt::Write as _;

/// Compact (single-line) JSON.
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty-printed JSON with two-space indentation.
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's shortest-roundtrip Display; force a fraction so the text
        // reparses as a float.
        let s = format!("{f}");
        let is_integral = !s.contains(['.', 'e', 'E']);
        out.push_str(&s);
        if is_integral {
            out.push_str(".0");
        }
    } else {
        // Real serde_json maps non-finite floats to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
