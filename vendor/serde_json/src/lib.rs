//! Workspace-local, offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the
//! vendored serde stand-in's value tree. The emitted text is ordinary
//! JSON; field order follows declaration order, so output is
//! deterministic.

#![forbid(unsafe_code)]

mod parse;
mod write;

use serde::{Deserialize, Serialize};
use std::fmt;

pub use parse::parse_value;

/// A JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Never fails for types produced by the workspace's derives; the
/// `Result` mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::compact(&value.to_value()))
}

/// Serializes `value` as indented JSON.
///
/// # Errors
/// Never fails for types produced by the workspace's derives.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::pretty(&value.to_value()))
}

/// Deserializes a `T` from JSON text.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse_value(s)?;
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            assert_eq!(write::compact(&v), json, "roundtrip of {json}");
        }
    }

    #[test]
    fn roundtrip_structures() {
        let json = r#"{"a":[1,2,3],"b":{"x":null},"c":"q\"uote"}"#;
        let v = parse_value(json).unwrap();
        assert_eq!(write::compact(&v), json);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = Value::Map(vec![
            (
                "k".into(),
                Value::Seq(vec![Value::U64(1), Value::Bool(true)]),
            ),
            ("s".into(), Value::Str("line\nbreak".into())),
        ]);
        let text = write::pretty(&v);
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<u64> = vec![3, 5, 8];
        let json = to_string(&xs).unwrap();
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_carry_context() {
        let e = from_str::<u64>("[1]").unwrap_err();
        assert!(e.to_string().contains("expected"));
        assert!(parse_value("{bad").is_err());
        assert!(parse_value("1 trailing").is_err());
    }
}
