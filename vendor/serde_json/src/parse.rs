//! A recursive-descent JSON parser producing `serde::Value` trees.

use crate::Error;
use serde::Value;

/// Parses one complete JSON document.
///
/// # Errors
/// On malformed JSON or trailing content.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced the cursor
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (cursor on the `u`),
    /// including surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.eat(b'u')?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            Err(self.err("unpaired surrogate in \\u escape"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err(&format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // `-0` normalizes to unsigned zero.
            match stripped.parse::<u64>() {
                Ok(0) => Ok(Value::U64(0)),
                _ => text
                    .parse::<i64>()
                    .map(Value::I64)
                    .map_err(|_| self.err(&format!("integer `{text}` out of range"))),
            }
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err(&format!("integer `{text}` out of range")))
        }
    }
}
