//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::TestRng;

/// Length bounds accepted by [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec: empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "vec: empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
