//! Workspace-local, offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/tuple/`Just`/union/vec
//! strategies, `any::<T>()`, and the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its assertion message
//!   (tests here embed their seeds/inputs in those messages).
//! * **Deterministic cases** — inputs derive from a hash of the test's
//!   module path and the case index, so runs are reproducible without a
//!   persistence file; `*.proptest-regressions` files are not consumed.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub use strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};

/// Per-test configuration (`cases` is the number of random inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic RNG strategies sample from.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one `(test, case)` pair: stable across runs, distinct
    /// across tests and cases.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Compatibility alias module: lets tests write `prop::collection::vec`.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface tests pull in.
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{prop, ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts inside a `proptest!` body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times over deterministically sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..100, any::<bool>());
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn union_samples_every_arm() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::for_case("u", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let s = crate::collection::vec(0u8..10, 2..5);
        let mut rng = TestRng::for_case("v", 1);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_maps(x in 0u64..50, flip in any::<bool>(), y in (1u8..4).prop_map(u64::from)) {
            prop_assert!(x < 50);
            prop_assert!((1..4).contains(&y));
            prop_assert_eq!(flip, flip);
        }
    }
}
