//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically samples one value per call from a
//! [`TestRng`]; composition mirrors real proptest (`prop_map`, tuples,
//! unions, `Just`) minus shrinking.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::{Rng, SampleRange};

use crate::TestRng;

/// Something that can produce values of [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy whose values are `f` applied to this one's.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe core of [`Strategy`], so unions can hold mixed concrete
/// strategy types behind one value type.
pub trait DynStrategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.as_ref().generate_dyn(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms.
    ///
    /// # Panics
    /// If `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "Union needs at least one strategy");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-domain sampling for a type ([`any`]).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over a type's whole domain (`any::<u64>()`, `any::<bool>()`).
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_via_next_u64 {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let conv: fn(u64) -> $t = $conv;
                conv(rand::RngCore::next_u64(rng))
            }
        }
    )*};
}

any_via_next_u64! {
    bool => |bits| bits & 1 == 1,
    u8 => |bits| bits as u8,
    u16 => |bits| bits as u16,
    u32 => |bits| bits as u32,
    u64 => |bits| bits,
    usize => |bits| bits as usize,
    i8 => |bits| bits as i8,
    i16 => |bits| bits as i16,
    i32 => |bits| bits as i32,
    i64 => |bits| bits as i64,
    isize => |bits| bits as isize,
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample(rng)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample(rng)
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.clone().sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
