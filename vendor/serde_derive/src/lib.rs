//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde
//! stand-in.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are not
//! available offline, so this macro parses the item's token stream by
//! hand. It supports what the workspace uses: non-generic structs (named,
//! tuple/newtype, unit) and enums (unit, tuple, and struct variants).
//! Field *types* never need to be understood — generated code just calls
//! the `Serialize`/`Deserialize` trait methods on each field — so the
//! parser only extracts names and field counts and skips types with a
//! small angle-bracket-depth scanner.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed `struct`/`enum` item.
struct Adt {
    name: String,
    kind: AdtKind,
}

enum AdtKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

enum Fields {
    Unit,
    /// Tuple fields; only the count matters.
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let adt = parse_adt(input);
    gen_serialize(&adt).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let adt = parse_adt(input);
    gen_deserialize(&adt)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips any number of `#[...]` attributes (including doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                other => panic!("serde derive: expected attribute body, found {other:?}"),
            }
        }
    }

    /// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Skips tokens until a top-level `,` (consumed) or the end, tracking
    /// `<...>` nesting so commas inside generic arguments don't terminate
    /// early. Delimited groups arrive as single atomic tokens.
    fn skip_past_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_adt(input: TokenStream) -> Adt {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        assert!(
            p.as_char() != '<',
            "serde derive: generic type `{name}` is not supported by the offline serde stand-in"
        );
    }
    let kind = match keyword.as_str() {
        "struct" => AdtKind::Struct(match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }),
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                AdtKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Adt { name, kind }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_past_comma(); // the type
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.at_end() {
            break;
        }
        c.skip_past_comma(); // the type
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        c.skip_past_comma();
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(adt: &Adt) -> String {
    let name = &adt.name;
    let body = match &adt.kind {
        AdtKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        AdtKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        AdtKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        AdtKind::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        AdtKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {payload})]),",
                            binds = binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(adt: &Adt) -> String {
    let name = &adt.name;
    let body = match &adt.kind {
        AdtKind::Struct(Fields::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        AdtKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        AdtKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "{{ let items = ::serde::derive_support::seq(v, \"{name}\", {n})?; \
                 Ok({name}({})) }}",
                items.join(", ")
            )
        }
        AdtKind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::derive_support::field(v, \"{name}\", \"{f}\")?)?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        AdtKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "\"{v}\" => if payload.is_none() {{ Ok({name}::{v}) }} else {{ \
                         Err(::serde::derive_support::bad_payload(\"{name}\", \"{v}\")) }},"
                    ),
                    Fields::Tuple(1) => format!(
                        "\"{v}\" => {{ let p = payload.ok_or_else(|| \
                         ::serde::derive_support::bad_payload(\"{name}\", \"{v}\"))?; \
                         Ok({name}::{v}(::serde::Deserialize::from_value(p)?)) }},"
                    ),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "\"{v}\" => {{ let p = payload.ok_or_else(|| \
                             ::serde::derive_support::bad_payload(\"{name}\", \"{v}\"))?; \
                             let items = ::serde::derive_support::seq(p, \"{name}\", {n})?; \
                             Ok({name}::{v}({})) }},",
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     ::serde::derive_support::field(p, \"{name}::{v}\", \
                                     \"{f}\")?)?"
                                )
                            })
                            .collect();
                        format!(
                            "\"{v}\" => {{ let p = payload.ok_or_else(|| \
                             ::serde::derive_support::bad_payload(\"{name}\", \"{v}\"))?; \
                             Ok({name}::{v} {{ {} }}) }},",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "{{ let (variant, payload) = ::serde::derive_support::enum_parts(v, \"{name}\")?; \
                 match variant {{ {} other => \
                 Err(::serde::derive_support::unknown_variant(\"{name}\", other)), }} }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{ {body} }} }}"
    )
}
