//! Workspace-local, offline stand-in for the `criterion` crate.
//!
//! Provides the subset the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_with_input` / `bench_function`,
//! `Throughput::Elements`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring with plain
//! `std::time::Instant` and printing one summary line per benchmark
//! (median / min / max per iteration, plus element throughput when
//! declared). No statistical analysis, HTML reports, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle; tracks measurement settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_iters: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_iters: 2,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    /// If `n` is zero.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, warm_up) = (self.sample_size, self.warm_up_iters);
        run_one(name, sample_size, warm_up, None, f);
        self
    }
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times `f` with access to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.warm_up_iters,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Times `f` under `name` within this group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(
            &label,
            self.criterion.sample_size,
            self.criterion.warm_up_iters,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_iters: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.warm_up_iters {
            black_box(routine());
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    warm_up_iters: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_iters,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no measurement: iter() never called)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  thrpt: {:>10.1} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  thrpt: {:>10.1} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; nothing to
            // parse since this stand-in always runs every benchmark.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            });
        });
        // 2 warm-up + 5 timed iterations.
        assert_eq!(runs, 7);
    }

    #[test]
    fn group_with_input_passes_input_through() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        let mut seen = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 4u64), &4u64, |b, &n| {
            b.iter(|| {
                seen = n;
                black_box(seen)
            });
        });
        g.finish();
        assert_eq!(seen, 4);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(1)), "1.00 s");
    }
}
