//! Workspace-local, offline stand-in for the `rand` crate.
//!
//! Workload generators only need a deterministic, seedable PRNG with
//! `gen_range` / `gen` / `gen_bool`; this provides exactly that surface
//! on a xoshiro256++ generator. Streams differ from the real `rand`
//! crate's `StdRng` (which is explicitly not reproducible across
//! versions anyway); everything in this workspace derives its expected
//! values from the generator itself, not from golden streams.

#![forbid(unsafe_code)]

pub mod rngs;

/// Low-level entropy source: everything is built on `next_u64`.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `rand` subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A sample of the type's full "standard" distribution
    /// (`bool` = fair coin, integers = uniform over the domain,
    /// `f64` = uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&heads), "suspicious coin: {heads}");
    }
}
