//! The `Serialize` trait and impls for primitives and std collections.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types usable as map keys (serialized maps carry string keys).
pub trait MapKey {
    /// The key's string form.
    fn to_key(&self) -> String;
    /// Parses the string form back.
    fn from_key(s: &str) -> Result<Self, crate::Error>
    where
        Self: Sized;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, crate::Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, crate::Error> {
                s.parse()
                    .map_err(|_| crate::Error::new(format!("invalid integer map key `{s}`")))
            }
        }
    )*};
}
int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
