//! Deserialization/serialization error type.

use std::fmt;

/// A (de)serialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
