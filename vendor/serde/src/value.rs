//! The self-describing value tree all (de)serialization goes through.

/// A serialized value. JSON-shaped: maps carry string keys and preserve
/// insertion order so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` / `None` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negative integers use `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, `Vec`).
    Seq(Vec<Value>),
    /// Ordered string-keyed map (structs, maps, enum payloads).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short human label for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}
