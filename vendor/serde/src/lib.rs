//! Workspace-local, offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of serde it actually uses: `Serialize` /
//! `Deserialize` traits (implemented through a self-describing [`Value`]
//! tree rather than serde's visitor machinery), derive macros for structs
//! and enums, and enough primitive/collection impls for the simulator's
//! reports, configurations, and sweep specifications.
//!
//! The external API mirrors real serde where the workspace touches it:
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}`, and `serde_json::{to_string, to_string_pretty,
//! from_str}`. Swapping the real crates back in requires only restoring
//! the registry dependencies in the workspace manifest.

#![forbid(unsafe_code)]

mod de;
mod error;
mod ser;
mod value;

pub use de::Deserialize;
pub use error::Error;
pub use ser::Serialize;
pub use value::Value;

// Derive macros. Rust resolves the macro and trait namespaces
// independently, so `serde::Serialize` works in both positions, exactly
// like the real crate.
pub use serde_derive::{Deserialize, Serialize};

/// Helpers used by the generated derive code. Not part of the public API.
#[doc(hidden)]
pub mod derive_support {
    use crate::{Error, Value};

    /// Looks up a struct field in a serialized map.
    pub fn field<'v>(v: &'v Value, ty: &str, name: &str) -> Result<&'v Value, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("{ty}: missing field `{name}`"))),
            other => Err(Error::new(format!(
                "{ty}: expected a map, found {}",
                other.kind()
            ))),
        }
    }

    /// Splits an enum value into `(variant_name, payload)`. Unit variants
    /// are encoded as a bare string, data variants as a single-entry map
    /// (serde's externally-tagged representation).
    pub fn enum_parts<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, Option<&'v Value>), Error> {
        match v {
            Value::Str(s) => Ok((s.as_str(), None)),
            Value::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::new(format!(
                "{ty}: expected a variant string or single-entry map, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts the payload sequence of a tuple variant / tuple struct.
    pub fn seq<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
        match v {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => Err(Error::new(format!(
                "{ty}: expected {len} elements, found {}",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "{ty}: expected a sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Error for an unknown enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Error {
        Error::new(format!("{ty}: unknown variant `{variant}`"))
    }

    /// Error for a variant whose payload shape is wrong.
    pub fn bad_payload(ty: &str, variant: &str) -> Error {
        Error::new(format!("{ty}: malformed payload for variant `{variant}`"))
    }
}
