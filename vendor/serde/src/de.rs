//! The `Deserialize` trait and impls for primitives and std collections.

use crate::error::Error;
use crate::ser::MapKey;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::hash::Hash;

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    ///
    /// # Errors
    /// When `v` does not have the shape this type serializes to.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn mismatch(expected: &str, found: &Value) -> Error {
    Error::new(format!("expected {expected}, found {}", found.kind()))
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(mismatch("bool", other)),
        }
    }
}

fn as_u64(v: &Value) -> Result<u64, Error> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        other => Err(mismatch("unsigned integer", other)),
    }
}

fn as_i64(v: &Value) -> Result<i64, Error> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::F64(f) if f.fract() == 0.0 => Ok(*f as i64),
        other => Err(mismatch("integer", other)),
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = as_u64(v)?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = as_i64(v)?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(mismatch("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(mismatch("single-character string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(mismatch("string", other)),
        }
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(mismatch("null", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

fn de_seq<T: Deserialize>(v: &Value) -> Result<Vec<T>, Error> {
    match v {
        Value::Seq(items) => items.iter().map(T::from_value).collect(),
        other => Err(mismatch("sequence", other)),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_seq(v)
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_seq(v).map(VecDeque::from)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = de_seq(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected {N} elements, found {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+; $len:expr))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(mismatch(concat!($len, "-element sequence"), other)),
                }
            }
        }
    )*};
}
de_tuple! {
    (0 A; 1)
    (0 A, 1 B; 2)
    (0 A, 1 B, 2 C; 3)
    (0 A, 1 B, 2 C, 3 D; 4)
    (0 A, 1 B, 2 C, 3 D, 4 E; 5)
}

fn de_map_entries<K: MapKey, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect(),
        other => Err(mismatch("map", other)),
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_map_entries(v).map(|e| e.into_iter().collect())
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_map_entries(v).map(|e| e.into_iter().collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        de_seq(v).map(|items: Vec<T>| items.into_iter().collect())
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
