//! Litmus laboratory: run the classic consistency tests under every
//! model × technique combination and report, for each execution, whether
//! the final state was sequentially consistent (checked against the
//! exhaustive interleaving oracle).
//!
//! Expected picture:
//! * under SC, every cell is `SC` — the techniques never break the model
//!   (the paper's §4.2 correctness argument, machine-checked);
//! * under relaxed models, racy tests may show `relaxed` cells — that is
//!   the model doing what it is allowed to do;
//! * data-race-free tests (message passing) are `SC` everywhere (§5).
//!
//! ```sh
//! cargo run --example litmus_lab
//! ```

use mcsim::sim::MachineConfig;
use mcsim::workloads::litmus;
use mcsim_consistency::Model;
use mcsim_proc::Techniques;

fn main() {
    let techs = [Techniques::NONE, Techniques::BOTH];
    for test in litmus::standard_suite() {
        println!("== {} ==", test.name);
        print!("{:<6}", "model");
        for t in techs {
            print!(" {:>12}", t.label());
        }
        println!();
        for model in Model::ALL {
            print!("{:<6}", model.name());
            for t in techs {
                let report = test.run(MachineConfig::paper_with(model, t));
                let verdict = if report.timed_out {
                    "timeout"
                } else if test.is_sequentially_consistent(&report) {
                    "SC"
                } else {
                    "relaxed"
                };
                print!(" {verdict:>12}");
                if model == Model::Sc {
                    assert_eq!(verdict, "SC", "{}: SC must stay SC", test.name);
                }
            }
            println!();
        }
        println!();
    }
    println!("every SC row reads `SC`: prefetching and speculation preserved the");
    println!("model on every test, exactly as the detection mechanism promises.");
}
