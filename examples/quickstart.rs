//! Quickstart: build a small shared-memory program, run it under a
//! consistency model with the paper's two techniques, and inspect the
//! result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mcsim::prelude::*;
use mcsim::sim::MachineConfig;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R2, R3};
use mcsim_isa::AluOp;

fn main() {
    // A producer updating a record under a lock: the paper's central
    // motif. The builder's `lock`/`unlock` expand to a test-and-set
    // acquire RMW with a spin branch (predicted to succeed) and a release
    // store.
    let program = ProgramBuilder::new("quickstart")
        .lock(0x40, R1)
        .load(R2, 0x1000u64) // read the old record value
        .alu(R3, AluOp::Add, R2, 7u64)
        .store(0x1000u64, R3) // write it back
        .store(0x1080u64, 1u64) // set a companion field
        .unlock(0x40)
        .halt()
        .build()
        .expect("valid program");

    println!("program:\n{program}");

    // Run the same program under the strictest model (SC), conventionally
    // and with the paper's techniques, and under release consistency.
    for (model, t) in [
        (Model::Sc, Techniques::NONE),
        (Model::Sc, Techniques::BOTH),
        (Model::Rc, Techniques::NONE),
        (Model::Rc, Techniques::BOTH),
    ] {
        let cfg = MachineConfig::paper_with(model, t);
        let mut machine = Machine::new(cfg, vec![program.clone()]);
        machine.write_memory(0x1000u64, 35);
        let report = machine.run();
        println!(
            "{} / {:<8} -> {:>4} cycles | record = {}",
            model,
            t.label(),
            report.cycles,
            report.mem_word(0x1000),
        );
        assert_eq!(report.mem_word(0x1000), 42);
    }

    println!();
    println!("note how SC+pf+spec reaches RC-class performance — the paper's point.");
}
