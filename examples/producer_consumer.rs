//! A two-processor producer/consumer hand-off, written in the textual
//! assembly dialect, run across the full model × technique matrix.
//!
//! The producer fills a record and raises a flag with a release store;
//! the consumer spins on the flag with acquire loads and then reads the
//! record. This is a data-race-free program, so *every* model must
//! deliver the same (sequentially consistent) result — only the cycle
//! counts differ, and the techniques collapse those differences.
//!
//! ```sh
//! cargo run --example producer_consumer
//! ```

use mcsim::prelude::*;
use mcsim::sim::MachineConfig;
use mcsim_consistency::Model;
use mcsim_isa::asm::assemble;
use mcsim_isa::reg::{R2, R3};

const PRODUCER: &str = r"
    ; fill the record, then publish it
    st      [0x1000], 11
    st      [0x1080], 22
    st      [0x1100], 33
    st.rel  [0x2000], 1       ; flag := 1 (release)
    halt
";

const CONSUMER: &str = r"
    spin:
    ld.acq  r1, [0x2000]      ; wait for the flag (acquire)
    bne.nt  r1, 1, spin       ; predicted to succeed
    ld      r2, [0x1000]
    ld      r3, [0x1080]
    ld      r4, [0x1100]
    halt
";

fn main() {
    let producer = assemble("producer", PRODUCER).expect("assembles");
    let consumer = assemble("consumer", CONSUMER).expect("assembles");

    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "model", "base", "prefetch", "spec", "pf+spec"
    );
    for model in Model::ALL {
        print!("{:<6}", model.name());
        for t in Techniques::ALL {
            let cfg = MachineConfig::paper_with(model, t);
            let report = Machine::new(cfg, vec![producer.clone(), consumer.clone()]).run();
            assert!(!report.timed_out);
            // DRF program: the consumer must always see the full record.
            assert_eq!(report.reg(1, R2), 11, "{model}/{t}");
            assert_eq!(report.reg(1, R3), 22, "{model}/{t}");
            print!(" {:>10}", report.cycles);
        }
        println!();
    }
    println!("\nevery cell saw the complete record (11/22/33) — data-race freedom");
    println!("makes the model invisible to the program, and the techniques make");
    println!("it nearly invisible to performance too.");
}
