//! The equalization experiment as a runnable demo: sweep the model ×
//! technique matrix over a critical-section workload and watch the gap
//! between SC and RC collapse (§5: "the performance of different
//! consistency models is equalized once these techniques are employed").
//!
//! ```sh
//! cargo run --example equalize
//! ```

use mcsim::sim::MachineConfig;
use mcsim_consistency::Model;
use mcsim_core::{format_table, model_spread, run_matrix};
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{critical_sections, CriticalSections};

fn main() {
    for (label, private) in [
        (
            "latency-dominated (private regions — the paper's setting)",
            true,
        ),
        (
            "sharing-dominated (regions rotate across processors)",
            false,
        ),
    ] {
        let params = CriticalSections {
            procs: 2,
            sections: 6,
            reads: 4,
            writes: 4,
            locks: 2,
            lines_per_region: 16,
            think: 0,
            private_regions: private,
            seed: 42,
        };
        let rows = run_matrix(
            &MachineConfig::paper(),
            &Model::ALL,
            &Techniques::ALL,
            || critical_sections(&params),
            |_| {},
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        println!("{}", format_table(label, &rows));
        for t in Techniques::ALL {
            let spread = model_spread(&rows, t) * 100.0;
            let bar = "#".repeat((spread / 2.0).round() as usize);
            println!(
                "spread across models, {:<8}: {:>5.1}% {bar}",
                t.label(),
                spread
            );
        }
        println!();
    }
    println!("in the latency-dominated case the `pf+spec` column equalizes the");
    println!("models — the paper's claim. Under heavy sharing the techniques still");
    println!("speed every model up, but invalidation traffic keeps a residual gap.");
}
