; One stage of a producer/consumer hand-off: spin on a flag with acquire
; loads, then read the record. Pair with producer.s on processor 0.
spin:
  ld.acq  r1, [0x2000]
  bne.nt  r1, 1, spin
  ld      r2, [0x1000]
  ld      r3, [0x1080]
  halt
