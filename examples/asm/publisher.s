; Producer half of the hand-off: fill the record, then release the flag.
  st      [0x1000], 11
  st      [0x1080], 22
  st.rel  [0x2000], 1
  halt
