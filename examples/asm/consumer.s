; Example 2 of the paper: a consumer reading inside a critical section,
; with a dependent array access E[D].
  tas     r1, [0x40], 0
  bne.nt  r1, 0, @0
  ld      r2, [0x1100]        ; read C (miss)
  ld      r3, [0x1180]        ; read D
  ld      r4, [0x2000+r3*8]   ; read E[D]
  st.rel  [0x40], 0
  halt
