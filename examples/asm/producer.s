; Example 1 of the paper: a producer updating two locations inside a
; critical section. lock L (miss); write A; write B; unlock L (hit).
  tas     r1, [0x40], 0       ; lock L (acquire by default)
  bne.nt  r1, 0, @0           ; spin, predicted to succeed
  st      [0x1000], 1         ; write A
  st      [0x1080], 2         ; write B
  st.rel  [0x40], 0           ; unlock L
  halt
