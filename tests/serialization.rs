//! Reports and configurations are part of the public API surface (the
//! CLI's `--json`, experiment archiving); pin that they serialize and
//! round-trip.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::paper;
use mcsim_consistency::Model;

#[test]
fn run_report_roundtrips_through_json() {
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let mut m = Machine::new(cfg, vec![paper::example2()]);
    paper::setup_example2(&mut m);
    let report = m.run();
    let json = serde_json::to_string(&report).expect("serializes");
    let back: mcsim::sim::RunReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.cycles, report.cycles);
    assert_eq!(back.total.speculative_loads, report.total.speculative_loads);
    assert_eq!(back.memory, report.memory);
    assert!(!report.trace.is_empty(), "tracing was enabled");
    assert_eq!(back.trace, report.trace);
    assert_eq!(
        back.regfiles[0].read(mcsim_isa::reg::R4),
        report.regfiles[0].read(mcsim_isa::reg::R4)
    );
}

#[test]
fn machine_config_roundtrips_through_json() {
    let mut cfg = Cfg::paper_with(Model::RcSc, Techniques::PREFETCH);
    cfg.mem.protocol = mcsim_mem::Protocol::Update;
    cfg.proc.rob_size = 17;
    cfg.proc.exact_update_check = true;
    let json = serde_json::to_string(&cfg).expect("serializes");
    let back: Cfg = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, cfg);
}

#[test]
fn programs_roundtrip_through_json() {
    let p = paper::example2();
    let json = serde_json::to_string(&p).expect("serializes");
    let back: mcsim_isa::Program = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.instrs(), p.instrs());
}

#[test]
fn deterministic_across_runs() {
    // Two identical machines produce byte-identical reports — the whole
    // simulator is deterministic (no ambient randomness or clocks).
    let run = || {
        let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
        cfg.trace = true;
        let mut m = Machine::new(cfg, vec![paper::example2()]);
        paper::setup_example2(&mut m);
        serde_json::to_string(&m.run()).unwrap()
    };
    assert_eq!(run(), run());
}
