//! Footnote 2 of the paper: the detection mechanism "conservatively
//! assume[s] the speculated value is incorrect" when the coherence event
//! is due to false sharing or writes the same value. Under the *update*
//! protocol the event names the written word and value, so those two
//! provably-safe cases can be discriminated — the `exact_update_check`
//! ablation. These tests pin both behaviors.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R2, R3};
use mcsim_isa::{AluOp, Program};
use mcsim_mem::Protocol;

const SLOW: u64 = 0x5000; // a miss that keeps the spec buffer occupied
const LINE_BASE: u64 = 0x6000; // the contested line
const W0: u64 = LINE_BASE; // word the victim speculatively reads
const W1: u64 = LINE_BASE + 8; // different word of the same line

fn victim() -> Program {
    // The store goes to a line with a remote sharer: under the update
    // protocol that costs the full acknowledgement round trip (198
    // cycles). Under SC the later load's spec-buffer entry carries this
    // store as its tag, so the entry stays unretired — and vulnerable —
    // until cycle ~198, long enough for the writer's update (~cycle 120)
    // to hit it.
    ProgramBuilder::new("victim")
        .store(SLOW, 5u64)
        .load(R2, W0) // hit: speculative value consumed immediately
        .alu(R3, AluOp::Add, R2, 1u64) // consume it
        .halt()
        .build()
        .unwrap()
}

fn writer(target: u64, value: u64) -> Program {
    ProgramBuilder::new("writer")
        .alu_lat(R1, AluOp::Add, 0u64, 0u64, 20) // fire mid-window
        .alu(R2, AluOp::Add, R1, value)
        .store(target, R2)
        .halt()
        .build()
        .unwrap()
}

fn run(target: u64, value: u64, exact: bool) -> mcsim::sim::RunReport {
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::SPECULATION);
    cfg.mem.protocol = Protocol::Update;
    cfg.proc.exact_update_check = exact;
    // A third (idle) processor shares SLOW's line so the victim's
    // blocking store pays the remote-ack round trip (198 cycles) — a wide
    // enough window for the update hazard (~120 cycles in) to land while
    // the speculative entry is still unretired.
    let mut m = Machine::new(
        cfg,
        vec![victim(), writer(target, value), mcsim_isa::Program::idle()],
    );
    m.write_memory(W0, 7);
    m.write_memory(SLOW, 1);
    m.preload_cache(0, W0, false); // victim holds the contested line shared
    m.preload_cache(2, SLOW, false); // remote sharer slows the blocker...
    let report = m.run();
    assert!(!report.timed_out);
    report
}

#[test]
fn false_sharing_conservatively_rolls_back() {
    // The writer touches a *different word* of the line; the paper's
    // conservative detection still treats it as a violation.
    let r = run(W1, 99, false);
    assert_eq!(r.per_proc[0].rollbacks, 1, "conservative: rollback");
    assert_eq!(r.reg(0, R2), 7, "value is correct either way");
}

#[test]
fn false_sharing_filtered_by_exact_check() {
    let r = run(W1, 99, true);
    assert_eq!(r.per_proc[0].rollbacks, 0, "exact check: no rollback");
    assert_eq!(r.per_proc[0].hazards_filtered, 1);
    assert_eq!(r.reg(0, R2), 7);
}

#[test]
fn same_value_write_filtered_by_exact_check() {
    // The writer writes the *same value* to the speculated word.
    let conservative = run(W0, 7, false);
    assert_eq!(conservative.per_proc[0].rollbacks, 1);
    assert_eq!(conservative.reg(0, R2), 7);

    let exact = run(W0, 7, true);
    assert_eq!(exact.per_proc[0].rollbacks, 0);
    assert_eq!(exact.per_proc[0].hazards_filtered, 1);
    assert_eq!(exact.reg(0, R2), 7);
}

#[test]
fn different_value_write_still_detected_with_exact_check() {
    // A genuinely conflicting write must trigger the rollback even with
    // the exact check on, and the re-executed load must see the new
    // value.
    let r = run(W0, 99, true);
    assert_eq!(r.per_proc[0].rollbacks, 1, "real conflict still detected");
    assert_eq!(r.reg(0, R2), 99, "re-executed load sees the new value");
}

#[test]
fn exact_check_results_match_conservative_results() {
    // The ablation may only change *performance* (rollback counts), never
    // architectural outcomes.
    for (target, value) in [(W1, 99), (W0, 7), (W0, 123)] {
        let a = run(target, value, false);
        let b = run(target, value, true);
        assert_eq!(a.reg(0, R2), b.reg(0, R2), "target {target:#x}");
        assert_eq!(a.reg(0, R3), b.reg(0, R3), "target {target:#x}");
        assert!(b.cycles <= a.cycles, "filtering never slows execution");
    }
}
