//! Event-horizon fast-forwarding must be invisible in every report.
//!
//! The machine loop skips quiescent spans (DESIGN.md §event-horizon) but
//! replays all per-cycle accounting — stall breakdowns, latency
//! histograms, invariant cadence, watchdog edges — so a [`RunReport`] is
//! **bit-identical** with skipping on or off. These tests pin that
//! equivalence:
//!
//! 1. serialized-report equality across random workloads × the full
//!    model × technique matrix (property-quantified);
//! 2. the Figure 2 cycle pins with fast-forward explicitly off (the
//!    default-on path is pinned by `paper_examples.rs`);
//! 3. watchdog edges that fall *inside* a skipped span still fire — the
//!    deadlock-classification regression for the old
//!    `cycle % window == 0` sampler, which never sees an edge cycle the
//!    loop does not step;
//! 4. telemetry consistency: stepped + skipped cycles equals the
//!    reported cycle count, and a miss-dominated workload actually skips.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::sim::{FaultKind, RunTelemetry, StallClass};
use mcsim::workloads::generators::{self, RandomParams};
use mcsim::workloads::paper;
use mcsim_consistency::Model;
use proptest::prelude::*;

/// Runs the same configuration with fast-forward on and off and returns
/// both (report, telemetry) pairs, after asserting the reports serialize
/// byte-identically and the telemetry covers the same span of time.
///
/// Tracing is forced on, so the byte comparison also proves the event
/// traces are identical across modes — quiescent spans emit no events by
/// construction, and their emission counters sit inside the quiescence
/// fingerprints, so a span that would emit is never skipped.
fn run_both(mut cfg: Cfg, programs: Vec<Program>) -> (RunReport, RunTelemetry) {
    cfg.trace = true;
    let (fast, fast_t) = Machine::new(cfg, programs.clone()).run_telemetry();
    let mut slow_machine = Machine::new(cfg, programs);
    slow_machine.set_fast_forward(false);
    let (slow, slow_t) = slow_machine.run_telemetry();
    let fast_json = serde_json::to_string(&fast).expect("serializes");
    let slow_json = serde_json::to_string(&slow).expect("serializes");
    assert_eq!(fast_json, slow_json, "reports must be bit-identical");
    assert!(
        !fast.trace.is_empty(),
        "tracing was on; the trace \
            comparison above must not be vacuous"
    );
    assert_eq!(slow_t.skipped_cycles, 0, "disabled means no skipping");
    assert_eq!(
        fast_t.stepped_cycles + fast_t.skipped_cycles,
        slow_t.stepped_cycles,
        "both modes must cover exactly the same simulated span"
    );
    (fast, fast_t)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn racy_reports_match_across_the_matrix(seed in 0u64..10_000) {
        let params = RandomParams { procs: 2, ops: 4, addrs: 3, seed };
        let programs = generators::random_racy(&params);
        for model in Model::ALL {
            for t in Techniques::ALL {
                run_both(Cfg::paper_with(model, t), programs.clone());
            }
        }
    }

    #[test]
    fn drf_reports_match_across_models(seed in 0u64..10_000) {
        let params = RandomParams { procs: 2, ops: 3, addrs: 2, seed };
        let programs = generators::random_drf(&params);
        for model in Model::ALL {
            run_both(Cfg::paper_with(model, Techniques::BOTH), programs.clone());
        }
    }

    #[test]
    fn reports_match_under_every_checking_cadence(seed in 0u64..10_000) {
        // The invariant-check cadence must be replayed exactly whatever
        // the period: sparse, never, and (in release) the default 1024.
        let params = RandomParams { procs: 2, ops: 4, addrs: 3, seed };
        let programs = generators::random_racy(&params);
        for period in [512, u64::MAX] {
            let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
            cfg.guard.invariant_period = period;
            run_both(cfg, programs.clone());
        }
    }
}

#[test]
fn figure2_pins_hold_with_fast_forward_off() {
    // The same table `paper_examples.rs` pins with the default-on fast
    // path, re-asserted with skipping disabled: the loop change must not
    // move a single paper number in either mode.
    let ex1 = |model, t| {
        let mut m = Machine::new(Cfg::paper_with(model, t), vec![paper::example1()]);
        m.set_fast_forward(false);
        m.run().cycles
    };
    let ex2 = |model, t| {
        let mut m = Machine::new(Cfg::paper_with(model, t), vec![paper::example2()]);
        paper::setup_example2(&mut m);
        m.set_fast_forward(false);
        m.run().cycles
    };
    assert_eq!(ex1(Model::Sc, Techniques::NONE), 301);
    assert_eq!(ex1(Model::Rc, Techniques::NONE), 202);
    assert_eq!(ex1(Model::Sc, Techniques::PREFETCH), 103);
    assert_eq!(ex1(Model::Rc, Techniques::PREFETCH), 103);
    assert_eq!(ex2(Model::Sc, Techniques::NONE), 302);
    assert_eq!(ex2(Model::Rc, Techniques::NONE), 203);
    assert_eq!(ex2(Model::Sc, Techniques::PREFETCH), 203);
    assert_eq!(ex2(Model::Rc, Techniques::PREFETCH), 202);
    assert_eq!(ex2(Model::Sc, Techniques::BOTH), 104);
    assert_eq!(ex2(Model::Rc, Techniques::BOTH), 104);
}

#[test]
fn figure2_examples_fast_forward_and_stay_identical() {
    // The paper walkthroughs are miss-dominated: most of their cycles
    // are quiescent waits on 100-cycle fills, so the fast path must
    // actually engage — while leaving the report untouched (run_both
    // asserts byte equality).
    let (report, telemetry) = run_both(
        Cfg::paper_with(Model::Sc, Techniques::NONE),
        vec![paper::example1()],
    );
    assert_eq!(report.cycles, 301);
    assert!(
        telemetry.skipped_cycles > report.cycles / 2,
        "example 1 is miss-dominated; skipped only {} of {}",
        telemetry.skipped_cycles,
        report.cycles
    );
    assert!(telemetry.spans > 0);
    assert!(telemetry.speedup() > 1.5);
}

#[test]
fn figure5_trace_is_identical_across_fast_forward_modes() {
    // The Figure 5 pair exercises every event family — speculative
    // loads, exclusive prefetches, a mid-flight invalidation with
    // rollback and reissue — on a miss-dominated (hence heavily
    // fast-forwarded) run with primed caches. Its merged trace must not
    // move by a single event between the two loop modes.
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let build = || {
        let mut m = Machine::new(
            cfg,
            vec![paper::figure5_main(), paper::figure5_antagonist(50, 5)],
        );
        paper::setup_figure5(&mut m, 5);
        m
    };
    let (fast, fast_t) = build().run_telemetry();
    let mut slow_machine = build();
    slow_machine.set_fast_forward(false);
    let (slow, _) = slow_machine.run_telemetry();
    assert!(fast_t.skipped_cycles > 0, "fast path must engage");
    assert!(!fast.trace.is_empty());
    assert_eq!(fast.trace, slow.trace, "merged traces must be identical");
    assert_eq!(fast.trace_dropped, 0);
}

#[test]
fn watchdog_fires_on_an_edge_the_loop_never_steps() {
    // A stuck MSHR freezes the only load: after the drop the machine is
    // totally quiescent with nothing scheduled, so the fast path jumps
    // straight toward max_cycles and the watchdog's window edge lies
    // strictly inside the skipped span. The old sampler (`cycle %
    // window == 0`, checked only on stepped cycles) never observes that
    // edge; edge-crossing sampling must still classify the deadlock at
    // exactly the cycle per-cycle stepping reports.
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
    cfg.guard.fault = Some(FaultKind::StuckMshr { nth: 1 });
    cfg.guard.watchdog_window = 1_000;
    cfg.max_cycles = 50_000;
    let prog = ProgramBuilder::new("stuck")
        .load(mcsim_isa::reg::R1, 0x4000u64)
        .halt()
        .build()
        .unwrap();
    let (report, telemetry) = run_both(cfg, vec![prog]);
    let failure = report.failure.as_ref().expect("watchdog must fire");
    let stall = failure.stall().expect("NoProgress expected");
    assert_eq!(stall.class, StallClass::Deadlock);
    assert_eq!(failure.cycle % 1_000, 0, "fires on a window edge");
    assert_eq!(report.cycles, failure.cycle);
    assert!(
        telemetry.stepped_cycles < failure.cycle,
        "the firing edge (cycle {}) must lie beyond the last stepped \
         cycle ({}) — i.e. inside a skipped span",
        failure.cycle,
        telemetry.stepped_cycles
    );
}

#[test]
fn timeout_telemetry_accounts_for_the_whole_span() {
    // An unsatisfied dependence with the watchdog disabled runs to the
    // plain timeout; the fast path must land on exactly max_cycles with
    // stepped + skipped covering it, and the report matching per-cycle.
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
    cfg.guard.fault = Some(FaultKind::StuckMshr { nth: 1 });
    cfg.guard.watchdog_window = 0;
    cfg.max_cycles = 5_000;
    let prog = ProgramBuilder::new("stuck")
        .load(mcsim_isa::reg::R1, 0x4000u64)
        .halt()
        .build()
        .unwrap();
    let (report, telemetry) = run_both(cfg, vec![prog]);
    assert!(report.timed_out);
    assert_eq!(report.cycles, 5_000);
    assert!(telemetry.skipped_cycles > 4_000, "{telemetry:?}");
}
