//! Behavioral pins for the secondary experiments: the *shapes* the paper
//! predicts, asserted as inequalities and exact values where the timing
//! model makes them deterministic.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::generators;
use mcsim::workloads::paper;
use mcsim_consistency::Model;
use mcsim_isa::reg::R2;
use mcsim_mem::Protocol;

fn cycles_of(cfg: Cfg, programs: Vec<mcsim_isa::Program>, setup: impl FnOnce(&mut Machine)) -> u64 {
    let mut m = Machine::new(cfg, programs);
    setup(&mut m);
    let r = m.run();
    assert!(!r.timed_out);
    r.cycles
}

#[test]
fn update_protocol_nullifies_write_prefetching() {
    // §3.1: read-exclusive prefetch needs an invalidation protocol. Under
    // update, the prefetch column equals baseline exactly.
    for model in [Model::Sc, Model::Rc] {
        let mut base = Cfg::paper_with(model, Techniques::NONE);
        base.mem.protocol = Protocol::Update;
        let mut pf = Cfg::paper_with(model, Techniques::PREFETCH);
        pf.mem.protocol = Protocol::Update;
        let a = cycles_of(base, vec![paper::example1()], |_| {});
        let b = cycles_of(pf, vec![paper::example1()], |_| {});
        assert_eq!(a, b, "{model}: prefetching must not help under update");
    }
    // And the exact update-protocol baselines (every write is a full
    // round trip): SC 400, RC 301.
    let mut sc = Cfg::paper_with(Model::Sc, Techniques::NONE);
    sc.mem.protocol = Protocol::Update;
    assert_eq!(cycles_of(sc, vec![paper::example1()], |_| {}), 400);
    let mut rc = Cfg::paper_with(Model::Rc, Techniques::NONE);
    rc.mem.protocol = Protocol::Update;
    assert_eq!(cycles_of(rc, vec![paper::example1()], |_| {}), 301);
}

#[test]
fn adve_hill_only_helps_writes_with_sharers() {
    // §6's critique, pinned. No sharers: early grants change nothing
    // (301). With a sharer on A and B: conventional pays two invalidation
    // round trips (497); early grants collapse them (301); the paper's
    // techniques do better still (201).
    let run_ah = |early: bool, t: Techniques, shared: bool| {
        let mut cfg = Cfg::paper_with(Model::Sc, t);
        cfg.mem.early_grant_writes = early;
        let programs = if shared {
            vec![paper::example1(), mcsim_isa::Program::idle()]
        } else {
            vec![paper::example1()]
        };
        cycles_of(cfg, programs, |m| {
            if shared {
                m.preload_cache(1, paper::A, false);
                m.preload_cache(1, paper::B, false);
            }
        })
    };
    assert_eq!(run_ah(false, Techniques::NONE, false), 301);
    assert_eq!(run_ah(true, Techniques::NONE, false), 301);
    assert_eq!(run_ah(false, Techniques::NONE, true), 497);
    assert_eq!(run_ah(true, Techniques::NONE, true), 301);
    assert_eq!(run_ah(false, Techniques::BOTH, true), 201);
}

#[test]
fn pointer_chase_defeats_both_techniques() {
    // Serial dependence: neither prefetching (no address to prefetch) nor
    // speculation (no independent work) can help — cycles are identical
    // across all technique combinations.
    let (prog, image) = generators::pointer_chase(6, 11);
    let mut reference = None;
    for t in Techniques::ALL {
        let c = cycles_of(Cfg::paper_with(Model::Sc, t), vec![prog.clone()], |m| {
            for (&a, &v) in &image {
                m.write_memory(a, v);
            }
        });
        match reference {
            None => reference = Some(c),
            Some(r) => assert_eq!(c, r, "{t}: dependence chain must be unhideable"),
        }
    }
    assert!(reference.unwrap() >= 600, "6 serialized misses");
}

#[test]
fn array_sweep_speedup_is_nearly_n_fold() {
    // N independent store misses: conventional SC serializes (~100 each);
    // with prefetching they pipeline to ~100 + N.
    let n = 12;
    let base = cycles_of(
        Cfg::paper_with(Model::Sc, Techniques::NONE),
        vec![generators::array_sweep(n, true)],
        |_| {},
    );
    let pf = cycles_of(
        Cfg::paper_with(Model::Sc, Techniques::BOTH),
        vec![generators::array_sweep(n, true)],
        |_| {},
    );
    assert!(base >= (n as u64) * 100, "serialized: {base}");
    assert!(pf <= 100 + 3 * n as u64, "pipelined: {pf}");
}

#[test]
fn pipeline_handoff_delivers_through_all_stages() {
    // A 3-stage producer/consumer chain (DRF): every model and technique
    // must deliver the fully transformed values.
    for model in Model::ALL {
        for t in [Techniques::NONE, Techniques::BOTH] {
            let cfg = Cfg::paper_with(model, t);
            let m = Machine::new(cfg, generators::pipeline_handoff(3, 2));
            let r = m.run();
            assert!(!r.timed_out, "{model}/{t}");
            // Stage 0 writes i+1; stages 1 and 2 each add 100.
            assert_eq!(r.mem_word(generators::DATA_BASE), 201, "{model}/{t}");
            assert_eq!(
                r.mem_word(generators::DATA_BASE + generators::LINE),
                202,
                "{model}/{t}"
            );
        }
    }
}

#[test]
fn speculation_violation_rate_stays_moderate_under_contention() {
    // The §5 claim, as a regression bound: even on an adversarial
    // fully-contended lock, rollbacks stay well below half the
    // speculative loads.
    let params = generators::CriticalSections {
        procs: 4,
        sections: 3,
        reads: 2,
        writes: 2,
        locks: 1,
        ..Default::default()
    };
    let cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    let m = Machine::new(cfg, generators::critical_sections(&params));
    let r = m.run();
    assert!(!r.timed_out);
    assert!(r.total.speculative_loads > 100);
    assert!(
        r.total.rollback_rate() < 0.5,
        "rollback rate {:.1}% out of expected range",
        r.total.rollback_rate() * 100.0
    );
    // Latency histograms were populated.
    assert!(r.total.load_latency.count() > 0);
    assert!(r.total.store_latency.count() > 0);
}

#[test]
fn miss_latency_scaling_matches_closed_form() {
    // Example 1 under conventional SC is 3*miss + 1 for any miss latency
    // (three serialized misses plus the unlock hit).
    for miss in [20u64, 50, 100, 300] {
        let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
        cfg.mem.timings = mcsim_mem::MemTimings::with_miss_latency(miss);
        let c = cycles_of(cfg, vec![paper::example1()], |_| {});
        assert_eq!(c, 3 * miss + 1, "miss={miss}");
        // And with both techniques: miss + 3 (prefetches overlap the lock).
        let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
        cfg.mem.timings = mcsim_mem::MemTimings::with_miss_latency(miss);
        let c = cycles_of(cfg, vec![paper::example1()], |_| {});
        assert_eq!(c, miss + 3, "miss={miss}");
    }
}

#[test]
fn hit_dependence_chain_orders_techniques_as_the_paper_says() {
    // §3.3's shape on the generalized workload: base > prefetch > spec
    // under SC (speculation subsumes prefetch's benefit for loads).
    let run_chain = |t: Techniques| {
        let (prog, image, preload) = generators::hit_dependence_chain(4, 2);
        cycles_of(Cfg::paper_with(Model::Sc, t), vec![prog], |m| {
            for (&a, &v) in &image {
                m.write_memory(a, v);
            }
            for a in preload {
                m.preload_cache(0, a, false);
            }
        })
    };
    let base = run_chain(Techniques::NONE);
    let pf = run_chain(Techniques::PREFETCH);
    let spec = run_chain(Techniques::SPECULATION);
    assert!(base > pf, "prefetch helps: {base} -> {pf}");
    assert!(pf > spec, "speculation helps more: {pf} -> {spec}");
    let _ = R2;
}
