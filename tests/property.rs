//! Property-based tests over randomly generated programs.
//!
//! Three invariants, each quantified over generator seeds:
//!
//! 1. **SC safety** — any racy program simulated under SC (with any
//!    technique combination) ends in a state the interleaving oracle
//!    deems sequentially consistent.
//! 2. **DRF portability** — any lock-protected program ends in an
//!    SC state under *every* model.
//! 3. **Technique transparency** — for single-processor programs, the
//!    techniques never change the architectural result, only the cycle
//!    count; and the cycle count never gets worse than conventional on
//!    uncontended workloads.
//! 4. **Cycle accounting** — on any contended program, under every
//!    model × technique combination, each core's per-cause cycle
//!    breakdown sums exactly to the cycles it was accounted for, and
//!    the merged machine-wide breakdown is the component-wise sum of
//!    the per-core ones.

use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::generators::{self, RandomParams};
use mcsim::workloads::litmus::Litmus;
use mcsim_consistency::Model;
use mcsim_core::{oracle, Machine};
use mcsim_proc::Techniques;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn racy_programs_are_sc_under_sc(seed in 0u64..10_000) {
        let params = RandomParams { procs: 2, ops: 4, addrs: 3, seed };
        let l = Litmus {
            name: "prop-racy",
            programs: generators::random_racy(&params),
            init: BTreeMap::new(),
        };
        for t in [Techniques::NONE, Techniques::SPECULATION, Techniques::BOTH] {
            let report = l.run(Cfg::paper_with(Model::Sc, t));
            prop_assert!(!report.timed_out);
            prop_assert!(
                l.is_sequentially_consistent(&report),
                "seed {} under SC/{} left a non-SC state", seed, t.label()
            );
        }
    }

    #[test]
    fn drf_programs_are_sc_under_every_model(seed in 0u64..10_000) {
        let params = RandomParams { procs: 2, ops: 3, addrs: 2, seed };
        let l = Litmus {
            name: "prop-drf",
            programs: generators::random_drf(&params),
            init: BTreeMap::new(),
        };
        for model in Model::ALL_EXTENDED {
            let report = l.run(Cfg::paper_with(model, Techniques::BOTH));
            prop_assert!(!report.timed_out);
            prop_assert!(
                l.is_sequentially_consistent(&report),
                "seed {} under {}/pf+spec left a non-SC state", seed, model
            );
        }
    }

    #[test]
    fn techniques_preserve_single_processor_semantics(seed in 0u64..10_000) {
        // One processor, no contention: the sequential oracle gives the
        // unique correct outcome; every model/technique combination must
        // produce exactly it, and the techniques must never slow the
        // program down.
        let params = RandomParams { procs: 1, ops: 8, addrs: 4, seed };
        let programs = generators::random_racy(&params);
        let expected = oracle::run_sequential(&programs[0], &BTreeMap::new());
        let mut base_cycles = None;
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let cfg = Cfg::paper_with(model, t);
                let report = Machine::new(cfg, programs.clone()).run();
                prop_assert!(!report.timed_out);
                let regs: Vec<u64> = report.regfiles[0].iter().map(|(_, v)| v).collect();
                prop_assert_eq!(
                    &regs, &expected.regs[0],
                    "seed {} {}/{}: registers diverged", seed, model, t.label()
                );
                for (&a, &v) in &expected.memory {
                    prop_assert_eq!(
                        report.mem_word(a), v,
                        "seed {} {}/{}: memory {:#x} diverged", seed, model, t.label(), a
                    );
                }
                if model == Model::Sc {
                    match t {
                        Techniques::NONE => base_cycles = Some(report.cycles),
                        Techniques::BOTH => {
                            prop_assert!(
                                report.cycles <= base_cycles.expect("NONE ran first"),
                                "seed {}: techniques slowed an uncontended program", seed
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_breakdown_sums_across_the_matrix(seed in 0u64..10_000) {
        // The CycleBreakdownSum identity, quantified over random
        // contended programs and the full model × technique matrix.
        let params = RandomParams { procs: 2, ops: 4, addrs: 3, seed };
        let programs = generators::random_racy(&params);
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let cfg = Cfg::paper_with(model, t);
                let report = Machine::new(cfg, programs.clone()).run();
                prop_assert!(!report.timed_out);
                let mut merged = mcsim_proc::CycleBreakdown::default();
                for (i, s) in report.per_proc.iter().enumerate() {
                    prop_assert_eq!(
                        s.breakdown.total(), s.halted_at,
                        "seed {} {}/{} p{}: components must sum to accounted cycles",
                        seed, model, t.label(), i
                    );
                    merged.merge(&s.breakdown);
                }
                prop_assert_eq!(
                    merged, report.total.breakdown,
                    "seed {} {}/{}: merged breakdown is not the per-core sum",
                    seed, model, t.label()
                );
            }
        }
    }
}
