//! Edge-of-the-envelope machine tests: configurations and interactions
//! that no single module test covers.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::paper;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R2, R3};
use mcsim_isa::AluOp;

#[test]
fn rcsc_runs_the_paper_examples_between_wc_and_rcpc() {
    // RCsc must match RCpc on the paper's single-sync-pair examples (the
    // extra release->acquire arc never fires with one lock section).
    let cfg = Cfg::paper_with(Model::RcSc, Techniques::NONE);
    let r = Machine::new(cfg, vec![paper::example1()]).run();
    assert_eq!(r.cycles, 202);
    let cfg = Cfg::paper_with(Model::RcSc, Techniques::PREFETCH);
    let r = Machine::new(cfg, vec![paper::example1()]).run();
    assert_eq!(r.cycles, 103);
    // The distinguishing arc is release -> acquire *load* (an acquire
    // RMW's write half is PC-ordered behind the release under both
    // variants): RCpc overlaps the two misses (~101 cycles), RCsc
    // serializes them (~201).
    let rel_then_acq = ProgramBuilder::new("rel-acq")
        .store_release(0x40u64, 0u64)
        .load_acquire(R2, 0x2000u64)
        .halt()
        .build()
        .unwrap();
    let mk = |model| {
        let mut m = Machine::new(
            Cfg::paper_with(model, Techniques::NONE),
            vec![rel_then_acq.clone()],
        );
        m.write_memory(0x2000u64, 1);
        m.run()
    };
    let rcsc = mk(Model::RcSc);
    let rcpc = mk(Model::Rc);
    assert!(rcpc.cycles <= 105, "RCpc overlaps: {}", rcpc.cycles);
    assert!(
        rcsc.cycles >= 200,
        "RCsc serializes release->acquire: {}",
        rcsc.cycles
    );
}

#[test]
fn sixteen_processors_run_disjoint_work() {
    let programs: Vec<_> = (0..16)
        .map(|i| {
            ProgramBuilder::new(format!("p{i}"))
                .store(0x10_000 + (i as u64) * 0x1000, i as u64 + 1)
                .load(R2, 0x10_000 + (i as u64) * 0x1000)
                .halt()
                .build()
                .unwrap()
        })
        .collect();
    let r = Machine::new(Cfg::paper_with(Model::Sc, Techniques::BOTH), programs).run();
    assert!(!r.timed_out);
    for i in 0..16u64 {
        assert_eq!(r.mem_word(0x10_000 + i * 0x1000), i + 1);
        assert_eq!(r.regfiles[i as usize].read(R2), i + 1);
    }
    // Disjoint lines pipeline through the directory: far faster than
    // 16 serialized round trips.
    assert!(r.cycles < 16 * 100, "pipelined: {}", r.cycles);
}

#[test]
fn deep_alu_dependence_chain_commits_in_order() {
    let mut b = ProgramBuilder::new("chain");
    for _ in 0..40 {
        b = b.alu(R3, AluOp::Add, R3, 1u64);
    }
    let prog = b.store(0x1000u64, R3).halt().build().unwrap();
    for t in [Techniques::NONE, Techniques::BOTH] {
        let r = Machine::new(Cfg::paper_with(Model::Sc, t), vec![prog.clone()]).run();
        assert_eq!(r.mem_word(0x1000), 40, "{t}");
        assert!(r.cycles >= 40, "{t}: 40 dependent unit-latency ALUs");
    }
}

#[test]
fn tiny_caches_force_replacement_traffic_but_stay_correct() {
    // A 2-line cache walking 8 lines twice: heavy replacement, every
    // value still correct under speculation (replacement hazards fire).
    let mut b = ProgramBuilder::new("thrash");
    for pass in 0..2u64 {
        for i in 0..8u64 {
            b = b.store(0x10_000 + i * 64, pass * 100 + i);
        }
    }
    let prog = b.halt().build().unwrap();
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.mem.cache.sets = 1;
    cfg.mem.cache.ways = 2;
    let r = Machine::new(cfg, vec![prog]).run();
    assert!(!r.timed_out);
    for i in 0..8u64 {
        assert_eq!(r.mem_word(0x10_000 + i * 64), 100 + i);
    }
    assert!(r.mem.replacements > 0, "thrashing must evict");
    assert!(r.mem.writebacks > 0, "dirty lines must write back");
}

#[test]
fn mshr_starvation_resolves() {
    // One MSHR: every parallel technique degrades to serial issue, but
    // everything still completes correctly.
    let mut b = ProgramBuilder::new("narrow");
    for i in 0..6u64 {
        b = b.store(0x10_000 + i * 64, i + 1);
    }
    let prog = b.halt().build().unwrap();
    let mut cfg = Cfg::paper_with(Model::Rc, Techniques::BOTH);
    cfg.mem.mshrs = 1;
    let r = Machine::new(cfg, vec![prog]).run();
    assert!(!r.timed_out);
    for i in 0..6u64 {
        assert_eq!(r.mem_word(0x10_000 + i * 64), i + 1);
    }
    assert!(
        r.cycles >= 600,
        "one MSHR serializes the six misses: {}",
        r.cycles
    );
}

#[test]
fn wider_directory_bandwidth_helps_contended_startup() {
    // Many processors missing simultaneously: a 4-ported directory
    // services the burst faster than a single-ported one.
    let programs = |n: usize| -> Vec<_> {
        (0..n)
            .map(|i| {
                ProgramBuilder::new(format!("p{i}"))
                    .load(R1, 0x10_000 + (i as u64) * 0x1000)
                    .halt()
                    .build()
                    .unwrap()
            })
            .collect()
    };
    let mut narrow = Cfg::paper_with(Model::Sc, Techniques::NONE);
    narrow.mem.dir_bandwidth = 1;
    let mut wide = narrow;
    wide.mem.dir_bandwidth = 4;
    let n = Machine::new(narrow, programs(12)).run();
    let w = Machine::new(wide, programs(12)).run();
    assert!(
        w.cycles <= n.cycles,
        "wider directory cannot be slower: {} vs {}",
        w.cycles,
        n.cycles
    );
    assert!(w.mem.dir_queue_cycles < n.mem.dir_queue_cycles);
}
