//! Edge-of-the-envelope machine tests: configurations and interactions
//! that no single module test covers.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::sim::{FaultKind, InvariantKind, StallClass};
use mcsim::workloads::paper;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R2, R3};
use mcsim_isa::AluOp;

#[test]
fn rcsc_runs_the_paper_examples_between_wc_and_rcpc() {
    // RCsc must match RCpc on the paper's single-sync-pair examples (the
    // extra release->acquire arc never fires with one lock section).
    let cfg = Cfg::paper_with(Model::RcSc, Techniques::NONE);
    let r = Machine::new(cfg, vec![paper::example1()]).run();
    assert_eq!(r.cycles, 202);
    let cfg = Cfg::paper_with(Model::RcSc, Techniques::PREFETCH);
    let r = Machine::new(cfg, vec![paper::example1()]).run();
    assert_eq!(r.cycles, 103);
    // The distinguishing arc is release -> acquire *load* (an acquire
    // RMW's write half is PC-ordered behind the release under both
    // variants): RCpc overlaps the two misses (~101 cycles), RCsc
    // serializes them (~201).
    let rel_then_acq = ProgramBuilder::new("rel-acq")
        .store_release(0x40u64, 0u64)
        .load_acquire(R2, 0x2000u64)
        .halt()
        .build()
        .unwrap();
    let mk = |model| {
        let mut m = Machine::new(
            Cfg::paper_with(model, Techniques::NONE),
            vec![rel_then_acq.clone()],
        );
        m.write_memory(0x2000u64, 1);
        m.run()
    };
    let rcsc = mk(Model::RcSc);
    let rcpc = mk(Model::Rc);
    assert!(rcpc.cycles <= 105, "RCpc overlaps: {}", rcpc.cycles);
    assert!(
        rcsc.cycles >= 200,
        "RCsc serializes release->acquire: {}",
        rcsc.cycles
    );
}

#[test]
fn sixteen_processors_run_disjoint_work() {
    let programs: Vec<_> = (0..16)
        .map(|i| {
            ProgramBuilder::new(format!("p{i}"))
                .store(0x10_000 + (i as u64) * 0x1000, i as u64 + 1)
                .load(R2, 0x10_000 + (i as u64) * 0x1000)
                .halt()
                .build()
                .unwrap()
        })
        .collect();
    let r = Machine::new(Cfg::paper_with(Model::Sc, Techniques::BOTH), programs).run();
    assert!(!r.timed_out);
    for i in 0..16u64 {
        assert_eq!(r.mem_word(0x10_000 + i * 0x1000), i + 1);
        assert_eq!(r.regfiles[i as usize].read(R2), i + 1);
    }
    // Disjoint lines pipeline through the directory: far faster than
    // 16 serialized round trips.
    assert!(r.cycles < 16 * 100, "pipelined: {}", r.cycles);
}

#[test]
fn deep_alu_dependence_chain_commits_in_order() {
    let mut b = ProgramBuilder::new("chain");
    for _ in 0..40 {
        b = b.alu(R3, AluOp::Add, R3, 1u64);
    }
    let prog = b.store(0x1000u64, R3).halt().build().unwrap();
    for t in [Techniques::NONE, Techniques::BOTH] {
        let r = Machine::new(Cfg::paper_with(Model::Sc, t), vec![prog.clone()]).run();
        assert_eq!(r.mem_word(0x1000), 40, "{t}");
        assert!(r.cycles >= 40, "{t}: 40 dependent unit-latency ALUs");
    }
}

#[test]
fn tiny_caches_force_replacement_traffic_but_stay_correct() {
    // A 2-line cache walking 8 lines twice: heavy replacement, every
    // value still correct under speculation (replacement hazards fire).
    let mut b = ProgramBuilder::new("thrash");
    for pass in 0..2u64 {
        for i in 0..8u64 {
            b = b.store(0x10_000 + i * 64, pass * 100 + i);
        }
    }
    let prog = b.halt().build().unwrap();
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.mem.cache.sets = 1;
    cfg.mem.cache.ways = 2;
    let r = Machine::new(cfg, vec![prog]).run();
    assert!(!r.timed_out);
    for i in 0..8u64 {
        assert_eq!(r.mem_word(0x10_000 + i * 64), 100 + i);
    }
    assert!(r.mem.replacements > 0, "thrashing must evict");
    assert!(r.mem.writebacks > 0, "dirty lines must write back");
}

#[test]
fn mshr_starvation_resolves() {
    // One MSHR: every parallel technique degrades to serial issue, but
    // everything still completes correctly.
    let mut b = ProgramBuilder::new("narrow");
    for i in 0..6u64 {
        b = b.store(0x10_000 + i * 64, i + 1);
    }
    let prog = b.halt().build().unwrap();
    let mut cfg = Cfg::paper_with(Model::Rc, Techniques::BOTH);
    cfg.mem.mshrs = 1;
    let r = Machine::new(cfg, vec![prog]).run();
    assert!(!r.timed_out);
    for i in 0..6u64 {
        assert_eq!(r.mem_word(0x10_000 + i * 64), i + 1);
    }
    assert!(
        r.cycles >= 600,
        "one MSHR serializes the six misses: {}",
        r.cycles
    );
}

#[test]
fn wider_directory_bandwidth_helps_contended_startup() {
    // Many processors missing simultaneously: a 4-ported directory
    // services the burst faster than a single-ported one.
    let programs = |n: usize| -> Vec<_> {
        (0..n)
            .map(|i| {
                ProgramBuilder::new(format!("p{i}"))
                    .load(R1, 0x10_000 + (i as u64) * 0x1000)
                    .halt()
                    .build()
                    .unwrap()
            })
            .collect()
    };
    let mut narrow = Cfg::paper_with(Model::Sc, Techniques::NONE);
    narrow.mem.dir_bandwidth = 1;
    let mut wide = narrow;
    wide.mem.dir_bandwidth = 4;
    let n = Machine::new(narrow, programs(12)).run();
    let w = Machine::new(wide, programs(12)).run();
    assert!(
        w.cycles <= n.cycles,
        "wider directory cannot be slower: {} vs {}",
        w.cycles,
        n.cycles
    );
    assert!(w.mem.dir_queue_cycles < n.mem.dir_queue_cycles);
}

// ---------------------------------------------------------------------
// Guard layer: watchdog classification and fault injection.
// ---------------------------------------------------------------------

/// A program that reads `addr` after roughly `delay` cycles of dependent
/// unit-latency ALU work — long enough for another processor's
/// 100-cycle cold miss on the same line to complete first.
fn delayed_load(delay: usize, addr: u64) -> Program {
    let mut b = ProgramBuilder::new("delayed-load");
    for _ in 0..delay {
        b = b.alu(R3, AluOp::Add, R3, 1u64);
    }
    b.load(R1, addr).halt().build().unwrap()
}

/// Same, but writing `addr`.
fn delayed_store(delay: usize, addr: u64) -> Program {
    let mut b = ProgramBuilder::new("delayed-store");
    for _ in 0..delay {
        b = b.alu(R3, AluOp::Add, R3, 1u64);
    }
    b.store(addr, 7u64).halt().build().unwrap()
}

#[test]
fn stuck_mshr_is_classified_as_deadlock_across_models_and_techniques() {
    // A dropped fill freezes the only load: no commits, no coherence
    // traffic, nothing in flight. The watchdog must call that a
    // deadlock — under every model and technique combination — and name
    // the stalled processor.
    for model in Model::ALL_EXTENDED {
        for t in Techniques::ALL {
            let mut cfg = Cfg::paper_with(model, t);
            cfg.guard.fault = Some(FaultKind::StuckMshr { nth: 1 });
            cfg.guard.watchdog_window = 1_000;
            cfg.max_cycles = 50_000;
            let prog = ProgramBuilder::new("stuck")
                .load(R1, 0x4000u64)
                .halt()
                .build()
                .unwrap();
            let r = Machine::new(cfg, vec![prog]).run();
            let failure = r
                .failure
                .as_ref()
                .unwrap_or_else(|| panic!("{model}/{}: watchdog must fire", t.label()));
            let stall = failure.stall().unwrap_or_else(|| {
                panic!("{model}/{}: NoProgress expected, got {failure}", t.label())
            });
            assert_eq!(stall.class, StallClass::Deadlock, "{model}/{}", t.label());
            assert_eq!(
                failure.cycle % 1_000,
                0,
                "fires on a window edge: {}",
                failure.cycle
            );
            assert_eq!(r.cycles, failure.cycle, "report stops at the failure");
            assert_eq!(stall.stalled.len(), 1, "one processor is stuck");
            assert_eq!(stall.stalled[0].proc, 0);
            assert!(
                !stall.stalled[0].awaiting.is_empty(),
                "{model}/{}: the frozen demand read is named",
                t.label()
            );
        }
    }
}

#[test]
fn progressing_spin_is_a_plain_timeout_not_a_watchdog_failure() {
    // A spin loop on a flag nobody sets retires a load and a branch
    // every iteration: slow, but progressing. The watchdog must stay
    // quiet under every model and technique combination, leaving the
    // plain max_cycles timeout.
    for model in Model::ALL_EXTENDED {
        for t in Techniques::ALL {
            let mut cfg = Cfg::paper_with(model, t);
            cfg.guard.watchdog_window = 1_000;
            cfg.max_cycles = 6_000;
            let prog = ProgramBuilder::new("spin")
                .spin_until(0x4000, 1, R2)
                .halt()
                .build()
                .unwrap();
            let r = Machine::new(cfg, vec![prog]).run();
            assert!(r.timed_out, "{model}/{}", t.label());
            assert_eq!(r.cycles, 6_000, "{model}/{}", t.label());
            assert!(
                r.failure.is_none(),
                "{model}/{}: progressing spin misclassified: {:?}",
                model,
                r.failure
            );
        }
    }
}

#[test]
fn dropped_invalidation_is_caught_as_swmr_violation() {
    // Proc 1 caches the line shared; proc 0 writes it ~250 cycles later.
    // The (dropped) invalidation leaves proc 1's stale copy coexisting
    // with proc 0's exclusive grant — SWMR broken the cycle it lands.
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
    cfg.guard.fault = Some(FaultKind::DropInvalidation { nth: 1 });
    cfg.guard.invariant_period = 1;
    let programs = vec![delayed_store(250, 0x4000), delayed_load(0, 0x4000)];
    let mut m = Machine::new(cfg, programs);
    m.write_memory(0x4000u64, 1);
    let r = m.run();
    let failure = r.failure.expect("dropped invalidation must be caught");
    assert_eq!(
        failure.violated_invariant(),
        Some(InvariantKind::SwmrExclusiveWithCopies),
        "{failure}"
    );
    assert_eq!(failure.cycle, r.cycles);
    assert!(
        failure.cycle > 250,
        "violation lands after the writer's delayed store: {}",
        failure.cycle
    );
}

#[test]
fn corrupted_line_state_is_caught_as_swmr_violation() {
    // The first shared fill (proc 1's cold read) is corrupted into an
    // exclusive grant. The moment proc 0's own shared fill lands, two
    // copies coexist with one marked exclusive.
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
    cfg.guard.fault = Some(FaultKind::CorruptLineState { nth: 1 });
    cfg.guard.invariant_period = 1;
    let programs = vec![delayed_load(250, 0x4000), delayed_load(0, 0x4000)];
    let mut m = Machine::new(cfg, programs);
    m.write_memory(0x4000u64, 1);
    let r = m.run();
    let failure = r.failure.expect("corrupted line state must be caught");
    assert_eq!(
        failure.violated_invariant(),
        Some(InvariantKind::SwmrExclusiveWithCopies),
        "{failure}"
    );
    assert_eq!(failure.cycle, r.cycles);
}

#[test]
fn every_first_fault_class_is_detected() {
    // The guard's promise in one sweep: each canonical fault produces a
    // structured failure (never a silent wrong answer, never a panic).
    for kind in FaultKind::ALL_FIRST {
        let mut cfg = Cfg::paper_with(Model::Sc, Techniques::NONE);
        cfg.guard.fault = Some(kind);
        cfg.guard.invariant_period = 1;
        cfg.guard.watchdog_window = 1_000;
        cfg.max_cycles = 50_000;
        // Each fault needs its canonical victim: an invalidation to
        // drop requires a later writer; a corrupted exclusive grant is
        // only a violation while a second copy coexists (a writer would
        // first invalidate it).
        let second = match kind {
            FaultKind::CorruptLineState { .. } => delayed_load(250, 0x4000),
            _ => delayed_store(250, 0x4000),
        };
        let programs = vec![second, delayed_load(0, 0x4000)];
        let mut m = Machine::new(cfg, programs);
        m.write_memory(0x4000u64, 1);
        let r = m.run();
        let failure = r
            .failure
            .unwrap_or_else(|| panic!("fault {kind} escaped detection"));
        match kind {
            FaultKind::DropInvalidation { .. } | FaultKind::CorruptLineState { .. } => {
                assert!(failure.violated_invariant().is_some(), "{kind}: {failure}");
            }
            FaultKind::StuckMshr { .. } => {
                assert!(failure.stall().is_some(), "{kind}: {failure}");
            }
        }
    }
}
