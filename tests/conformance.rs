//! Conformance harness: the simulator versus the execution-enumeration
//! oracle across the *full* model matrix.
//!
//! Three properties, machine-checked:
//!
//! 1. **Membership** — every simulated final state of every corpus
//!    litmus (and of random small racy programs), under every model in
//!    `Model::ALL_EXTENDED` × every technique combination × many seeded
//!    machine configurations, is in the oracle's allowed set for that
//!    model. This is §4.2's claim generalized from SC to the spectrum.
//! 2. **Monotonicity** — whenever model A's delay arcs contain model
//!    B's, A's allowed set is contained in B's (in particular SC's set
//!    is a subset of every weaker model's).
//! 3. **DRF-implies-SC** — data-race-free programs have *identical*
//!    allowed sets under every model (§5's guarantee, checked at the
//!    semantics level rather than per-execution).
//!
//! The corpus allowed sets are additionally pinned as a golden file
//! (regenerate with `BLESS=1 cargo test --test conformance`).

use mcsim::sim::{conformance_config, Outcome, RunReport};
use mcsim::workloads::generators::{self, RandomParams};
use mcsim::workloads::litmus::{self, Litmus};
use mcsim_consistency::{AccessClass, Model};
use mcsim_isa::MemFlavor;
use mcsim_proc::Techniques;
use std::collections::BTreeMap;
use std::path::Path;

const SEEDS: u64 = 32;

/// Membership check against a pre-enumerated allowed set (avoids
/// re-running the oracle for every seed of the same litmus × model cell).
fn in_allowed_set(l: &Litmus, allowed: &[Outcome], report: &RunReport) -> bool {
    let observed = l.outcome_of(report, allowed);
    allowed
        .iter()
        .any(|o| o.regs == observed.regs && observed.memory.iter().all(|(k, v)| o.mem(*k) == *v))
}

fn assert_litmus_conforms(l: &Litmus) {
    for model in Model::ALL_EXTENDED {
        let allowed = l.allowed_outcomes(model);
        for t in Techniques::ALL {
            for seed in 0..SEEDS {
                let report = l.run(conformance_config(model, t, seed));
                assert!(
                    report.failure.is_none() && !report.timed_out,
                    "{} @ {model}/{} seed {seed}: {}",
                    l.name,
                    t.label(),
                    report.summary()
                );
                assert!(
                    in_allowed_set(l, &allowed, &report),
                    "{} @ {model}/{} seed {seed}: final state not in the \
                     oracle's allowed set\n{}",
                    l.name,
                    t.label(),
                    report.summary()
                );
            }
        }
    }
}

#[test]
fn store_buffering_conforms() {
    assert_litmus_conforms(&litmus::store_buffering());
}

#[test]
fn message_passing_conforms() {
    assert_litmus_conforms(&litmus::message_passing());
}

#[test]
fn load_buffering_conforms() {
    assert_litmus_conforms(&litmus::load_buffering());
}

#[test]
fn iriw_conforms() {
    assert_litmus_conforms(&litmus::iriw());
}

#[test]
fn coherence_rr_conforms() {
    assert_litmus_conforms(&litmus::coherence_rr());
}

#[test]
fn two_plus_two_w_conforms() {
    assert_litmus_conforms(&litmus::two_plus_two_w());
}

#[test]
fn random_racy_programs_conform_under_every_model() {
    for seed in 0..SEEDS {
        let params = RandomParams {
            procs: 2,
            ops: 4,
            addrs: 3,
            seed,
        };
        let l = Litmus {
            name: "random-racy",
            programs: generators::random_racy(&params),
            init: BTreeMap::new(),
        };
        for model in Model::ALL_EXTENDED {
            let allowed = l.allowed_outcomes(model);
            for t in [Techniques::NONE, Techniques::BOTH] {
                let report = l.run(conformance_config(model, t, seed));
                assert!(
                    in_allowed_set(&l, &allowed, &report),
                    "random seed {seed} @ {model}/{}: outcome outside the allowed set",
                    t.label()
                );
            }
        }
    }
}

/// The access classes that occur in litmus programs — the five Figure 1
/// classes plus the ordinary read-modify-write.
const CLASSES: [AccessClass; 6] = [
    AccessClass::LOAD,
    AccessClass::STORE,
    AccessClass {
        reads: true,
        writes: true,
        flavor: MemFlavor::Ordinary,
    },
    AccessClass::ACQUIRE_LOAD,
    AccessClass::ACQUIRE_RMW,
    AccessClass::RELEASE_STORE,
];

/// Whether every delay arc of `weaker` is also an arc of `stricter` — in
/// that case every `stricter` execution is also a `weaker` execution, so
/// the allowed sets must nest.
fn arcs_contained(weaker: Model, stricter: Model) -> bool {
    CLASSES.iter().all(|e| {
        CLASSES
            .iter()
            .all(|l| !weaker.must_delay(*e, *l) || stricter.must_delay(*e, *l))
    })
}

#[test]
fn allowed_sets_are_monotone_in_the_delay_arcs() {
    let corpus = litmus::conformance_corpus();
    let mut pairs = 0;
    for stricter in Model::ALL_EXTENDED {
        for weaker in Model::ALL_EXTENDED {
            if stricter == weaker || !arcs_contained(weaker, stricter) {
                continue;
            }
            pairs += 1;
            for l in &corpus {
                let strict_set = l.allowed_outcomes(stricter);
                let weak_set = l.allowed_outcomes(weaker);
                for o in &strict_set {
                    assert!(
                        weak_set.contains(o),
                        "{}: outcome allowed under {stricter} but not under \
                         the more relaxed {weaker}",
                        l.name
                    );
                }
            }
        }
    }
    // SC above everything (6), TSO above PC/PSO/WC/RCsc/RC (5),
    // PSO above WC/RCsc/RC (3), WC above RCsc/RC (2), RCsc above RC (1).
    assert!(
        pairs >= 17,
        "expected a rich containment order, got {pairs}"
    );
}

#[test]
fn drf_programs_have_identical_allowed_sets_under_every_model() {
    // Properly synchronized programs: the model must be invisible at the
    // semantics level — each relaxed model's allowed set *equals* SC's.
    let mut drf: Vec<Litmus> = vec![litmus::message_passing()];
    for seed in 0..6 {
        let params = RandomParams {
            procs: 2,
            ops: 2,
            addrs: 2,
            seed,
        };
        drf.push(Litmus {
            name: "random-drf",
            programs: generators::random_drf(&params),
            init: BTreeMap::new(),
        });
    }
    for l in &drf {
        let sc = l.allowed_outcomes(Model::Sc);
        for model in Model::ALL_EXTENDED {
            let m = l.allowed_outcomes(model);
            assert_eq!(
                sc, m,
                "{}: DRF program has model-visible outcomes under {model}",
                l.name
            );
        }
    }
}

#[test]
fn racy_programs_do_relax_somewhere() {
    // Sanity check that the harness can tell models apart at all: the
    // corpus must contain at least one litmus whose RC set is strictly
    // larger than its SC set.
    let grew = litmus::conformance_corpus()
        .iter()
        .any(|l| l.allowed_outcomes(Model::Rc).len() > l.allowed_outcomes(Model::Sc).len());
    assert!(grew, "no corpus litmus distinguishes RC from SC");
}

#[test]
fn corpus_allowed_sets_match_golden() {
    let rendered = litmus::render_allowed_sets(&litmus::conformance_corpus());
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/oracle_allowed.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with BLESS=1 once)",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "allowed sets diverge from the golden file; if intentional, \
         regenerate with BLESS=1 cargo test --test conformance.\n\
         --- rendered ---\n{rendered}"
    );
}
