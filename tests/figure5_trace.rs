//! Figure 5 of the paper: the illustrative execution of
//!
//! ```text
//! read A (miss)  write B (miss)  write C (miss)  read D (hit)  read E[D] (miss)
//! ```
//!
//! under SC with speculative loads + prefetch for stores, where an
//! invalidation for `D` arrives after its speculated value has been
//! consumed. The paper walks nine events; this test asserts the
//! machine-visible essence of that walk:
//!
//! 1. the loads issue speculatively and the stores are prefetched in
//!    read-exclusive mode *before* any store is allowed to issue;
//! 2. `read D` hits and its (speculative) value feeds `read E[D]`;
//! 3. the invalidation for `D` triggers the detection mechanism; since
//!    the value was consumed, `read D` and `read E[D]` are discarded and
//!    refetched (events 5–6);
//! 4. the reissued `read D` misses (the line was invalidated), returns
//!    the *new* value, and `read E[D]` is re-executed with it (event 7);
//! 5. the stores complete via their prefetched ownership (events 2, 4,
//!    8), and the final architectural state reflects the post-
//!    invalidation values (event 9).

use mcsim::prelude::*;
use mcsim::proc::core::{EventKind, IssueOutcome};
use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::paper;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R3, R4};

const NEW_D: u64 = 5;

fn run_figure5(delay: u32) -> mcsim::sim::RunReport {
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let mut m = Machine::new(
        cfg,
        vec![
            paper::figure5_main(),
            paper::figure5_antagonist(delay, NEW_D),
        ],
    );
    paper::setup_figure5(&mut m, NEW_D);
    let report = m.run();
    assert!(!report.timed_out);
    report
}

#[test]
fn figure5_event_sequence() {
    let report = run_figure5(50);
    let trace = &report.traces[0];

    // -- Event 1: reads issued speculatively, writes prefetched. --
    let load_a = trace
        .iter()
        .find(|e| matches!(&e.kind, EventKind::LoadIssued { addr, .. } if addr.0 == paper::A))
        .expect("read A issued");
    assert!(matches!(
        load_a.kind,
        EventKind::LoadIssued {
            outcome: IssueOutcome::Miss,
            speculative: true,
            ..
        }
    ));
    let pf_b = trace
        .iter()
        .find(|e| matches!(&e.kind, EventKind::PrefetchIssued { addr, exclusive: true } if addr.0 == paper::B))
        .expect("write B prefetched read-exclusive");
    let pf_c = trace
        .iter()
        .find(|e| matches!(&e.kind, EventKind::PrefetchIssued { addr, exclusive: true } if addr.0 == paper::C))
        .expect("write C prefetched read-exclusive");
    let load_d_first = trace
        .iter()
        .find(|e| matches!(&e.kind, EventKind::LoadIssued { addr, .. } if addr.0 == paper::D))
        .expect("read D issued");
    assert!(
        matches!(
            load_d_first.kind,
            EventKind::LoadIssued {
                outcome: IssueOutcome::Hit,
                speculative: true,
                ..
            }
        ),
        "read D initially hits in the cache"
    );
    // The speculative E[D] uses the OLD value of D.
    let old_e = paper::E_BASE + paper::D_VALUE * 8;
    trace
        .iter()
        .find(|e| matches!(&e.kind, EventKind::LoadIssued { addr, speculative: true, .. } if addr.0 == old_e))
        .expect("read E[D] issued speculatively with the speculated index");

    // Stores must not issue before their prefetches went out.
    let first_store = trace
        .iter()
        .find(|e| matches!(e.kind, EventKind::StoreIssued { .. }))
        .expect("stores eventually issue");
    assert!(
        pf_b.cycle < first_store.cycle,
        "prefetch B precedes store issue"
    );
    assert!(
        pf_c.cycle < first_store.cycle,
        "prefetch C precedes store issue"
    );

    // -- Events 5-6: the invalidation rolls back D and E[D]. --
    let rollback = trace
        .iter()
        .find(|e| matches!(e.kind, EventKind::Rollback { .. }))
        .expect("invalidation for D triggers a rollback");
    let EventKind::Rollback { squashed, .. } = rollback.kind else {
        unreachable!()
    };
    // read D, read E[D], and everything fetched after them (here: the
    // halt) are discarded; the paper's figure shows the same two loads
    // leaving the reorder buffer.
    assert!(squashed >= 2, "at least read D and read E[D] are discarded");
    assert!(rollback.cycle > load_d_first.cycle);

    // -- Event 6-7: D reissued, now a miss; E[D] re-executed with the
    //    new value. --
    let load_d_again = trace
        .iter()
        .find(|e| {
            e.cycle > rollback.cycle
                && matches!(&e.kind, EventKind::LoadIssued { addr, .. } if addr.0 == paper::D)
        })
        .expect("read D reissued after the rollback");
    assert!(
        matches!(
            load_d_again.kind,
            EventKind::LoadIssued {
                outcome: IssueOutcome::Miss,
                ..
            }
        ),
        "the reissued read D misses (its line was invalidated)"
    );
    let new_e = paper::E_BASE + NEW_D * 8;
    trace
        .iter()
        .find(|e| {
            e.cycle > rollback.cycle
                && matches!(&e.kind, EventKind::LoadIssued { addr, .. } if addr.0 == new_e)
        })
        .expect("read E[D] re-executed with the new index");

    // -- Events 2/4/8: both stores complete via prefetched ownership
    //    (hit or merge, never a fresh miss). --
    for (name, addr) in [("B", paper::B), ("C", paper::C)] {
        let st = trace
            .iter()
            .find(|e| matches!(&e.kind, EventKind::StoreIssued { addr: a, .. } if a.0 == addr))
            .unwrap_or_else(|| panic!("store {name} issued"));
        assert!(
            matches!(
                st.kind,
                EventKind::StoreIssued {
                    outcome: IssueOutcome::Hit | IssueOutcome::Merged,
                    ..
                }
            ),
            "store {name} must use the prefetched line, got {:?}",
            st.kind
        );
    }

    // -- Event 9: final state. --
    assert_eq!(report.reg(0, R1), 0xA0, "read A's value");
    assert_eq!(report.reg(0, R3), NEW_D, "read D observes the new value");
    assert_eq!(report.reg(0, R4), 0xE2, "read E[D] observes E[new D]");
    assert_eq!(report.mem_word(paper::B), 1);
    assert_eq!(report.mem_word(paper::C), 2);
    assert_eq!(report.total.rollbacks, 1);
}

#[test]
fn figure5_without_antagonist_never_rolls_back() {
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let mut m = Machine::new(cfg, vec![paper::figure5_main()]);
    m.write_memory(paper::D, paper::D_VALUE);
    m.write_memory(paper::E_AT_D, 0xE1);
    m.write_memory(paper::A, 0xA0);
    m.preload_cache(0, paper::D, false);
    let report = m.run();
    assert!(!report.timed_out);
    assert_eq!(report.total.rollbacks, 0);
    assert_eq!(report.reg(0, R3), paper::D_VALUE);
    assert_eq!(report.reg(0, R4), 0xE1);
}

#[test]
fn figure5_rollback_rate_insensitive_to_injection_time() {
    // Anywhere in the window between D's speculative consumption and its
    // retirement, the invalidation must trigger exactly one rollback and
    // still produce the correct final state.
    for delay in [10u32, 30, 60, 90] {
        let report = run_figure5(delay);
        assert_eq!(report.total.rollbacks, 1, "delay={delay}");
        assert_eq!(report.reg(0, R3), NEW_D, "delay={delay}");
        assert_eq!(report.reg(0, R4), 0xE2, "delay={delay}");
    }
}
