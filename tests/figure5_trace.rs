//! Figure 5 of the paper: the illustrative execution of
//!
//! ```text
//! read A (miss)  write B (miss)  write C (miss)  read D (hit)  read E[D] (miss)
//! ```
//!
//! under SC with speculative loads + prefetch for stores, where an
//! invalidation for `D` arrives after its speculated value has been
//! consumed. The paper walks nine events; this suite asserts both the
//! machine-visible essence of that walk (event-sequence assertions) and
//! the *exact rendered picture*: the Figure-5 buffer timeline and the
//! Figure-2 traces are compared byte-for-byte against golden files in
//! `tests/golden/`. Regenerate them after an intentional change with
//!
//! ```sh
//! BLESS=1 cargo test --test figure5_trace
//! ```

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::trace::{csv, fig5, IssueOutcome, TraceFilter, TraceKind};
use mcsim::workloads::paper;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R3, R4};
use std::path::Path;

const NEW_D: u64 = 5;

fn run_figure5(delay: u32) -> mcsim::sim::RunReport {
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let mut m = Machine::new(
        cfg,
        vec![
            paper::figure5_main(),
            paper::figure5_antagonist(delay, NEW_D),
        ],
    );
    paper::setup_figure5(&mut m, NEW_D);
    let report = m.run();
    assert!(!report.timed_out);
    report
}

/// Compares `rendered` against the checked-in golden file, or rewrites
/// the golden when the `BLESS` environment variable is set.
fn assert_golden(rendered: &str, name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with BLESS=1 once)",
            path.display()
        )
    });
    assert!(
        rendered == golden,
        "{name} diverges from the golden file; if the change is intentional, \
         regenerate with BLESS=1 cargo test --test figure5_trace.\n--- rendered ---\n{rendered}",
    );
}

#[test]
fn figure5_timeline_matches_golden() {
    let report = run_figure5(50);
    // Processor 0 is the figure's subject; the antagonist's lone store
    // would only add noise to the picture.
    let filter = TraceFilter {
        proc: Some(0),
        ..TraceFilter::default()
    };
    assert_golden(&fig5::render(&report.trace, &filter), "figure5.txt");
}

/// Both Figure 2 segments, traced across every model × technique cell,
/// pinned as CSV golden files. Any change to event emission order,
/// timing, or the taxonomy itself shows up as a diff here.
#[test]
fn figure2_traces_match_golden() {
    for (name, golden) in [
        ("example1", "figure2_example1.csv"),
        ("example2", "figure2_example2.csv"),
    ] {
        let mut out = String::new();
        for model in Model::ALL {
            for t in Techniques::ALL {
                let mut cfg = Cfg::paper_with(model, t);
                cfg.trace = true;
                let m = match name {
                    "example1" => Machine::new(cfg, vec![paper::example1()]),
                    _ => {
                        let mut m = Machine::new(cfg, vec![paper::example2()]);
                        paper::setup_example2(&mut m);
                        m
                    }
                };
                let report = m.run();
                assert!(!report.timed_out, "{name} {model}/{t}");
                out.push_str(&format!("== {} / {} ==\n", model.name(), t.label()));
                out.push_str(&csv::render(&report.trace, &TraceFilter::default()));
            }
        }
        assert_golden(&out, golden);
    }
}

#[test]
fn figure5_event_sequence() {
    let report = run_figure5(50);
    let trace: Vec<_> = report.trace.iter().filter(|e| e.proc == 0).collect();

    // -- Event 1: reads issued speculatively, writes prefetched. --
    let load_a = trace
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::LoadIssue { addr, .. } if addr.0 == paper::A))
        .expect("read A issued");
    assert!(matches!(
        load_a.kind,
        TraceKind::LoadIssue {
            outcome: IssueOutcome::Miss,
            speculative: true,
            ..
        }
    ));
    let pf_b = trace
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::PrefetchIssue { addr, exclusive: true } if addr.0 == paper::B))
        .expect("write B prefetched read-exclusive");
    let pf_c = trace
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::PrefetchIssue { addr, exclusive: true } if addr.0 == paper::C))
        .expect("write C prefetched read-exclusive");
    let load_d_first = trace
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::LoadIssue { addr, .. } if addr.0 == paper::D))
        .expect("read D issued");
    assert!(
        matches!(
            load_d_first.kind,
            TraceKind::LoadIssue {
                outcome: IssueOutcome::Hit,
                speculative: true,
                ..
            }
        ),
        "read D initially hits in the cache"
    );
    // The speculative E[D] uses the OLD value of D.
    let old_e = paper::E_BASE + paper::D_VALUE * 8;
    trace
        .iter()
        .find(|e| matches!(&e.kind, TraceKind::LoadIssue { addr, speculative: true, .. } if addr.0 == old_e))
        .expect("read E[D] issued speculatively with the speculated index");

    // Stores must not issue before their prefetches went out.
    let first_store = trace
        .iter()
        .find(|e| matches!(e.kind, TraceKind::StoreIssue { .. }))
        .expect("stores eventually issue");
    assert!(
        pf_b.cycle < first_store.cycle,
        "prefetch B precedes store issue"
    );
    assert!(
        pf_c.cycle < first_store.cycle,
        "prefetch C precedes store issue"
    );

    // -- Events 5-6: the invalidation rolls back D and E[D]. --
    let rollback = trace
        .iter()
        .find(|e| matches!(e.kind, TraceKind::Rollback { .. }))
        .expect("invalidation for D triggers a rollback");
    let TraceKind::Rollback { squashed, .. } = rollback.kind else {
        unreachable!()
    };
    // read D, read E[D], and everything fetched after them (here: the
    // halt) are discarded; the paper's figure shows the same two loads
    // leaving the reorder buffer.
    assert!(squashed >= 2, "at least read D and read E[D] are discarded");
    assert!(rollback.cycle > load_d_first.cycle);

    // The invalidation that caused it is in the memory-side trace, at or
    // before the rollback.
    let inv = report
        .trace
        .iter()
        .find(|e| {
            e.proc == 0
                && matches!(&e.kind, TraceKind::Invalidation { line } if line.0 == paper::D >> 6)
        })
        .expect("the antagonist's store invalidates D at processor 0");
    assert!(inv.cycle <= rollback.cycle);

    // -- Event 6-7: D reissued, now a miss; E[D] re-executed with the
    //    new value. --
    let load_d_again = trace
        .iter()
        .find(|e| {
            e.cycle > rollback.cycle
                && matches!(&e.kind, TraceKind::LoadIssue { addr, .. } if addr.0 == paper::D)
        })
        .expect("read D reissued after the rollback");
    assert!(
        matches!(
            load_d_again.kind,
            TraceKind::LoadIssue {
                outcome: IssueOutcome::Miss,
                ..
            }
        ),
        "the reissued read D misses (its line was invalidated)"
    );
    let new_e = paper::E_BASE + NEW_D * 8;
    trace
        .iter()
        .find(|e| {
            e.cycle > rollback.cycle
                && matches!(&e.kind, TraceKind::LoadIssue { addr, .. } if addr.0 == new_e)
        })
        .expect("read E[D] re-executed with the new index");

    // -- Events 2/4/8: both stores complete via prefetched ownership
    //    (hit or merge, never a fresh miss). --
    for (name, addr) in [("B", paper::B), ("C", paper::C)] {
        let st = trace
            .iter()
            .find(|e| matches!(&e.kind, TraceKind::StoreIssue { addr: a, .. } if a.0 == addr))
            .unwrap_or_else(|| panic!("store {name} issued"));
        assert!(
            matches!(
                st.kind,
                TraceKind::StoreIssue {
                    outcome: IssueOutcome::Hit | IssueOutcome::Merged,
                    ..
                }
            ),
            "store {name} must use the prefetched line, got {:?}",
            st.kind
        );
    }

    // -- Event 9: final state. --
    assert_eq!(report.reg(0, R1), 0xA0, "read A's value");
    assert_eq!(report.reg(0, R3), NEW_D, "read D observes the new value");
    assert_eq!(report.reg(0, R4), 0xE2, "read E[D] observes E[new D]");
    assert_eq!(report.mem_word(paper::B), 1);
    assert_eq!(report.mem_word(paper::C), 2);
    assert_eq!(report.total.rollbacks, 1);
}

#[test]
fn figure5_without_antagonist_never_rolls_back() {
    let mut cfg = Cfg::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let mut m = Machine::new(cfg, vec![paper::figure5_main()]);
    m.write_memory(paper::D, paper::D_VALUE);
    m.write_memory(paper::E_AT_D, 0xE1);
    m.write_memory(paper::A, 0xA0);
    m.preload_cache(0, paper::D, false);
    let report = m.run();
    assert!(!report.timed_out);
    assert_eq!(report.total.rollbacks, 0);
    assert_eq!(report.reg(0, R3), paper::D_VALUE);
    assert_eq!(report.reg(0, R4), 0xE1);
}

#[test]
fn figure5_rollback_rate_insensitive_to_injection_time() {
    // Anywhere in the window between D's speculative consumption and its
    // retirement, the invalidation must trigger exactly one rollback and
    // still produce the correct final state.
    for delay in [10u32, 30, 60, 90] {
        let report = run_figure5(delay);
        assert_eq!(report.total.rollbacks, 1, "delay={delay}");
        assert_eq!(report.reg(0, R3), NEW_D, "delay={delay}");
        assert_eq!(report.reg(0, R4), 0xE2, "delay={delay}");
    }
}
