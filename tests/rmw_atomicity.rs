//! Appendix A regression: a coherence hazard matching an RMW whose atomic
//! has already performed must discard only the computation *after* it —
//! re-executing a non-idempotent atomic (fetch-and-add) would double-
//! apply it.
//!
//! The scenario engineers the narrow window: the victim's fetch-add hits
//! locally (its line was pre-owned) the cycle its blocking loads drain,
//! and the attacker's write to the same line lands one cycle after the
//! atomic applied — while the RMW's spec-buffer entry is still resident
//! behind an older load.

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R2, R3, R5};
use mcsim_isa::{AluOp, MemFlavor, Program, RmwKind};

const A: u64 = 0x5000;
const B: u64 = 0x5100;
const COUNTER: u64 = 0x6000;

fn victim() -> Program {
    ProgramBuilder::new("victim")
        .load(R1, A) // miss — keeps the spec buffer FIFO occupied
        .load(R2, B) // miss
        .rmw(R3, COUNTER, RmwKind::FetchAdd, 1u64, MemFlavor::Acquire)
        .halt()
        .build()
        .unwrap()
}

/// Attacker whose store to the counter line lands at a configurable
/// cycle (three dependent unit-latency ALUs ≈ issue at `chain`).
fn attacker(chain: usize) -> Program {
    let mut b = ProgramBuilder::new("attacker");
    for _ in 0..chain {
        b = b.alu(R5, AluOp::Add, R5, 1u64);
    }
    b.store(COUNTER + 8, 1u64) // same line, different word (false sharing)
        .halt()
        .build()
        .unwrap()
}

#[test]
fn performed_rmw_never_double_applies() {
    // Sweep the attacker's timing across the sensitive window; whatever
    // the interleaving, the fetch-add must apply exactly once.
    for chain in 0..8 {
        let cfg = Cfg::paper_with(Model::Sc, Techniques::SPECULATION);
        let mut m = Machine::new(cfg, vec![victim(), attacker(chain)]);
        m.write_memory(COUNTER, 10);
        m.preload_cache(0, COUNTER, true); // victim owns the counter line
        let report = m.run();
        assert!(!report.timed_out, "chain={chain}");
        assert_eq!(
            report.mem_word(COUNTER),
            11,
            "chain={chain}: fetch-add applied other than exactly once \
             (rollbacks={}, reissues={})",
            report.total.rollbacks,
            report.total.reissues,
        );
        assert_eq!(report.reg(0, R3), 10, "chain={chain}: old value returned");
    }
}

#[test]
fn performed_rmw_behind_forwarded_load_takes_partial_rollback() {
    // The reachable double-apply window: under RC a store retires from
    // the ROB at address translation, so a *forwarded* load (immune to
    // hazards, ROB-retired early) can sit unretired at the spec-buffer
    // head for the store's full 198-cycle remote latency while the RMW
    // behind it issues, performs, and stays matchable (non-head, so
    // footnote 4 does not protect it). A false-sharing invalidation then
    // matches the performed RMW: Appendix A demands only the tail be
    // discarded — re-executing the atomic would double-apply it.
    const SLOW: u64 = 0x7000;
    // The load is an *acquire* forwarded from the store: its spec entry
    // has acq set and only becomes done when the store performs (cycle
    // ~198), pinning it — immune but unretirable — at the buffer head.
    let victim = ProgramBuilder::new("victim-rc")
        .store(SLOW, 5u64) // remote sharer => 198-cycle store
        .load_acquire(R1, SLOW) // forwarded; pinned until the store performs
        .rmw(R3, COUNTER, RmwKind::FetchAdd, 1u64, MemFlavor::Ordinary)
        .halt()
        .build()
        .unwrap();
    let attack = {
        let mut b = ProgramBuilder::new("attacker-rc");
        b = b.alu_lat(R5, AluOp::Add, 0u64, 0u64, 20);
        b.store(COUNTER + 8, R5).halt().build().unwrap()
    };
    for model in [Model::Wc, Model::Rc] {
        let cfg = Cfg::paper_with(model, Techniques::SPECULATION);
        let mut m = Machine::new(
            cfg,
            vec![victim.clone(), attack.clone(), mcsim_isa::Program::idle()],
        );
        m.write_memory(COUNTER, 10);
        m.write_memory(SLOW, 0);
        m.preload_cache(0, COUNTER, true); // victim owns the counter line
        m.preload_cache(2, SLOW, false); // remote sharer slows the store
        let report = m.run();
        assert!(!report.timed_out, "{model}");
        assert_eq!(
            report.mem_word(COUNTER),
            11,
            "{model}: fetch-add applied other than exactly once \
             (rollbacks={})",
            report.total.rollbacks,
        );
        assert_eq!(report.reg(0, R3), 10, "{model}: old value returned once");
        assert_eq!(report.reg(0, R1), 5, "{model}: forwarded load value");
    }
}
