//! The paper's §3.3 / §4.1 cycle counts, reproduced exactly.
//!
//! Figure 2's two code segments are walked through by the paper with
//! precise cycle totals under the calibration "cache hit latency of 1
//! cycle and cache miss latency of 100 cycles" and a memory system that
//! accepts one access per cycle. This test pins every number:
//!
//! | workload  | SC base | RC base | SC+pf | RC+pf | SC+spec | RC+spec |
//! |-----------|---------|---------|-------|-------|---------|---------|
//! | Example 1 | 301     | 202     | 103   | 103   | —       | —       |
//! | Example 2 | 302     | 203     | 203   | 202   | 104     | 104     |
//!
//! (The §4.1 speculative numbers combine speculative loads with prefetch
//! for stores, as §4.3 prescribes.)

use mcsim::prelude::*;
use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::paper;
use mcsim_consistency::Model;

fn report_example1(model: Model, t: Techniques) -> RunReport {
    let cfg = Cfg::paper_with(model, t);
    let m = Machine::new(cfg, vec![paper::example1()]);
    let report = m.run();
    assert!(!report.timed_out);
    report
}

fn run_example1(model: Model, t: Techniques) -> u64 {
    report_example1(model, t).cycles
}

fn report_example2(model: Model, t: Techniques) -> RunReport {
    let cfg = Cfg::paper_with(model, t);
    let mut m = Machine::new(cfg, vec![paper::example2()]);
    paper::setup_example2(&mut m);
    let report = m.run();
    assert!(!report.timed_out);
    // The dependent load must observe the right element of E.
    assert_eq!(report.reg(0, mcsim_isa::reg::R4), 0xE1, "{model}/{t}");
    report
}

fn run_example2(model: Model, t: Techniques) -> u64 {
    report_example2(model, t).cycles
}

#[test]
fn example1_sc_conventional_takes_301_cycles() {
    assert_eq!(run_example1(Model::Sc, Techniques::NONE), 301);
}

#[test]
fn example1_rc_conventional_takes_202_cycles() {
    assert_eq!(run_example1(Model::Rc, Techniques::NONE), 202);
}

#[test]
fn example1_prefetch_takes_103_cycles_under_both_models() {
    assert_eq!(run_example1(Model::Sc, Techniques::PREFETCH), 103);
    assert_eq!(run_example1(Model::Rc, Techniques::PREFETCH), 103);
}

#[test]
fn example2_sc_conventional_takes_302_cycles() {
    assert_eq!(run_example2(Model::Sc, Techniques::NONE), 302);
}

#[test]
fn example2_rc_conventional_takes_203_cycles() {
    assert_eq!(run_example2(Model::Rc, Techniques::NONE), 203);
}

#[test]
fn example2_prefetch_only_leaves_dependent_load_exposed() {
    // §3.3: prefetching cannot consume the hit value of D out of order,
    // so SC only reaches 203 and RC 202.
    assert_eq!(run_example2(Model::Sc, Techniques::PREFETCH), 203);
    assert_eq!(run_example2(Model::Rc, Techniques::PREFETCH), 202);
}

#[test]
fn example2_speculation_takes_104_cycles_under_both_models() {
    // §4.1: "both SC and RC complete the accesses in 104 cycles."
    assert_eq!(run_example2(Model::Sc, Techniques::BOTH), 104);
    assert_eq!(run_example2(Model::Rc, Techniques::BOTH), 104);
}

#[test]
fn example1_techniques_equalize_sc_and_rc() {
    // The headline claim: with the techniques on, the model choice stops
    // mattering.
    let sc = run_example1(Model::Sc, Techniques::BOTH);
    let rc = run_example1(Model::Rc, Techniques::BOTH);
    assert_eq!(sc, rc);
    assert!(sc <= 103);
}

#[test]
fn intermediate_models_fall_between_sc_and_rc() {
    // PC and WC (Figure 1's middle of the spectrum) must land between
    // the extremes on the producer example, and equalize with the
    // techniques on.
    let sc = run_example1(Model::Sc, Techniques::NONE);
    let pc = run_example1(Model::Pc, Techniques::NONE);
    let wc = run_example1(Model::Wc, Techniques::NONE);
    let rc = run_example1(Model::Rc, Techniques::NONE);
    assert!(rc <= wc && wc <= sc, "rc={rc} wc={wc} sc={sc}");
    assert!(rc <= pc && pc <= sc, "rc={rc} pc={pc} sc={sc}");
    for model in [Model::Pc, Model::Wc] {
        assert_eq!(run_example1(model, Techniques::PREFETCH), 103, "{model}");
    }
}

#[test]
fn breakdown_components_sum_to_pinned_totals_in_every_cell() {
    // The cycle-accounting identity over the whole Figure 2 matrix: each
    // cell's per-cause breakdown must sum exactly to its (pinned) cycle
    // total — nothing double-counted, no cycle unattributed.
    for model in Model::ALL {
        for t in Techniques::ALL {
            for (name, report) in [
                ("example1", report_example1(model, t)),
                ("example2", report_example2(model, t)),
            ] {
                let b = &report.total.breakdown;
                assert_eq!(b.total(), report.cycles, "{name} {model}/{t}: {b:?}");
            }
        }
    }
}

#[test]
fn example1_sc_base_decomposes_into_write_and_acquire_stalls() {
    // §3.3 walk-through: conventional SC serializes three 100-cycle
    // misses — the stores to A and B stall retirement as write stalls
    // (~2 × 99 cycles behind the 1-cycle issues), and the lock release
    // RMW's acquire phase accounts for the third.
    let b = report_example1(Model::Sc, Techniques::NONE).total.breakdown;
    assert_eq!(b.busy, 3, "{b:?}");
    assert_eq!(b.write_stall, 198, "{b:?}");
    assert_eq!(b.acquire_stall, 100, "{b:?}");
    assert_eq!(b.total(), 301, "{b:?}");
}

#[test]
fn example1_rc_base_overlaps_one_write_miss() {
    // RC retires past pending stores, so only one write-miss latency is
    // exposed; the lock RMW's 100 cycles remain.
    let b = report_example1(Model::Rc, Techniques::NONE).total.breakdown;
    assert_eq!(b.write_stall, 101, "{b:?}");
    assert_eq!(b.acquire_stall, 100, "{b:?}");
    assert_eq!(b.total(), 202, "{b:?}");
}

#[test]
fn example1_prefetch_eliminates_the_write_stalls() {
    // With exclusive prefetch the store misses overlap the lock RMW;
    // only the acquire latency survives in the 103-cycle run.
    for model in [Model::Sc, Model::Rc] {
        let b = report_example1(model, Techniques::PREFETCH).total.breakdown;
        assert_eq!(b.acquire_stall, 100, "{model}: {b:?}");
        assert!(b.write_stall <= 2, "{model}: {b:?}");
        assert_eq!(b.total(), 103, "{model}: {b:?}");
    }
}

#[test]
fn example2_speculation_converts_read_stalls_to_busy_overlap() {
    // §4.1: speculative loads hide the dependent-load chain; the read
    // stall component collapses from ~198 cycles (SC base) to ~1.
    let base = report_example2(Model::Sc, Techniques::NONE).total.breakdown;
    let spec = report_example2(Model::Sc, Techniques::BOTH).total.breakdown;
    assert_eq!(base.read_stall, 198, "{base:?}");
    assert_eq!(base.total(), 302, "{base:?}");
    assert!(spec.read_stall <= 1, "{spec:?}");
    assert_eq!(spec.total(), 104, "{spec:?}");
}

#[test]
fn final_memory_state_is_identical_across_all_configurations() {
    for model in Model::ALL {
        for t in Techniques::ALL {
            let cfg = Cfg::paper_with(model, t);
            let report = Machine::new(cfg, vec![paper::example1()]).run();
            assert_eq!(report.mem_word(paper::A), 1, "{model}/{t}");
            assert_eq!(report.mem_word(paper::B), 2, "{model}/{t}");
            assert_eq!(report.mem_word(paper::LOCK), 0, "{model}/{t}");
        }
    }
}
