//! Litmus tests: the machine-checkable form of the paper's correctness
//! argument.
//!
//! §4.2 argues the detection + correction mechanism preserves the
//! supported consistency model no matter how aggressively loads
//! speculate. We check it the strong way: every simulated execution
//! under SC — with prefetching, speculation, or both — must be a
//! sequentially consistent outcome according to the exhaustive
//! interleaving oracle. Data-race-free programs must additionally be SC
//! under *every* model (§5: "release consistent architectures are
//! guaranteed to provide sequential consistency for programs that are
//! free of data races").

use mcsim::sim::MachineConfig as Cfg;
use mcsim::workloads::generators::{self, RandomParams};
use mcsim::workloads::litmus::{self, Litmus};
use mcsim_consistency::Model;
use mcsim_isa::reg::{R1, R2};
use mcsim_proc::Techniques;
use std::collections::BTreeMap;

fn assert_sc(l: &Litmus, model: Model, t: Techniques) {
    let report = l.run(Cfg::paper_with(model, t));
    assert!(!report.timed_out, "{} {model}/{t}: timed out", l.name);
    assert!(
        l.is_sequentially_consistent(&report),
        "{} under {model}/{t}: final state not sequentially consistent\n{}",
        l.name,
        report.summary(),
    );
}

#[test]
fn standard_suite_is_sc_under_sc_with_all_techniques() {
    for l in litmus::standard_suite() {
        for t in Techniques::ALL {
            assert_sc(&l, Model::Sc, t);
        }
    }
}

#[test]
fn message_passing_is_sc_under_every_model() {
    // Properly synchronized (release/acquire): DRF, so every model must
    // deliver SC results.
    let l = litmus::message_passing();
    for model in Model::ALL_EXTENDED {
        for t in Techniques::ALL {
            assert_sc(&l, model, t);
        }
    }
}

#[test]
fn store_buffering_under_sc_never_observes_zero_zero() {
    let l = litmus::store_buffering();
    for t in Techniques::ALL {
        let report = l.run(Cfg::paper_with(Model::Sc, t));
        let (r0, r1) = (report.reg(0, R1), report.reg(1, R1));
        assert!(
            !(r0 == 0 && r1 == 0),
            "SC/{t} observed the forbidden (0,0) outcome"
        );
    }
}

#[test]
fn coherence_rr_holds_under_every_model() {
    // Per-location coherence: two reads of one location never go
    // backwards, even under the most relaxed model with full speculation.
    let l = litmus::coherence_rr();
    for model in Model::ALL_EXTENDED {
        for t in Techniques::ALL {
            let report = l.run(Cfg::paper_with(model, t));
            let (r1, r2) = (report.reg(1, R1), report.reg(1, R2));
            assert!(
                !(r1 == 1 && r2 == 0),
                "{model}/{t}: reads of one location went backwards"
            );
        }
    }
}

#[test]
fn dekker_mutual_exclusion_holds_under_sc_with_speculation() {
    // Dekker-style flags only work under SC — precisely the kind of
    // program the paper's techniques must not break while making SC fast.
    let l = litmus::dekker_attempt();
    for t in Techniques::ALL {
        assert_sc(&l, Model::Sc, t);
    }
}

#[test]
fn random_racy_programs_stay_sc_under_sc() {
    // 60 seeded random racy programs; every SC execution must be in the
    // oracle set regardless of techniques.
    for seed in 0..60 {
        let params = RandomParams {
            procs: 2,
            ops: 4,
            addrs: 3,
            seed,
        };
        let l = Litmus {
            name: "random-racy",
            programs: generators::random_racy(&params),
            init: BTreeMap::new(),
        };
        for t in [Techniques::NONE, Techniques::BOTH] {
            let report = l.run(Cfg::paper_with(Model::Sc, t));
            assert!(
                l.is_sequentially_consistent(&report),
                "seed {seed} under SC/{t} produced a non-SC outcome"
            );
        }
    }
}

#[test]
fn random_drf_programs_are_sc_under_every_model() {
    // Lock-protected random programs are data-race-free: every model and
    // technique combination must give a sequentially consistent result
    // (§5's guarantee for DRF programs).
    for seed in 0..12 {
        let params = RandomParams {
            procs: 2,
            ops: 3,
            addrs: 2,
            seed,
        };
        let l = Litmus {
            name: "random-drf",
            programs: generators::random_drf(&params),
            init: BTreeMap::new(),
        };
        for model in Model::ALL_EXTENDED {
            for t in [Techniques::NONE, Techniques::BOTH] {
                let report = l.run(Cfg::paper_with(model, t));
                assert!(
                    l.is_sequentially_consistent(&report),
                    "seed {seed} under {model}/{t} produced a non-SC outcome"
                );
            }
        }
    }
}

#[test]
fn relaxed_models_actually_relax_the_racy_mp_test() {
    // Sanity that the models differ at all: under WC/RC with speculation
    // the racy message-passing test may legally produce a non-SC outcome
    // (flag seen set but stale data). We don't *require* the violation —
    // timing could mask it — but SC must never show one while at least
    // one relaxed model run must differ from conventional SC timing-wise.
    let l = litmus::message_passing_racy();
    let sc = l.run(Cfg::paper_with(Model::Sc, Techniques::BOTH));
    assert!(l.is_sequentially_consistent(&sc));
    let rc = l.run(Cfg::paper_with(Model::Rc, Techniques::NONE));
    assert!(!rc.timed_out);
}
