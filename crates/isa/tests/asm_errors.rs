//! Assembler error paths: every rejection must carry the offending
//! 1-based source line (0 for program-level validation) and a message
//! naming the bad token, so `mcsim asm`/`mcsim run` diagnostics point at
//! the actual mistake.

use mcsim_isa::asm::{assemble, AsmError};

fn expect_err(src: &str) -> AsmError {
    assemble("t", src).expect_err("source must be rejected")
}

#[test]
fn bad_register_is_rejected_with_line() {
    let e = expect_err("ld r99, [0x1000]\nhalt\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("r99"), "{e}");
    assert!(e.msg.contains("out of range"), "{e}");
    assert_eq!(e.to_string(), format!("asm line 1: {}", e.msg));
}

#[test]
fn non_register_where_register_expected() {
    let e = expect_err("nop\nld pickle, [0x40]\nhalt\n");
    assert_eq!(e.line, 2, "line numbers are 1-based and skip nothing");
    assert!(e.msg.contains("expected a register"), "{e}");
    assert!(e.msg.contains("pickle"), "{e}");
}

#[test]
fn duplicate_label_is_rejected_at_second_definition() {
    let e = expect_err("top: nop\nnop\ntop: halt\n");
    assert_eq!(e.line, 3, "the *second* definition is the error");
    assert!(e.msg.contains("duplicate label `top`"), "{e}");
}

#[test]
fn out_of_range_immediate_is_rejected() {
    // One past u64::MAX cannot be represented; the number parser must
    // reject it rather than wrap.
    let e = expect_err("st [0x40], 18446744073709551616\nhalt\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("expected a number"), "{e}");
    // Same for a hex immediate wider than 64 bits, as an address.
    let e = expect_err("ld r1, [0x10000000000000000]\nhalt\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("expected a number"), "{e}");
}

#[test]
fn unknown_mnemonic_label_and_suffix_errors() {
    let e = expect_err("frob r1, r2\nhalt\n");
    assert!(e.msg.contains("unknown mnemonic `frob`"), "{e}");

    let e = expect_err("beq r1, 0, nowhere\nhalt\n");
    assert!(e.msg.contains("unknown label `nowhere`"), "{e}");

    let e = expect_err("ld.wat r1, [0x40]\nhalt\n");
    assert!(e.msg.contains("unknown memory suffix `.wat`"), "{e}");

    let e = expect_err("pf.shared [0x40]\nhalt\n");
    assert!(e.msg.contains("unknown prefetch suffix `.shared`"), "{e}");
}

#[test]
fn operand_arity_is_checked() {
    let e = expect_err("ld r1\nhalt\n");
    assert_eq!(e.line, 1);
    assert!(e.msg.contains("expects 2 operand(s), found 1"), "{e}");
}

#[test]
fn program_level_validation_reports_line_zero() {
    // `jmp @9` parses but targets past the end; Program::new rejects it
    // as a validation error, reported without a source line.
    let e = expect_err("jmp @9\nhalt\n");
    assert_eq!(e.line, 0);
    assert!(e.to_string().starts_with("asm: "), "{e}");
    assert!(e.msg.contains("outside program"), "{e}");

    let e = expect_err("nop\n");
    assert_eq!(e.line, 0);
    assert!(e.msg.contains("no halt"), "{e}");
}
