//! Property: `assemble(disassemble(p))` reproduces any valid program.

use mcsim_isa::asm::{assemble, disassemble};
use mcsim_isa::{
    AddrExpr, AluOp, BranchHint, CmpOp, Instr, MemFlavor, Operand, Program, RegId, RmwKind,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = RegId> {
    (0u8..32).prop_map(RegId::new)
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        any::<u64>().prop_map(Operand::Imm),
        reg().prop_map(Operand::Reg),
    ]
}

fn addr_expr() -> impl Strategy<Value = AddrExpr> {
    prop_oneof![
        (0u64..0x10_0000).prop_map(AddrExpr::direct),
        (0u64..0x10_0000, reg(), 1u64..16).prop_map(|(b, r, s)| AddrExpr::indexed(b, r, s)),
    ]
}

fn flavor() -> impl Strategy<Value = MemFlavor> {
    prop_oneof![
        Just(MemFlavor::Ordinary),
        Just(MemFlavor::Acquire),
        Just(MemFlavor::Release),
    ]
}

/// A non-control instruction (targets are patched separately so they
/// always stay in range).
fn straight_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), addr_expr(), flavor()).prop_map(|(dst, addr, flavor)| Instr::Load {
            dst,
            addr,
            flavor
        }),
        (addr_expr(), operand(), flavor()).prop_map(|(addr, src, flavor)| Instr::Store {
            addr,
            src,
            flavor
        }),
        (
            reg(),
            addr_expr(),
            prop_oneof![
                Just(RmwKind::TestAndSet),
                Just(RmwKind::FetchAdd),
                Just(RmwKind::Swap)
            ],
            operand(),
            flavor()
        )
            .prop_map(|(dst, addr, kind, src, flavor)| Instr::Rmw {
                dst,
                addr,
                kind,
                src,
                flavor
            }),
        (
            reg(),
            prop_oneof![
                Just(AluOp::Add),
                Just(AluOp::Sub),
                Just(AluOp::And),
                Just(AluOp::Or),
                Just(AluOp::Xor),
                Just(AluOp::Mul)
            ],
            operand(),
            operand(),
            1u32..100
        )
            .prop_map(|(dst, op, lhs, rhs, latency)| Instr::Alu {
                dst,
                op,
                lhs,
                rhs,
                latency
            }),
        (addr_expr(), any::<bool>())
            .prop_map(|(addr, exclusive)| Instr::Prefetch { addr, exclusive }),
        Just(Instr::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn disassemble_assemble_roundtrip(
        body in prop::collection::vec(straight_instr(), 0..24),
        branch in (
            prop_oneof![Just(CmpOp::Eq), Just(CmpOp::Ne), Just(CmpOp::Lt), Just(CmpOp::Ge)],
            operand(),
            operand(),
            prop_oneof![Just(BranchHint::Dynamic), Just(BranchHint::Taken), Just(BranchHint::NotTaken)],
        ),
        target_frac in 0.0f64..1.0,
    ) {
        // Assemble a program: body, a branch whose target is somewhere in
        // range, then halt.
        let mut instrs = body;
        let len_after = instrs.len() as u32 + 2; // + branch + halt
        let target = ((len_after - 1) as f64 * target_frac) as u32;
        let (cond, lhs, rhs, hint) = branch;
        instrs.push(Instr::Branch { cond, lhs, rhs, target, hint });
        instrs.push(Instr::Halt);
        let p = Program::new("prop", instrs).expect("constructed valid");

        let text = disassemble(&p);
        let p2 = assemble("prop", &text)
            .unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        prop_assert_eq!(p.instrs(), p2.instrs());
    }
}
