//! Instruction set.
//!
//! Memory instructions carry a [`MemFlavor`] classifying them as ordinary,
//! acquire, or release accesses — the information release consistency (and
//! weak consistency, which treats both sync kinds alike) exploits. Under SC
//! and PC the flavor is irrelevant for ordering (every access is ordered)
//! but is still tracked so the same program runs unchanged under every
//! model.

use crate::addr::AddrExpr;
use crate::reg::RegId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A source operand: an immediate or a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A 64-bit immediate constant.
    Imm(u64),
    /// The value of a register.
    Reg(RegId),
}

impl Operand {
    /// The register this operand depends on, if any.
    #[must_use]
    pub fn dep(&self) -> Option<RegId> {
        match self {
            Operand::Imm(_) => None,
            Operand::Reg(r) => Some(*r),
        }
    }

    /// Evaluates the operand.
    #[must_use]
    pub fn eval(&self, read_reg: impl FnOnce(RegId) -> u64) -> u64 {
        match self {
            Operand::Imm(v) => *v,
            Operand::Reg(r) => read_reg(*r),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl From<RegId> for Operand {
    fn from(r: RegId) -> Self {
        Operand::Reg(r)
    }
}

/// Classification of a memory access for the consistency models (§2).
///
/// * `Ordinary` — a plain data access.
/// * `Acquire` — a read synchronization access gaining access to shared
///   data (lock acquisition, spinning on a flag). Always a read (or the
///   read half of a read-modify-write).
/// * `Release` — a write synchronization access granting that permission
///   (unlock, setting a flag). Always a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemFlavor {
    /// Plain data access.
    Ordinary,
    /// Read synchronization (lock, flag spin).
    Acquire,
    /// Write synchronization (unlock, flag set).
    Release,
}

impl MemFlavor {
    /// Whether this is a synchronization access (acquire or release) —
    /// what weak consistency keys its delays on.
    #[must_use]
    pub fn is_sync(self) -> bool {
        !matches!(self, MemFlavor::Ordinary)
    }
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Wrapping multiplication.
    Mul,
}

impl AluOp {
    /// Applies the operation.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Mul => a.wrapping_mul(b),
        }
    }
}

/// Branch comparison predicates (unsigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the predicate.
    #[must_use]
    pub fn apply(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Static prediction hint attached to a conditional branch.
///
/// The paper assumes the predictor follows the path on which the lock
/// succeeds (§3.3); `NotTaken` on a spin loop's backward branch encodes
/// exactly that. `Dynamic` defers to the core's branch target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchHint {
    /// Let the BTB / dynamic predictor decide.
    Dynamic,
    /// Statically predict taken.
    Taken,
    /// Statically predict not taken.
    NotTaken,
}

/// Atomic read-modify-write kinds (Appendix A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmwKind {
    /// Test-and-set: reads the old value, writes 1. A successful lock
    /// acquisition reads 0.
    TestAndSet,
    /// Fetch-and-add: reads the old value, writes `old + operand`.
    FetchAdd,
    /// Swap: reads the old value, writes the operand.
    Swap,
}

impl RmwKind {
    /// The value stored by the atomic, given the old memory value and the
    /// instruction operand.
    #[must_use]
    pub fn new_value(self, old: u64, operand: u64) -> u64 {
        match self {
            RmwKind::TestAndSet => 1,
            RmwKind::FetchAdd => old.wrapping_add(operand),
            RmwKind::Swap => operand,
        }
    }
}

/// One instruction of the mini-ISA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// `dst <- mem[addr]`.
    Load {
        /// Destination register.
        dst: RegId,
        /// Effective-address expression.
        addr: AddrExpr,
        /// Consistency classification.
        flavor: MemFlavor,
    },
    /// `mem[addr] <- src`.
    Store {
        /// Effective-address expression.
        addr: AddrExpr,
        /// Value to store.
        src: Operand,
        /// Consistency classification.
        flavor: MemFlavor,
    },
    /// Atomic `dst <- mem[addr]; mem[addr] <- kind(old, src)`.
    Rmw {
        /// Destination register (receives the old memory value).
        dst: RegId,
        /// Effective-address expression.
        addr: AddrExpr,
        /// Which read-modify-write operation.
        kind: RmwKind,
        /// Operand for the modify step.
        src: Operand,
        /// Consistency classification (usually [`MemFlavor::Acquire`]).
        flavor: MemFlavor,
    },
    /// `dst <- op(lhs, rhs)`, completing `latency` cycles after issue.
    Alu {
        /// Destination register.
        dst: RegId,
        /// Operation.
        op: AluOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Execution latency in cycles (minimum 1).
        latency: u32,
    },
    /// Conditional branch: if `cond(lhs, rhs)` then `pc <- target`.
    Branch {
        /// Comparison predicate.
        cond: CmpOp,
        /// Left comparison operand.
        lhs: Operand,
        /// Right comparison operand.
        rhs: Operand,
        /// Target instruction index within the program.
        target: u32,
        /// Static prediction hint.
        hint: BranchHint,
    },
    /// Unconditional jump.
    Jump {
        /// Target instruction index within the program.
        target: u32,
    },
    /// A software-controlled non-binding prefetch hint (§6 of the paper:
    /// Porterfield / Mowry & Gupta style). Brings the line toward the
    /// cache — read-shared or read-exclusive — without binding a value,
    /// so it is exempt from all consistency constraints.
    Prefetch {
        /// Effective-address expression.
        addr: AddrExpr,
        /// Request exclusive ownership (for an upcoming write).
        exclusive: bool,
    },
    /// Does nothing for one cycle.
    Nop,
    /// Terminates the processor's program.
    Halt,
}

impl Instr {
    /// Whether this instruction reads memory (loads and RMWs).
    #[must_use]
    pub fn is_mem_read(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Rmw { .. })
    }

    /// Whether this instruction writes memory (stores and RMWs).
    #[must_use]
    pub fn is_mem_write(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::Rmw { .. })
    }

    /// Whether this instruction accesses memory at all.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.is_mem_read() || self.is_mem_write()
    }

    /// The memory flavor, if this is a memory instruction.
    #[must_use]
    pub fn mem_flavor(&self) -> Option<MemFlavor> {
        match self {
            Instr::Load { flavor, .. }
            | Instr::Store { flavor, .. }
            | Instr::Rmw { flavor, .. } => Some(*flavor),
            _ => None,
        }
    }

    /// The destination register, if the instruction produces one.
    #[must_use]
    pub fn dst(&self) -> Option<RegId> {
        match self {
            Instr::Load { dst, .. } | Instr::Rmw { dst, .. } | Instr::Alu { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// All registers the instruction reads, in no particular order.
    #[must_use]
    pub fn sources(&self) -> Vec<RegId> {
        let mut out = Vec::new();
        let mut push = |r: Option<RegId>| {
            if let Some(r) = r {
                out.push(r);
            }
        };
        match self {
            Instr::Load { addr, .. } => push(addr.dep()),
            Instr::Store { addr, src, .. } => {
                push(addr.dep());
                push(src.dep());
            }
            Instr::Rmw { addr, src, .. } => {
                push(addr.dep());
                push(src.dep());
            }
            Instr::Alu { lhs, rhs, .. } => {
                push(lhs.dep());
                push(rhs.dep());
            }
            Instr::Branch { lhs, rhs, .. } => {
                push(lhs.dep());
                push(rhs.dep());
            }
            Instr::Prefetch { addr, .. } => push(addr.dep()),
            Instr::Jump { .. } | Instr::Nop | Instr::Halt => {}
        }
        out
    }

    /// Branch/jump target, if this is a control transfer.
    #[must_use]
    pub fn target(&self) -> Option<u32> {
        match self {
            Instr::Branch { target, .. } | Instr::Jump { target } => Some(*target),
            _ => None,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn suffix(flavor: &MemFlavor) -> &'static str {
            match flavor {
                MemFlavor::Ordinary => "",
                MemFlavor::Acquire => ".acq",
                MemFlavor::Release => ".rel",
            }
        }
        match self {
            Instr::Load { dst, addr, flavor } => {
                write!(f, "ld{} {dst}, {addr}", suffix(flavor))
            }
            Instr::Store { addr, src, flavor } => {
                write!(f, "st{} {addr}, {src}", suffix(flavor))
            }
            Instr::Rmw {
                dst,
                addr,
                kind,
                src,
                flavor,
            } => {
                let mnem = match kind {
                    RmwKind::TestAndSet => "tas",
                    RmwKind::FetchAdd => "fadd",
                    RmwKind::Swap => "swap",
                };
                // RMWs default to acquire in the assembler (the lock
                // idiom), so ordinary needs an explicit suffix.
                let sfx = match flavor {
                    MemFlavor::Acquire => "",
                    MemFlavor::Ordinary => ".ord",
                    MemFlavor::Release => ".rel",
                };
                write!(f, "{mnem}{sfx} {dst}, {addr}, {src}")
            }
            Instr::Alu {
                dst,
                op,
                lhs,
                rhs,
                latency,
            } => {
                let mnem = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Mul => "mul",
                };
                if *latency == 1 {
                    write!(f, "{mnem} {dst}, {lhs}, {rhs}")
                } else {
                    write!(f, "{mnem}.{latency} {dst}, {lhs}, {rhs}")
                }
            }
            Instr::Branch {
                cond,
                lhs,
                rhs,
                target,
                hint,
            } => {
                let mnem = match cond {
                    CmpOp::Eq => "beq",
                    CmpOp::Ne => "bne",
                    CmpOp::Lt => "blt",
                    CmpOp::Ge => "bge",
                };
                let h = match hint {
                    BranchHint::Dynamic => "",
                    BranchHint::Taken => ".t",
                    BranchHint::NotTaken => ".nt",
                };
                write!(f, "{mnem}{h} {lhs}, {rhs}, @{target}")
            }
            Instr::Prefetch { addr, exclusive } => {
                if *exclusive {
                    write!(f, "pf.ex {addr}")
                } else {
                    write!(f, "pf {addr}")
                }
            }
            Instr::Jump { target } => write!(f, "jmp @{target}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{R1, R2, R3};

    #[test]
    fn alu_ops() {
        assert_eq!(AluOp::Add.apply(2, 3), 5);
        assert_eq!(AluOp::Sub.apply(2, 3), u64::MAX);
        assert_eq!(AluOp::And.apply(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.apply(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.apply(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Mul.apply(u64::MAX, 2), u64::MAX - 1);
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Eq.apply(4, 4));
        assert!(CmpOp::Ne.apply(4, 5));
        assert!(CmpOp::Lt.apply(4, 5));
        assert!(CmpOp::Ge.apply(5, 5));
        assert!(!CmpOp::Lt.apply(5, 4));
    }

    #[test]
    fn rmw_new_values() {
        assert_eq!(RmwKind::TestAndSet.new_value(0, 99), 1);
        assert_eq!(RmwKind::FetchAdd.new_value(10, 5), 15);
        assert_eq!(RmwKind::Swap.new_value(10, 5), 5);
    }

    #[test]
    fn flavor_sync() {
        assert!(!MemFlavor::Ordinary.is_sync());
        assert!(MemFlavor::Acquire.is_sync());
        assert!(MemFlavor::Release.is_sync());
    }

    #[test]
    fn classification_predicates() {
        let ld = Instr::Load {
            dst: R1,
            addr: AddrExpr::direct(0),
            flavor: MemFlavor::Ordinary,
        };
        let st = Instr::Store {
            addr: AddrExpr::direct(0),
            src: Operand::Imm(1),
            flavor: MemFlavor::Release,
        };
        let rmw = Instr::Rmw {
            dst: R1,
            addr: AddrExpr::direct(0),
            kind: RmwKind::TestAndSet,
            src: Operand::Imm(0),
            flavor: MemFlavor::Acquire,
        };
        assert!(ld.is_mem_read() && !ld.is_mem_write());
        assert!(!st.is_mem_read() && st.is_mem_write());
        assert!(rmw.is_mem_read() && rmw.is_mem_write());
        assert_eq!(st.mem_flavor(), Some(MemFlavor::Release));
        assert_eq!(Instr::Nop.mem_flavor(), None);
    }

    #[test]
    fn sources_collects_deps() {
        let i = Instr::Store {
            addr: AddrExpr::indexed(0x10, R2, 8),
            src: Operand::Reg(R3),
            flavor: MemFlavor::Ordinary,
        };
        let s = i.sources();
        assert!(s.contains(&R2) && s.contains(&R3));
        assert_eq!(i.dst(), None);
    }

    #[test]
    fn display_roundtrippable_shapes() {
        let i = Instr::Load {
            dst: R1,
            addr: AddrExpr::indexed(0x1000, R2, 8),
            flavor: MemFlavor::Acquire,
        };
        assert_eq!(i.to_string(), "ld.acq r1, [0x1000+r2*8]");
        let b = Instr::Branch {
            cond: CmpOp::Ne,
            lhs: Operand::Reg(R1),
            rhs: Operand::Imm(0),
            target: 3,
            hint: BranchHint::NotTaken,
        };
        assert_eq!(b.to_string(), "bne.nt r1, 0, @3");
    }
}
