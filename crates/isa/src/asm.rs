//! A small text assembler and disassembler.
//!
//! The syntax mirrors the `Display` form of [`Instr`]:
//!
//! ```text
//! ; Example 2 of the paper (consumer side), RC flavors
//! acquire:
//!   tas.acq r1, [0x40], 0      ; lock L
//!   bne.nt  r1, 0, acquire     ; spin, predicted to succeed
//!   ld      r2, [0x100]        ; read C   (miss)
//!   ld      r3, [0x140]        ; read D   (hit)
//!   ld      r4, [0x1000+r3*8]  ; read E[D]
//!   st.rel  [0x40], 0          ; unlock L
//!   halt
//! ```
//!
//! * Comments start with `;` or `#` and run to end of line.
//! * Labels are identifiers followed by `:`; they may share a line with an
//!   instruction or stand alone.
//! * Numbers are decimal or `0x` hexadecimal.
//! * Address expressions are `[base]`, `[base+rN]`, or `[base+rN*scale]`.
//! * Mnemonic suffixes: `.acq` / `.rel` (memory flavor), `.t` / `.nt`
//!   (static branch hints), `.<n>` on ALU ops (latency).

use crate::addr::AddrExpr;
use crate::instr::{AluOp, BranchHint, CmpOp, Instr, MemFlavor, Operand, RmwKind};
use crate::program::{Program, ValidationError};
use crate::reg::RegId;
use std::collections::HashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number where the problem was found (0 for program-level
    /// validation errors).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm: {}", self.msg)
        } else {
            write!(f, "asm line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ValidationError> for AsmError {
    fn from(e: ValidationError) -> Self {
        AsmError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

/// Assembles `source` into a validated [`Program`] named `name`.
///
/// # Errors
/// Returns the first syntax or validation problem found, with its line.
pub fn assemble(name: &str, source: &str) -> Result<Program, AsmError> {
    // Pass 1: strip comments, peel labels, collect instruction texts.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut texts: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let mut line = raw;
        if let Some(p) = line.find([';', '#']) {
            line = &line[..p];
        }
        let mut rest = line.trim();
        // A line may carry several labels (`a: b: instr`).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break; // not a label — let instruction parsing report it
            }
            if labels
                .insert(label.to_string(), texts.len() as u32)
                .is_some()
            {
                return Err(err(lineno, format!("duplicate label `{label}`")));
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            texts.push((lineno, rest.to_string()));
        }
    }

    // Pass 2: parse instructions, resolving label operands.
    let mut instrs = Vec::with_capacity(texts.len());
    for (lineno, text) in &texts {
        instrs.push(parse_instr(*lineno, text, &labels)?);
    }
    Ok(Program::new(name, instrs)?)
}

/// Renders a program back to assembly text that [`assemble`] accepts.
#[must_use]
pub fn disassemble(p: &Program) -> String {
    let mut out = String::new();
    // Emit labels for every branch target.
    let mut targets: Vec<u32> = p.instrs().iter().filter_map(Instr::target).collect();
    targets.sort_unstable();
    targets.dedup();
    for (pc, i) in p.instrs().iter().enumerate() {
        if targets.binary_search(&(pc as u32)).is_ok() {
            out.push_str(&format!("L{pc}:\n"));
        }
        let mut s = i.to_string();
        // `Display` writes raw targets as `@n`; rewrite to the labels above.
        if let Some(t) = i.target() {
            s = s.replace(&format!("@{t}"), &format!("L{t}"));
        }
        out.push_str("  ");
        out.push_str(&s);
        out.push('\n');
    }
    out
}

fn split_mnemonic(word: &str) -> (&str, Option<&str>) {
    match word.split_once('.') {
        Some((m, s)) => (m, Some(s)),
        None => (word, None),
    }
}

fn parse_u64(line: usize, s: &str) -> Result<u64, AsmError> {
    let s = s.trim();
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|_| err(line, format!("expected a number, found `{s}`")))
}

fn parse_reg(line: usize, s: &str) -> Result<RegId, AsmError> {
    let s = s.trim();
    let n = s
        .strip_prefix(['r', 'R'])
        .and_then(|d| d.parse::<u8>().ok())
        .ok_or_else(|| err(line, format!("expected a register, found `{s}`")))?;
    RegId::try_new(n).ok_or_else(|| err(line, format!("register `{s}` out of range")))
}

fn parse_operand(line: usize, s: &str) -> Result<Operand, AsmError> {
    let s = s.trim();
    if s.starts_with(['r', 'R']) && s[1..].chars().all(|c| c.is_ascii_digit()) && s.len() > 1 {
        Ok(Operand::Reg(parse_reg(line, s)?))
    } else {
        Ok(Operand::Imm(parse_u64(line, s)?))
    }
}

fn parse_addr(line: usize, s: &str) -> Result<AddrExpr, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected `[addr]`, found `{s}`")))?;
    match inner.split_once('+') {
        None => Ok(AddrExpr::direct(parse_u64(line, inner)?)),
        Some((base, idx)) => {
            let base = parse_u64(line, base)?;
            match idx.split_once('*') {
                None => Ok(AddrExpr::indexed(base, parse_reg(line, idx)?, 1)),
                Some((reg, scale)) => Ok(AddrExpr::indexed(
                    base,
                    parse_reg(line, reg)?,
                    parse_u64(line, scale)?,
                )),
            }
        }
    }
}

fn mem_flavor(
    line: usize,
    suffix: Option<&str>,
    default: MemFlavor,
) -> Result<MemFlavor, AsmError> {
    match suffix {
        None => Ok(default),
        Some("ord") => Ok(MemFlavor::Ordinary),
        Some("acq") => Ok(MemFlavor::Acquire),
        Some("rel") => Ok(MemFlavor::Release),
        Some(other) => Err(err(line, format!("unknown memory suffix `.{other}`"))),
    }
}

fn parse_instr(line: usize, text: &str, labels: &HashMap<String, u32>) -> Result<Instr, AsmError> {
    let (word, rest) = match text.split_once(char::is_whitespace) {
        Some((w, r)) => (w, r.trim()),
        None => (text, ""),
    };
    let (mnem, suffix) = split_mnemonic(word);
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{word}` expects {n} operand(s), found {}", args.len()),
            ))
        }
    };
    let target = |s: &str| -> Result<u32, AsmError> {
        if let Some(&t) = labels.get(s.trim()) {
            Ok(t)
        } else if let Some(n) = s.trim().strip_prefix('@') {
            parse_u64(line, n).map(|v| v as u32)
        } else {
            Err(err(line, format!("unknown label `{}`", s.trim())))
        }
    };

    match mnem {
        "ld" => {
            want(2)?;
            Ok(Instr::Load {
                dst: parse_reg(line, args[0])?,
                addr: parse_addr(line, args[1])?,
                flavor: mem_flavor(line, suffix, MemFlavor::Ordinary)?,
            })
        }
        "st" => {
            want(2)?;
            Ok(Instr::Store {
                addr: parse_addr(line, args[0])?,
                src: parse_operand(line, args[1])?,
                flavor: mem_flavor(line, suffix, MemFlavor::Ordinary)?,
            })
        }
        "tas" | "fadd" | "swap" => {
            want(3)?;
            let kind = match mnem {
                "tas" => RmwKind::TestAndSet,
                "fadd" => RmwKind::FetchAdd,
                _ => RmwKind::Swap,
            };
            Ok(Instr::Rmw {
                dst: parse_reg(line, args[0])?,
                addr: parse_addr(line, args[1])?,
                kind,
                src: parse_operand(line, args[2])?,
                // RMWs default to acquire: the paper's lock idiom.
                flavor: mem_flavor(line, suffix, MemFlavor::Acquire)?,
            })
        }
        "add" | "sub" | "and" | "or" | "xor" | "mul" => {
            want(3)?;
            let op = match mnem {
                "add" => AluOp::Add,
                "sub" => AluOp::Sub,
                "and" => AluOp::And,
                "or" => AluOp::Or,
                "xor" => AluOp::Xor,
                _ => AluOp::Mul,
            };
            let latency = match suffix {
                None => 1,
                Some(n) => n
                    .parse::<u32>()
                    .map_err(|_| err(line, format!("bad latency suffix `.{n}`")))?,
            };
            Ok(Instr::Alu {
                dst: parse_reg(line, args[0])?,
                op,
                lhs: parse_operand(line, args[1])?,
                rhs: parse_operand(line, args[2])?,
                latency,
            })
        }
        "beq" | "bne" | "blt" | "bge" => {
            want(3)?;
            let cond = match mnem {
                "beq" => CmpOp::Eq,
                "bne" => CmpOp::Ne,
                "blt" => CmpOp::Lt,
                _ => CmpOp::Ge,
            };
            let hint = match suffix {
                None => BranchHint::Dynamic,
                Some("t") => BranchHint::Taken,
                Some("nt") => BranchHint::NotTaken,
                Some(other) => return Err(err(line, format!("unknown branch hint `.{other}`"))),
            };
            Ok(Instr::Branch {
                cond,
                lhs: parse_operand(line, args[0])?,
                rhs: parse_operand(line, args[1])?,
                target: target(args[2])?,
                hint,
            })
        }
        "jmp" => {
            want(1)?;
            Ok(Instr::Jump {
                target: target(args[0])?,
            })
        }
        "pf" => {
            want(1)?;
            let exclusive = match suffix {
                None => false,
                Some("ex") => true,
                Some(other) => {
                    return Err(err(line, format!("unknown prefetch suffix `.{other}`")))
                }
            };
            Ok(Instr::Prefetch {
                addr: parse_addr(line, args[0])?,
                exclusive,
            })
        }
        "nop" => {
            want(0)?;
            Ok(Instr::Nop)
        }
        "halt" => {
            want(0)?;
            Ok(Instr::Halt)
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{R1, R3};

    const EXAMPLE: &str = r"
        ; consumer loop
        acquire:
          tas.acq r1, [0x40], 0
          bne.nt  r1, 0, acquire
          ld      r2, [0x100]
          ld      r3, [0x140]
          ld      r4, [0x1000+r3*8]
          st.rel  [0x40], 0
          halt
    ";

    #[test]
    fn assembles_the_paper_consumer() {
        let p = assemble("consumer", EXAMPLE).unwrap();
        assert_eq!(p.len(), 7);
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Rmw {
                kind: RmwKind::TestAndSet,
                flavor: MemFlavor::Acquire,
                ..
            })
        ));
        assert!(matches!(p.fetch(1), Some(Instr::Branch { target: 0, .. })));
        assert_eq!(
            p.fetch(4),
            Some(&Instr::Load {
                dst: RegId::new(4),
                addr: AddrExpr::indexed(0x1000, R3, 8),
                flavor: MemFlavor::Ordinary,
            })
        );
    }

    #[test]
    fn roundtrip_through_disassembler() {
        let p = assemble("r", EXAMPLE).unwrap();
        let text = disassemble(&p);
        let p2 = assemble("r", &text).unwrap();
        assert_eq!(p.instrs(), p2.instrs());
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let e = assemble("x", "  bogus r1, r2\n  halt\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn reports_unknown_label() {
        let e = assemble("x", "jmp nowhere\nhalt\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn reports_duplicate_label() {
        let e = assemble("x", "a:\na:\nhalt\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn numeric_targets_accepted() {
        let p = assemble("x", "jmp @1\nhalt\n").unwrap();
        assert_eq!(p.fetch(0), Some(&Instr::Jump { target: 1 }));
    }

    #[test]
    fn hex_and_decimal_numbers() {
        let p = assemble("x", "st [0x20], 33\nhalt\n").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(&Instr::Store {
                addr: AddrExpr::direct(0x20),
                src: Operand::Imm(33),
                flavor: MemFlavor::Ordinary,
            })
        );
    }

    #[test]
    fn alu_latency_suffix() {
        let p = assemble("x", "mul.4 r1, r1, 3\nhalt\n").unwrap();
        assert!(matches!(p.fetch(0), Some(Instr::Alu { latency: 4, .. })));
        let _ = R1;
    }

    #[test]
    fn operand_count_checked() {
        let e = assemble("x", "ld r1\nhalt\n").unwrap_err();
        assert!(e.msg.contains("expects 2"));
    }

    #[test]
    fn validation_errors_surface() {
        let e = assemble("x", "nop\n").unwrap_err();
        assert!(e.msg.contains("halt"));
    }
}
