//! Architectural registers.
//!
//! The machine has a flat file of [`NUM_REGS`] general-purpose 64-bit
//! registers. Register `r0` is an ordinary register (not hard-wired to
//! zero); workloads that want a zero use an immediate operand instead.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

/// Identifier of an architectural register (`r0` .. `r31`).
///
/// Construct with [`RegId::new`], which checks the range, or use the
/// `R0`..`R15` constants for the commonly used low registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegId(u8);

impl RegId {
    /// Creates a register id, panicking if `n >= NUM_REGS`.
    ///
    /// Register identifiers appear in statically-validated programs, so an
    /// out-of-range id is a programming error, not a runtime condition.
    #[must_use]
    pub fn new(n: u8) -> Self {
        assert!(
            (n as usize) < NUM_REGS,
            "register r{n} out of range (machine has {NUM_REGS} registers)"
        );
        RegId(n)
    }

    /// Creates a register id without panicking; `None` if out of range.
    #[must_use]
    pub fn try_new(n: u8) -> Option<Self> {
        ((n as usize) < NUM_REGS).then_some(RegId(n))
    }

    /// The raw register number.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

macro_rules! reg_consts {
    ($($name:ident = $n:expr),* $(,)?) => {
        $(
            #[doc = concat!("Register `r", stringify!($n), "`.")]
            pub const $name: RegId = RegId($n);
        )*
    };
}

reg_consts! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
}

/// An architectural register file: the committed register state of one
/// processor. The out-of-order core keeps uncommitted values in the reorder
/// buffer and only writes here at retirement (precise interrupts, §4.2 of
/// the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegFile {
    vals: Vec<u64>,
}

impl RegFile {
    /// A register file with all registers zeroed.
    #[must_use]
    pub fn new() -> Self {
        RegFile {
            vals: vec![0; NUM_REGS],
        }
    }

    /// Reads a register.
    #[must_use]
    pub fn read(&self, r: RegId) -> u64 {
        self.vals[r.index()]
    }

    /// Writes a register.
    pub fn write(&mut self, r: RegId, v: u64) {
        self.vals[r.index()] = v;
    }

    /// Iterates over `(register, value)` pairs, lowest register first.
    pub fn iter(&self) -> impl Iterator<Item = (RegId, u64)> + '_ {
        self.vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (RegId(i as u8), v))
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_in_range() {
        assert_eq!(RegId::new(0).index(), 0);
        assert_eq!(RegId::new(31).index(), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_out_of_range_panics() {
        let _ = RegId::new(32);
    }

    #[test]
    fn try_new_bounds() {
        assert!(RegId::try_new(31).is_some());
        assert!(RegId::try_new(32).is_none());
    }

    #[test]
    fn display() {
        assert_eq!(R5.to_string(), "r5");
    }

    #[test]
    fn regfile_read_write() {
        let mut f = RegFile::new();
        assert_eq!(f.read(R3), 0);
        f.write(R3, 42);
        assert_eq!(f.read(R3), 42);
        assert_eq!(f.read(R4), 0);
    }

    #[test]
    fn regfile_iter_order() {
        let mut f = RegFile::new();
        f.write(R1, 7);
        let pairs: Vec<_> = f.iter().collect();
        assert_eq!(pairs.len(), NUM_REGS);
        assert_eq!(pairs[1], (R1, 7));
    }
}
