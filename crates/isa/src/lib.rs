//! # mcsim-isa — the mini shared-memory ISA
//!
//! The workloads in Gharachorloo, Gupta & Hennessy's ICPP 1991 paper are
//! small shared-memory code segments: loads, stores, lock/unlock
//! synchronization, and address arithmetic (the `read E[D]` access of
//! Figure 2 whose address depends on a previous load). This crate defines a
//! deliberately small ISA that can express all of them while keeping the
//! simulator's semantics easy to reason about:
//!
//! * **Memory accesses** — [`Instr::Load`], [`Instr::Store`], and atomic
//!   [`Instr::Rmw`] (read-modify-write, Appendix A of the paper). Each
//!   carries a [`MemFlavor`] marking it *ordinary*, *acquire*, or *release*
//!   — the classification release consistency exploits (§2).
//! * **Computation** — [`Instr::Alu`] with a configurable latency, enough to
//!   model address calculation and local work inside critical sections.
//! * **Control** — [`Instr::Branch`] / [`Instr::Jump`] with static
//!   prediction hints, so spin-lock loops can be modeled the way the paper
//!   assumes ("the branch predictor takes the path that assumes the lock
//!   synchronization succeeds", §3.3).
//!
//! Programs are built either with the fluent [`ProgramBuilder`] (which has
//! `lock`/`unlock` macros that expand to RMW + spin branch) or from the
//! textual assembly accepted by [`asm::assemble`].
//!
//! Everything here is architecture state only — timing lives in
//! `mcsim-proc` / `mcsim-mem`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod asm;
pub mod instr;
pub mod program;
pub mod reg;

pub use addr::{Addr, AddrExpr, LineAddr};
pub use instr::{AluOp, BranchHint, CmpOp, Instr, MemFlavor, Operand, RmwKind};
pub use program::{Program, ProgramBuilder, ValidationError};
pub use reg::{RegId, NUM_REGS};
