//! Programs and the fluent [`ProgramBuilder`].

use crate::addr::AddrExpr;
use crate::instr::{AluOp, BranchHint, CmpOp, Instr, MemFlavor, Operand, RmwKind};
use crate::reg::RegId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A validated straight-line-or-looping program for one processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    instrs: Vec<Instr>,
}

/// A structural problem found while validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A branch or jump targets an instruction index outside the program.
    TargetOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The out-of-range target.
        target: u32,
        /// Program length.
        len: usize,
    },
    /// The program has no `halt`, so the processor could run forever.
    NoHalt,
    /// An ALU latency of zero (instructions take at least one cycle).
    ZeroLatency {
        /// Index of the offending instruction.
        at: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::TargetOutOfRange { at, target, len } => write!(
                f,
                "instruction {at}: control-flow target @{target} outside program of length {len}"
            ),
            ValidationError::NoHalt => write!(f, "program contains no halt instruction"),
            ValidationError::ZeroLatency { at } => {
                write!(f, "instruction {at}: ALU latency must be at least 1")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    /// Returns a [`ValidationError`] if a control-flow target is out of
    /// range, an ALU latency is zero, or the program cannot halt.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>) -> Result<Self, ValidationError> {
        let len = instrs.len();
        let mut has_halt = false;
        for (at, i) in instrs.iter().enumerate() {
            if let Some(target) = i.target() {
                if target as usize >= len {
                    return Err(ValidationError::TargetOutOfRange { at, target, len });
                }
            }
            if let Instr::Alu { latency: 0, .. } = i {
                return Err(ValidationError::ZeroLatency { at });
            }
            has_halt |= matches!(i, Instr::Halt);
        }
        if !has_halt {
            return Err(ValidationError::NoHalt);
        }
        Ok(Program {
            name: name.into(),
            instrs,
        })
    }

    /// An empty program that halts immediately (useful for idle processors).
    #[must_use]
    pub fn idle() -> Self {
        Program {
            name: "idle".into(),
            instrs: vec![Instr::Halt],
        }
    }

    /// The program's name (for traces and reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn fetch(&self, pc: usize) -> Option<&Instr> {
        self.instrs.get(pc)
    }

    /// All instructions.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Count of memory instructions (loads + stores + RMWs).
    #[must_use]
    pub fn mem_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_mem()).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program `{}`", self.name)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:4}: {i}")?;
        }
        Ok(())
    }
}

/// An unresolved label used by [`ProgramBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Fluent builder for [`Program`]s, with forward labels and `lock`/`unlock`
/// macros that expand to the paper's synchronization idioms.
///
/// ```
/// use mcsim_isa::{ProgramBuilder, reg::{R1, R2}};
/// let p = ProgramBuilder::new("example1")
///     .lock(0x40, R1)       // tas + spin branch (predicted to succeed)
///     .store(0x100, 1)      // write A
///     .store(0x140, 2)      // write B
///     .unlock(0x40)         // st.rel
///     .halt()
///     .build()
///     .unwrap();
/// assert!(p.len() >= 5);
/// let _ = R2;
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: HashMap<Label, u32>,
    next_label: usize,
    pending: Vec<(usize, Label)>,
}

impl ProgramBuilder {
    /// Starts building a program.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Index the next appended instruction will get.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Allocates a label to be bound later with [`Self::bind`].
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    #[must_use]
    pub fn bind(mut self, label: Label) -> Self {
        let at = self.here();
        self.labels.insert(label, at);
        self
    }

    /// Appends an ordinary load `dst <- mem[addr]`.
    #[must_use]
    pub fn load(mut self, dst: RegId, addr: impl Into<AddrExpr>) -> Self {
        self.instrs.push(Instr::Load {
            dst,
            addr: addr.into(),
            flavor: MemFlavor::Ordinary,
        });
        self
    }

    /// Appends an acquire load (flag spin read).
    #[must_use]
    pub fn load_acquire(mut self, dst: RegId, addr: impl Into<AddrExpr>) -> Self {
        self.instrs.push(Instr::Load {
            dst,
            addr: addr.into(),
            flavor: MemFlavor::Acquire,
        });
        self
    }

    /// Appends an ordinary store `mem[addr] <- src`.
    #[must_use]
    pub fn store(mut self, addr: impl Into<AddrExpr>, src: impl Into<Operand>) -> Self {
        self.instrs.push(Instr::Store {
            addr: addr.into(),
            src: src.into(),
            flavor: MemFlavor::Ordinary,
        });
        self
    }

    /// Appends a release store (flag set / unlock).
    #[must_use]
    pub fn store_release(mut self, addr: impl Into<AddrExpr>, src: impl Into<Operand>) -> Self {
        self.instrs.push(Instr::Store {
            addr: addr.into(),
            src: src.into(),
            flavor: MemFlavor::Release,
        });
        self
    }

    /// Appends an atomic read-modify-write.
    #[must_use]
    pub fn rmw(
        mut self,
        dst: RegId,
        addr: impl Into<AddrExpr>,
        kind: RmwKind,
        src: impl Into<Operand>,
        flavor: MemFlavor,
    ) -> Self {
        self.instrs.push(Instr::Rmw {
            dst,
            addr: addr.into(),
            kind,
            src: src.into(),
            flavor,
        });
        self
    }

    /// Appends an ALU operation with unit latency.
    #[must_use]
    pub fn alu(
        self,
        dst: RegId,
        op: AluOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> Self {
        self.alu_lat(dst, op, lhs, rhs, 1)
    }

    /// Appends an ALU operation with explicit latency.
    #[must_use]
    pub fn alu_lat(
        mut self,
        dst: RegId,
        op: AluOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        latency: u32,
    ) -> Self {
        self.instrs.push(Instr::Alu {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
            latency,
        });
        self
    }

    /// Appends a conditional branch to a (possibly forward) label.
    #[must_use]
    pub fn branch(
        mut self,
        cond: CmpOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
        to: Label,
        hint: BranchHint,
    ) -> Self {
        let at = self.instrs.len();
        self.instrs.push(Instr::Branch {
            cond,
            lhs: lhs.into(),
            rhs: rhs.into(),
            target: u32::MAX, // patched in build()
            hint,
        });
        self.pending.push((at, to));
        self
    }

    /// Appends an unconditional jump to a label.
    #[must_use]
    pub fn jump(mut self, to: Label) -> Self {
        let at = self.instrs.len();
        self.instrs.push(Instr::Jump { target: u32::MAX });
        self.pending.push((at, to));
        self
    }

    /// Appends a software prefetch hint (non-binding; §6 of the paper).
    #[must_use]
    pub fn prefetch(mut self, addr: impl Into<AddrExpr>, exclusive: bool) -> Self {
        self.instrs.push(Instr::Prefetch {
            addr: addr.into(),
            exclusive,
        });
        self
    }

    /// Appends a `nop`.
    #[must_use]
    pub fn nop(mut self) -> Self {
        self.instrs.push(Instr::Nop);
        self
    }

    /// Appends a `halt`.
    #[must_use]
    pub fn halt(mut self) -> Self {
        self.instrs.push(Instr::Halt);
        self
    }

    /// Lock acquisition: a test-and-set acquire RMW on `lock_addr` followed
    /// by a spin branch predicted *not taken* — the paper's assumption that
    /// the predictor follows the lock-success path (§3.3). `scratch`
    /// receives the old lock value.
    #[must_use]
    pub fn lock(mut self, lock_addr: u64, scratch: RegId) -> Self {
        let top = self.here();
        self.instrs.push(Instr::Rmw {
            dst: scratch,
            addr: AddrExpr::direct(lock_addr),
            kind: RmwKind::TestAndSet,
            src: Operand::Imm(0),
            flavor: MemFlavor::Acquire,
        });
        // Spin while the old value was nonzero (lock held by someone else).
        self.instrs.push(Instr::Branch {
            cond: CmpOp::Ne,
            lhs: Operand::Reg(scratch),
            rhs: Operand::Imm(0),
            target: top,
            hint: BranchHint::NotTaken,
        });
        self
    }

    /// Lock release: a release store of 0.
    #[must_use]
    pub fn unlock(self, lock_addr: u64) -> Self {
        self.store_release(lock_addr, 0u64)
    }

    /// Spin until `mem[flag_addr] == expect` using an acquire load.
    /// The spin branch is predicted not taken (flag assumed already set).
    #[must_use]
    pub fn spin_until(mut self, flag_addr: u64, expect: u64, scratch: RegId) -> Self {
        let top = self.here();
        self.instrs.push(Instr::Load {
            dst: scratch,
            addr: AddrExpr::direct(flag_addr),
            flavor: MemFlavor::Acquire,
        });
        self.instrs.push(Instr::Branch {
            cond: CmpOp::Ne,
            lhs: Operand::Reg(scratch),
            rhs: Operand::Imm(expect),
            target: top,
            hint: BranchHint::NotTaken,
        });
        self
    }

    /// Resolves labels and validates.
    ///
    /// # Errors
    /// [`ValidationError`] from [`Program::new`], plus a panic-free error if
    /// a label was never bound.
    pub fn build(mut self) -> Result<Program, ValidationError> {
        for (at, label) in std::mem::take(&mut self.pending) {
            let Some(&target) = self.labels.get(&label) else {
                // An unbound label means the builder was misused; surface it
                // as an out-of-range target so callers get one error type.
                return Err(ValidationError::TargetOutOfRange {
                    at,
                    target: u32::MAX,
                    len: self.instrs.len(),
                });
            };
            match &mut self.instrs[at] {
                Instr::Branch { target: t, .. } | Instr::Jump { target: t } => *t = target,
                _ => unreachable!("pending patch always points at a control instruction"),
            }
        }
        Program::new(self.name, self.instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{R1, R2};

    #[test]
    fn validation_rejects_bad_target() {
        let err = Program::new("p", vec![Instr::Jump { target: 5 }, Instr::Halt]).unwrap_err();
        assert!(matches!(err, ValidationError::TargetOutOfRange { .. }));
    }

    #[test]
    fn validation_rejects_no_halt() {
        let err = Program::new("p", vec![Instr::Nop]).unwrap_err();
        assert_eq!(err, ValidationError::NoHalt);
    }

    #[test]
    fn validation_rejects_zero_latency() {
        let err = Program::new(
            "p",
            vec![
                Instr::Alu {
                    dst: R1,
                    op: AluOp::Add,
                    lhs: Operand::Imm(1),
                    rhs: Operand::Imm(2),
                    latency: 0,
                },
                Instr::Halt,
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ValidationError::ZeroLatency { at: 0 }));
    }

    #[test]
    fn builder_lock_expands_to_rmw_and_spin() {
        let p = ProgramBuilder::new("t")
            .lock(0x40, R1)
            .halt()
            .build()
            .unwrap();
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Rmw {
                kind: RmwKind::TestAndSet,
                flavor: MemFlavor::Acquire,
                ..
            })
        ));
        assert!(matches!(
            p.fetch(1),
            Some(Instr::Branch {
                target: 0,
                hint: BranchHint::NotTaken,
                ..
            })
        ));
    }

    #[test]
    fn builder_labels_resolve_forward() {
        let mut b = ProgramBuilder::new("t");
        let end = b.label();
        let p = b
            .jump(end)
            .store(0x100, 1u64)
            .bind(end)
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.fetch(0), Some(&Instr::Jump { target: 2 }));
    }

    #[test]
    fn builder_unbound_label_errors() {
        let mut b = ProgramBuilder::new("t");
        let nowhere = b.label();
        let err = b.jump(nowhere).halt().build().unwrap_err();
        assert!(matches!(err, ValidationError::TargetOutOfRange { .. }));
    }

    #[test]
    fn mem_instr_count() {
        let p = ProgramBuilder::new("t")
            .load(R1, 0x10u64)
            .alu(R2, AluOp::Add, R1, 1u64)
            .store(0x18u64, R2)
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.mem_instr_count(), 2);
    }

    #[test]
    fn display_includes_name_and_indices() {
        let p = ProgramBuilder::new("show").halt().build().unwrap();
        let s = p.to_string();
        assert!(s.contains("`show`"));
        assert!(s.contains("0: halt"));
    }

    #[test]
    fn idle_program() {
        let p = Program::idle();
        assert_eq!(p.len(), 1);
        assert!(matches!(p.fetch(0), Some(Instr::Halt)));
    }
}
