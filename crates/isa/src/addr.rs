//! Memory addresses and effective-address expressions.
//!
//! The simulator is word-oriented: every load/store moves one 64-bit value
//! and addresses are plain byte addresses (workloads normally keep them
//! 8-byte aligned, but nothing depends on it). Cache geometry maps an
//! [`Addr`] to a [`LineAddr`] by shifting off the block-offset bits; the
//! coherence protocol, the speculative-load buffer's associative match, and
//! the prefetcher all work at line granularity — which is exactly why
//! footnote 2 of the paper calls false sharing a source of conservative
//! (but safe) speculation failures.

use crate::reg::RegId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte address in the shared physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this address, for a block of
    /// `1 << block_bits` bytes.
    #[must_use]
    pub fn line(self, block_bits: u32) -> LineAddr {
        LineAddr(self.0 >> block_bits)
    }

    /// Byte offset of this address within its cache line.
    #[must_use]
    pub fn offset(self, block_bits: u32) -> u64 {
        self.0 & ((1u64 << block_bits) - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// A cache-line address (an [`Addr`] with the block-offset bits removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The first byte address of this line.
    #[must_use]
    pub fn base(self, block_bits: u32) -> Addr {
        Addr(self.0 << block_bits)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// An effective-address expression: `base + reg * scale`.
///
/// This is the only address mode, but it is enough to express the paper's
/// `read E[D]` (Figure 2): the base is the array start and the index
/// register carries the previously loaded value of `D`. An access whose
/// `index` register is produced by an earlier load cannot even *issue*
/// until that load's value returns — the out-of-order-consumption
/// bottleneck that defeats prefetching (§3.3) and motivates speculative
/// loads (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrExpr {
    /// Constant base address.
    pub base: u64,
    /// Optional index register.
    pub index: Option<RegId>,
    /// Multiplier applied to the index register's value (commonly 8).
    pub scale: u64,
}

impl AddrExpr {
    /// A direct (register-free) address.
    #[must_use]
    pub fn direct(base: u64) -> Self {
        AddrExpr {
            base,
            index: None,
            scale: 0,
        }
    }

    /// An indexed address `base + reg * scale`.
    #[must_use]
    pub fn indexed(base: u64, index: RegId, scale: u64) -> Self {
        AddrExpr {
            base,
            index: Some(index),
            scale,
        }
    }

    /// Evaluates the expression given a way to read the index register.
    ///
    /// Wrapping arithmetic: address wrap-around in a synthetic workload is
    /// a workload bug, not something the simulator should crash on.
    #[must_use]
    pub fn eval(&self, read_reg: impl FnOnce(RegId) -> u64) -> Addr {
        let idx = match self.index {
            Some(r) => read_reg(r).wrapping_mul(self.scale),
            None => 0,
        };
        Addr(self.base.wrapping_add(idx))
    }

    /// The register this expression depends on, if any.
    #[must_use]
    pub fn dep(&self) -> Option<RegId> {
        self.index
    }
}

impl fmt::Display for AddrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            None => write!(f, "[{:#x}]", self.base),
            Some(r) if self.scale == 1 => write!(f, "[{:#x}+{r}]", self.base),
            Some(r) => write!(f, "[{:#x}+{r}*{}]", self.base, self.scale),
        }
    }
}

impl From<u64> for AddrExpr {
    fn from(base: u64) -> Self {
        AddrExpr::direct(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::R2;

    #[test]
    fn line_and_offset() {
        let a = Addr(0x12_34);
        assert_eq!(a.line(6), LineAddr(0x12_34 >> 6));
        assert_eq!(a.offset(6), 0x34 & 0x3f);
        assert_eq!(LineAddr(3).base(6), Addr(3 << 6));
    }

    #[test]
    fn same_line_iff_high_bits_match() {
        assert_eq!(Addr(0x100).line(6), Addr(0x13f).line(6));
        assert_ne!(Addr(0x100).line(6), Addr(0x140).line(6));
    }

    #[test]
    fn direct_eval() {
        let e = AddrExpr::direct(0x400);
        assert_eq!(e.eval(|_| panic!("no reg read expected")), Addr(0x400));
        assert_eq!(e.dep(), None);
    }

    #[test]
    fn indexed_eval() {
        let e = AddrExpr::indexed(0x1000, R2, 8);
        assert_eq!(e.eval(|r| if r == R2 { 5 } else { 0 }), Addr(0x1028));
        assert_eq!(e.dep(), Some(R2));
    }

    #[test]
    fn eval_wraps() {
        let e = AddrExpr::indexed(u64::MAX, R2, 1);
        assert_eq!(e.eval(|_| 2), Addr(1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(AddrExpr::direct(0x10).to_string(), "[0x10]");
        assert_eq!(AddrExpr::indexed(0x10, R2, 1).to_string(), "[0x10+r2]");
        assert_eq!(AddrExpr::indexed(0x10, R2, 8).to_string(), "[0x10+r2*8]");
    }
}
