//! Branch prediction: static hints plus a 2-bit-counter branch target
//! buffer (Lee & Smith [16] in the paper's bibliography).
//!
//! The paper's examples assume the predictor follows the path on which a
//! lock acquisition succeeds (§3.3); spin-loop branches therefore carry a
//! static `NotTaken` hint from the program builder. Branches without a
//! hint use a per-PC 2-bit saturating counter, primed by the static
//! backward-taken / forward-not-taken heuristic.

use mcsim_isa::BranchHint;
use std::collections::HashMap;

/// 2-bit saturating counter states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Counter {
    StrongNot,
    WeakNot,
    WeakTaken,
    StrongTaken,
}

impl Counter {
    fn predict(self) -> bool {
        matches!(self, Counter::WeakTaken | Counter::StrongTaken)
    }

    fn update(self, taken: bool) -> Self {
        use Counter::*;
        match (self, taken) {
            (StrongNot, true) => WeakNot,
            (WeakNot, true) => WeakTaken,
            (WeakTaken, true) | (StrongTaken, true) => StrongTaken,
            (StrongTaken, false) => WeakTaken,
            (WeakTaken, false) => WeakNot,
            (WeakNot, false) | (StrongNot, false) => StrongNot,
        }
    }
}

/// The branch predictor attached to one core's instruction fetch.
#[derive(Debug, Default)]
pub struct Predictor {
    table: HashMap<u32, Counter>,
    predictions: u64,
    mispredictions: u64,
}

impl Predictor {
    /// A predictor with an empty BTB.
    #[must_use]
    pub fn new() -> Self {
        Predictor::default()
    }

    /// Predicts whether the branch at `pc` (with `hint`, targeting
    /// `target`) will be taken.
    pub fn predict(&mut self, pc: u32, hint: BranchHint, target: u32) -> bool {
        self.predictions += 1;
        match hint {
            BranchHint::Taken => true,
            BranchHint::NotTaken => false,
            BranchHint::Dynamic => match self.table.get(&pc) {
                Some(c) => c.predict(),
                // BTB miss: backward-taken / forward-not-taken heuristic.
                None => target <= pc,
            },
        }
    }

    /// Feeds back a resolved branch. Statically hinted branches still
    /// train the table (harmless; they never consult it) and count toward
    /// the misprediction stats.
    pub fn resolve(&mut self, pc: u32, predicted: bool, actual: bool, target: u32) {
        if predicted != actual {
            self.mispredictions += 1;
        }
        let init = if target <= pc {
            Counter::WeakTaken
        } else {
            Counter::WeakNot
        };
        let c = self.table.entry(pc).or_insert(init);
        *c = c.update(actual);
    }

    /// `(predictions, mispredictions)` so far.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.predictions, self.mispredictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hints_override() {
        let mut p = Predictor::new();
        assert!(p.predict(10, BranchHint::Taken, 0));
        assert!(!p.predict(10, BranchHint::NotTaken, 0));
    }

    #[test]
    fn btfnt_heuristic_on_cold_btb() {
        let mut p = Predictor::new();
        assert!(
            p.predict(10, BranchHint::Dynamic, 5),
            "backward predicted taken"
        );
        assert!(
            !p.predict(10, BranchHint::Dynamic, 20),
            "forward predicted not taken"
        );
    }

    #[test]
    fn counters_learn_direction() {
        let mut p = Predictor::new();
        // Forward branch that's actually always taken: initially WeakNot.
        for _ in 0..3 {
            p.resolve(10, false, true, 20);
        }
        assert!(p.predict(10, BranchHint::Dynamic, 20), "learned taken");
        // One not-taken outcome shouldn't flip a strong counter.
        p.resolve(10, true, false, 20);
        assert!(p.predict(10, BranchHint::Dynamic, 20));
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut p = Predictor::new();
        // Backward branch primed WeakTaken.
        p.resolve(10, true, false, 5); // -> WeakNot
        assert!(!p.predict(10, BranchHint::Dynamic, 5));
        p.resolve(10, false, true, 5); // -> WeakTaken
        assert!(p.predict(10, BranchHint::Dynamic, 5));
    }

    #[test]
    fn stats_count_mispredictions() {
        let mut p = Predictor::new();
        let _ = p.predict(1, BranchHint::Dynamic, 9);
        p.resolve(1, false, true, 9);
        p.resolve(1, true, true, 9);
        assert_eq!(p.stats(), (1, 1));
    }
}
