//! The processor core: Johnson's dynamically scheduled organization
//! (Figure 3) with the paper's modified load/store unit (Figure 4).
//!
//! ## Cycle structure
//!
//! Each [`Processor::tick`] runs these stages in order (the memory system
//! has already ticked, so this cycle's fills and coherence traffic are
//! waiting):
//!
//! 1. **Drain** — consume memory events: completions finish loads/stores;
//!    invalidations, updates, and replacements are matched against the
//!    speculative-load buffer (detection, §4.2) and trigger rollback or
//!    reissue (correction). Locally scheduled hit completions are
//!    processed first, so a value bound by a hit counts as *consumed*
//!    when a hazard lands in the same cycle (conservative, like the
//!    paper).
//! 2. **Spec retire** — FIFO-retire speculative-load-buffer entries whose
//!    conditions hold; their loads become non-speculative.
//! 3. **Execute** — ALU completion and in-order branch resolution (with
//!    misprediction squash).
//! 4. **Commit** — in-order retirement from the reorder buffer; a store
//!    reaching the head is *released* to the store buffer; under SC/PC
//!    the head store retires only when it completes (serializing
//!    stores), under WC/RC it retires at address translation (§4.2).
//! 5. **Fetch** — follow the predicted path (ideal or width-limited).
//! 6. **Address unit** — in-order effective-address computation;
//!    dispatches stores/RMWs to the store buffer and loads to the load
//!    queue (creating speculative-load-buffer entries when the
//!    speculation technique is on; splitting RMWs per Appendix A).
//! 7. **Store issue** — eligible store-buffer entries issue through the
//!    cache port; merges with outstanding prefetches are port-free.
//! 8. **Load issue** — speculative mode: loads issue as soon as their
//!    address is known; conventional mode: the oldest waiting load
//!    issues only when the model's `may_perform` allows. Store-to-load
//!    forwarding is checked first in both modes.
//! 9. **Prefetch** — one hardware prefetch per free port cycle for
//!    consistency-delayed buffer entries (§3.2).
//!
//! The single cache port accepts one *new* access per cycle; merges with
//! outstanding transactions are free, which is what makes a merged
//! reference "complete as soon as the prefetch result returns" (§3.2)
//! and reproduces the paper's cycle counts exactly.

use crate::btb::Predictor;
use crate::config::ProcConfig;
use crate::rob::{Rob, Seq};
use crate::specbuf::{SpecEntry, SpeculativeLoadBuffer};
use crate::stats::ProcStats;
use crate::storebuf::{ForwardResult, SbEntry, SbState, StoreBuffer};
use mcsim_consistency::{AccessClass, Model, Outstanding};
use mcsim_guard::{InvariantKind, SimError, StalledProc};
use mcsim_isa::reg::RegFile;
use mcsim_isa::{Addr, Instr, LineAddr, Program, RmwKind};
use mcsim_mem::config::Protocol;
use mcsim_mem::msg::ProcId;
use mcsim_mem::{
    DemandToken, IssueResult, MemEvent, MemorySystem, PrefetchResult, ProbeResult, TxnId,
};
use mcsim_trace::{BufferKind, IssueOutcome, TraceBuffer, TraceEvent, TraceKind};
use std::collections::{HashMap, VecDeque};

/// What kind of access a load-queue entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadKind {
    /// An ordinary load.
    Plain,
    /// The speculative read-exclusive half of a split RMW (Appendix A).
    RmwSplit,
    /// A whole RMW issued conventionally (speculation off, or update
    /// protocol where exclusivity cannot be pre-acquired).
    RmwConv { kind: RmwKind, operand: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadState {
    Waiting,
    Issued { token: DemandToken },
}

#[derive(Debug)]
struct LoadReq {
    seq: Seq,
    addr: Addr,
    class: AccessClass,
    kind: LoadKind,
    prefetch_sent: bool,
    state: LoadState,
    issued_at: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
enum HitCompletion {
    Load { seq: Seq, value: u64 },
    Store { seq: Seq, rmw_old: Option<u64> },
}

impl HitCompletion {
    fn seq(&self) -> Seq {
        match self {
            HitCompletion::Load { seq, .. } | HitCompletion::Store { seq, .. } => *seq,
        }
    }
}

/// The breakdown component a cycle was attributed to (one variant per
/// [`crate::stats::CycleBreakdown`] field) — remembered so a span of
/// frozen cycles can be bulk-accounted identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallBucket {
    Busy,
    Read,
    Write,
    Acquire,
    Rollback,
    Fetch,
}

/// A read-only summary of the core's mutable state, compared across a
/// tick to detect quiescence (see [`Processor::quiescence`]). Accounting
/// state (`breakdown`, `stall_cycles`) is deliberately excluded: those
/// counters advance even in cycles where nothing architectural happens,
/// and fast-forwarding replays them exactly via
/// [`Processor::account_skipped`]. Everything else either shows up in a
/// stat counter, a queue length, or one of the per-entry flag counts
/// below; transitions that clear a flag (squash, reissue) always bump a
/// stat (`rollbacks`, `reissues`, `branch_mispredicts`), so balanced
/// flag flips cannot cancel out invisibly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcQuiescence {
    stats: ProcStats,
    pc: u32,
    fetch_stalled_until: u64,
    fetch_done: bool,
    program_finished: bool,
    halted: bool,
    fault: bool,
    /// ROB: (len, finishes_at set, value set, completed, dispatched,
    /// resolved, mem_performed, speculative, in_store_buffer).
    rob: [usize; 9],
    /// Store buffer: (len, rob_released, issued, prefetch_sent).
    sb: [usize; 4],
    /// Spec buffer: (len, done, bound, store_tag, forward_src).
    spec: [usize; 5],
    /// Load queue: (len, issued, prefetch_sent).
    loads: [usize; 3],
    addr_queue: usize,
    sw_prefetches: usize,
    awaiting: usize,
    txn_tokens: usize,
    sb_txn: usize,
    hit_completions: usize,
    forward_waiters: usize,
    /// Monotone count of trace events ever recorded. Folding it into the
    /// fingerprint makes "quiescent spans emit no events" structural: a
    /// cycle that records anything can never open or extend a span, so
    /// fast-forwarding cannot change the trace.
    trace_emitted: u64,
}

/// One out-of-order processor.
#[derive(Debug)]
pub struct Processor {
    id: ProcId,
    cfg: ProcConfig,
    model: Model,
    program: Program,
    rob: Rob,
    pred: Predictor,
    sb: StoreBuffer,
    specbuf: SpeculativeLoadBuffer,
    pc: u32,
    fetch_stalled_until: u64,
    fetch_done: bool,
    program_finished: bool,
    halted: bool,
    addr_queue: VecDeque<Seq>,
    load_queue: VecDeque<LoadReq>,
    awaiting: HashMap<DemandToken, Seq>,
    txn_tokens: HashMap<TxnId, Vec<DemandToken>>,
    sb_txn: HashMap<TxnId, Vec<(Seq, Option<DemandToken>)>>,
    hit_completions: Vec<(u64, HitCompletion)>,
    forward_waiters: Vec<(Seq, Seq)>, // (store, load)
    /// Software prefetch hints awaiting a free port cycle (§6).
    sw_prefetches: VecDeque<(Seq, Addr, bool)>,
    port_used: bool,
    /// Whether this cycle's port consumer was a prefetch (the stall
    /// counter must still see waiting demand work behind it).
    port_used_by_prefetch: bool,
    /// Breakdown component the most recent accounted cycle landed in.
    /// While the core's state is frozen (a fast-forwarded span), every
    /// cycle classifies identically, so this one remembered verdict is
    /// enough to bulk-account the whole span ([`Self::account_skipped`]).
    last_bucket: StallBucket,
    /// Whether the most recent cycle bumped `stats.stall_cycles` (same
    /// replay logic as `last_bucket`).
    last_stalled: bool,
    stats: ProcStats,
    /// Event sink; `None` (the default) makes recording a single branch.
    tracer: Option<TraceBuffer>,
    /// First structured fault hit by this core (pipeline-bookkeeping
    /// contract breaches that used to panic). The machine polls it.
    fault: Option<SimError>,
}

impl Processor {
    /// A fresh core running `program` under `model`.
    #[must_use]
    pub fn new(id: ProcId, cfg: ProcConfig, model: Model, program: Program) -> Self {
        cfg.validate();
        Processor {
            id,
            rob: Rob::new(cfg.rob_size),
            pred: Predictor::new(),
            sb: StoreBuffer::new(),
            specbuf: SpeculativeLoadBuffer::new(),
            pc: 0,
            fetch_stalled_until: 0,
            fetch_done: false,
            program_finished: false,
            halted: false,
            addr_queue: VecDeque::new(),
            load_queue: VecDeque::new(),
            awaiting: HashMap::new(),
            txn_tokens: HashMap::new(),
            sb_txn: HashMap::new(),
            hit_completions: Vec::new(),
            forward_waiters: Vec::new(),
            sw_prefetches: VecDeque::new(),
            port_used: false,
            port_used_by_prefetch: false,
            last_bucket: StallBucket::Busy,
            last_stalled: false,
            stats: ProcStats::default(),
            tracer: None,
            fault: None,
            cfg,
            model,
            program,
        }
    }

    /// This core's index.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The consistency model it enforces.
    #[must_use]
    pub fn model(&self) -> Model {
        self.model
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ProcConfig {
        &self.cfg
    }

    /// Whether the core has fully drained (program committed, all memory
    /// operations performed).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Per-core statistics.
    #[must_use]
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// The committed architectural registers.
    #[must_use]
    pub fn regfile(&self) -> &RegFile {
        self.rob.regfile()
    }

    /// Starts recording [`TraceEvent`]s into a ring of `capacity`.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(TraceBuffer::new(capacity));
    }

    /// Takes the retained events (emission order; the ring keeps running).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer
            .as_mut()
            .map(TraceBuffer::drain)
            .unwrap_or_default()
    }

    /// Total events ever recorded (monotone — a fingerprint component).
    #[must_use]
    pub fn trace_emitted(&self) -> u64 {
        self.tracer.as_ref().map_or(0, TraceBuffer::emitted)
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, TraceBuffer::dropped)
    }

    /// Records an event for `seq`, resolving its PC from the live
    /// reorder-buffer entry. Events about already-retired instructions
    /// must go through [`Self::emit_at`] with the popped entry's PC.
    fn emit(&mut self, cycle: u64, seq: Seq, kind: TraceKind) {
        if self.tracer.is_some() {
            let pc = self.rob.entry(seq).map(|e| e.pc);
            self.emit_at(cycle, seq, pc, kind);
        }
    }

    fn emit_at(&mut self, cycle: u64, seq: Seq, pc: Option<u32>, kind: TraceKind) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                cycle,
                proc: self.id,
                seq: Some(seq),
                pc,
                kind,
            });
        }
    }

    fn split_rmw(&self, mem: &MemorySystem) -> bool {
        self.cfg.techniques.speculative_loads && mem.config().protocol == Protocol::Invalidate
    }

    // ------------------------------------------------------------------
    // Guard hooks: fault slot, invariants, watchdog telemetry.
    // ------------------------------------------------------------------

    /// Takes the first structured fault this core recorded, if any.
    pub fn take_fault(&mut self) -> Option<SimError> {
        self.fault.take()
    }

    /// Records a fault, keeping the first (earliest cycle wins).
    fn set_fault(&mut self, e: SimError) {
        if self.fault.is_none() {
            self.fault = Some(e);
        }
    }

    /// Current fetch program counter (watchdog telemetry: a moving PC
    /// with no retirement distinguishes livelock from deadlock).
    #[must_use]
    pub fn fetch_pc(&self) -> u32 {
        self.pc
    }

    /// Reorder-buffer occupancy.
    #[must_use]
    pub fn rob_len(&self) -> usize {
        self.rob.len()
    }

    // ------------------------------------------------------------------
    // Event horizon: fast-forward support.
    // ------------------------------------------------------------------

    /// The earliest cycle after `now` at which this core can change state
    /// *without* external input: a scheduled hit completion, an ALU
    /// result finishing, or the frontend's refetch stall expiring. All
    /// other progress (fills, grants, coherence hazards) arrives through
    /// the memory system, whose own horizon covers it. `None` means the
    /// core is halted or purely event-driven right now. A fetch stage
    /// blocked on reorder-buffer space needs no timed entry: it can only
    /// resume after a retirement, which is a state change some other
    /// horizon (or this cycle) produces.
    #[must_use]
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.halted {
            return None;
        }
        let mut horizon: Option<u64> = None;
        let mut add = |at: u64| horizon = Some(horizon.map_or(at, |h| h.min(at)));
        for (at, _) in &self.hit_completions {
            add(*at);
        }
        for e in self.rob.iter() {
            if let Some(f) = e.finishes_at {
                if e.value.is_none() {
                    add(f);
                }
            }
        }
        if !self.fetch_done && self.fetch_stalled_until > now {
            add(self.fetch_stalled_until);
        }
        horizon
    }

    /// A cheap, read-only fingerprint of the core's mutable state (minus
    /// pure accounting — see [`ProcQuiescence`]). Two equal fingerprints
    /// straddling a tick prove the tick changed nothing architectural,
    /// making the cycle (and any identical cycles after it, up to the
    /// machine's event horizon) skippable.
    #[must_use]
    pub fn quiescence(&self) -> ProcQuiescence {
        let mut stats = self.stats;
        stats.stall_cycles = 0;
        stats.breakdown = crate::stats::CycleBreakdown::default();
        let mut rob = [0usize; 9];
        rob[0] = self.rob.len();
        for e in self.rob.iter() {
            rob[1] += usize::from(e.finishes_at.is_some());
            rob[2] += usize::from(e.value.is_some());
            rob[3] += usize::from(e.completed);
            rob[4] += usize::from(e.dispatched);
            rob[5] += usize::from(e.resolved);
            rob[6] += usize::from(e.mem_performed);
            rob[7] += usize::from(e.speculative);
            rob[8] += usize::from(e.in_store_buffer);
        }
        let mut sb = [0usize; 4];
        sb[0] = self.sb.len();
        for e in self.sb.iter() {
            sb[1] += usize::from(e.rob_released);
            sb[2] += usize::from(matches!(e.state, SbState::Issued { .. }));
            sb[3] += usize::from(e.prefetch_sent);
        }
        let mut spec = [0usize; 5];
        spec[0] = self.specbuf.len();
        for e in self.specbuf.iter() {
            spec[1] += usize::from(e.done);
            spec[2] += usize::from(e.bound.is_some());
            spec[3] += usize::from(e.store_tag.is_some());
            spec[4] += usize::from(e.forward_src.is_some());
        }
        let mut loads = [0usize; 3];
        loads[0] = self.load_queue.len();
        for r in &self.load_queue {
            loads[1] += usize::from(matches!(r.state, LoadState::Issued { .. }));
            loads[2] += usize::from(r.prefetch_sent);
        }
        ProcQuiescence {
            stats,
            pc: self.pc,
            fetch_stalled_until: self.fetch_stalled_until,
            fetch_done: self.fetch_done,
            program_finished: self.program_finished,
            halted: self.halted,
            fault: self.fault.is_some(),
            rob,
            sb,
            spec,
            loads,
            addr_queue: self.addr_queue.len(),
            sw_prefetches: self.sw_prefetches.len(),
            awaiting: self.awaiting.len(),
            txn_tokens: self.txn_tokens.len(),
            sb_txn: self.sb_txn.len(),
            hit_completions: self.hit_completions.len(),
            forward_waiters: self.forward_waiters.len(),
            trace_emitted: self.trace_emitted(),
        }
    }

    /// Checks the core's buffer-ordering invariants — the reorder buffer,
    /// store buffer, and speculative-load buffer must each hold entries in
    /// strictly increasing program (sequence) order (retirement and the
    /// associative hazard match both assume it) — and the cycle-accounting
    /// identity: breakdown components sum to exactly the cycles this core
    /// has been accounted for (`halted_at` once halted, `now` while live).
    pub fn check_invariants(&self, now: u64) -> Result<(), SimError> {
        let accounted = if self.halted {
            self.stats.halted_at
        } else {
            now
        };
        let summed = self.stats.breakdown.total();
        if summed != accounted {
            return Err(SimError::invariant(
                now,
                Some(self.id),
                None,
                InvariantKind::CycleBreakdownSum,
                format!(
                    "breakdown components sum to {summed}, expected {accounted} accounted cycles"
                ),
            ));
        }
        let mut prev: Option<Seq> = None;
        for e in self.rob.iter() {
            if prev.is_some_and(|p| p >= e.seq) {
                return Err(SimError::invariant(
                    now,
                    Some(self.id),
                    None,
                    InvariantKind::RobOrder,
                    format!("ROB entry seq {} follows seq {:?}", e.seq, prev),
                ));
            }
            prev = Some(e.seq);
        }
        let mut prev: Option<Seq> = None;
        for e in self.sb.iter() {
            if prev.is_some_and(|p| p >= e.seq) {
                return Err(SimError::invariant(
                    now,
                    Some(self.id),
                    None,
                    InvariantKind::StoreBufferOrder,
                    format!("store-buffer entry seq {} follows seq {:?}", e.seq, prev),
                ));
            }
            prev = Some(e.seq);
        }
        let mut prev: Option<Seq> = None;
        for e in self.specbuf.iter() {
            if prev.is_some_and(|p| p >= e.seq) {
                return Err(SimError::invariant(
                    now,
                    Some(self.id),
                    None,
                    InvariantKind::SpecBufferOrder,
                    format!("spec-buffer entry seq {} follows seq {:?}", e.seq, prev),
                ));
            }
            prev = Some(e.seq);
        }
        Ok(())
    }

    /// A rendered snapshot of this core's architectural position and held
    /// buffer entries, for the watchdog's stall report.
    #[must_use]
    pub fn stall_snapshot(&self) -> StalledProc {
        let store_buffer = self
            .sb
            .iter()
            .map(|e| format!("seq {} addr {:#x} {:?}", e.seq, e.addr.0, e.state))
            .collect();
        let spec_buffer = self
            .specbuf
            .iter()
            .map(|e| {
                format!(
                    "seq {} line {:#x} acq={} done={} tag={:?}",
                    e.seq, e.line.0, e.acq, e.done, e.store_tag
                )
            })
            .collect();
        let mut awaiting: Vec<(Seq, DemandToken)> =
            self.awaiting.iter().map(|(t, s)| (*s, *t)).collect();
        awaiting.sort_unstable_by_key(|(s, _)| *s);
        StalledProc {
            proc: self.id,
            pc: u64::from(self.pc),
            committed: self.stats.committed,
            rob_entries: self.rob.len(),
            store_buffer,
            spec_buffer,
            awaiting: awaiting
                .into_iter()
                .map(|(s, t)| format!("seq {s} token {t:?}"))
                .collect(),
        }
    }

    /// Runs one cycle. The memory system must already have ticked to
    /// `now`.
    pub fn tick(&mut self, now: u64, mem: &mut MemorySystem) {
        if self.halted {
            return;
        }
        self.port_used = false;
        self.port_used_by_prefetch = false;
        self.stage_drain(now, mem);
        self.stage_spec_retire(now);
        self.stage_execute(now);
        let retired = self.stage_commit(now);
        self.stage_fetch(now);
        self.stage_dispatch(now, mem);
        self.stage_store_issue(now, mem);
        self.stage_load_issue(now, mem);
        self.stage_prefetch(now, mem);
        // Demand work waited while no demand access took the port —
        // whether the port sat idle (consistency delay arcs) or was
        // consumed by a prefetch.
        let stalled = (!self.port_used || self.port_used_by_prefetch)
            && (!self.load_queue.is_empty() || !self.sb.is_empty());
        if stalled {
            self.stats.stall_cycles += 1;
        }
        self.last_stalled = stalled;
        if self.program_finished
            && self.sb.is_empty()
            && self.load_queue.is_empty()
            && self.awaiting.is_empty()
            && self.specbuf.is_empty()
            && self.hit_completions.is_empty()
            && !self.halted
        {
            self.halted = true;
            self.stats.halted_at = now;
        }
        // Attribute this cycle to exactly one breakdown component. The
        // halting tick is not accounted: the core is done at `halted_at`,
        // so components sum to `halted_at` once halted (and to the ticks
        // run so far while live) — the CycleBreakdownSum invariant.
        if !self.halted {
            self.account_cycle(now, retired);
        }
    }

    /// Classifies one non-halting cycle by what blocked retirement at the
    /// reorder-buffer head (the paper's Section 5 execution-time
    /// decomposition).
    fn account_cycle(&mut self, now: u64, retired: u64) {
        let bucket = if retired > 0 {
            StallBucket::Busy
        } else if let Some(head) = self.rob.head() {
            match AccessClass::of_instr(&head.instr) {
                Some(c) if c.is_acquire() => StallBucket::Acquire,
                Some(c) if c.reads => StallBucket::Read,
                Some(_) => StallBucket::Write,
                // ALU/branch (or a not-yet-dispatched hint) at the head,
                // still executing: the processor is doing useful work.
                None => StallBucket::Busy,
            }
        } else if !self.sb.is_empty() || !self.load_queue.is_empty() || !self.awaiting.is_empty() {
            // Program committed, store buffer (or a stray demand access)
            // still draining — the post-halt write stall SC pays and RC
            // overlaps.
            StallBucket::Write
        } else if now < self.fetch_stalled_until {
            // Refetching after a squash: correction overhead.
            StallBucket::Rollback
        } else {
            StallBucket::Fetch
        };
        self.last_bucket = bucket;
        self.bump_bucket(bucket, 1);
    }

    fn bump_bucket(&mut self, bucket: StallBucket, n: u64) {
        let b = &mut self.stats.breakdown;
        match bucket {
            StallBucket::Busy => b.busy += n,
            StallBucket::Read => b.read_stall += n,
            StallBucket::Write => b.write_stall += n,
            StallBucket::Acquire => b.acquire_stall += n,
            StallBucket::Rollback => b.rollback_stall += n,
            StallBucket::Fetch => b.fetch_stall += n,
        }
    }

    /// Bulk-accounts `n` fast-forwarded cycles exactly as per-cycle
    /// simulation would have: a skipped span is by construction a stretch
    /// of frozen state, so every cycle in it repeats the classification
    /// (and port-stall verdict) of the quiescent cycle that opened it.
    /// No-op for a halted core, which per-cycle ticks stop accounting.
    pub fn account_skipped(&mut self, n: u64) {
        if self.halted || n == 0 {
            return;
        }
        if self.last_stalled {
            self.stats.stall_cycles += n;
        }
        self.bump_bucket(self.last_bucket, n);
    }

    // ------------------------------------------------------------------
    // Stage 1: drain memory events and local hit completions.
    // ------------------------------------------------------------------

    fn stage_drain(&mut self, now: u64, mem: &mut MemorySystem) {
        // Local hit completions first: a value bound by a hit counts as
        // consumed before any hazard arriving this cycle (conservative).
        let due: Vec<HitCompletion> = {
            let mut due = Vec::new();
            self.hit_completions.retain(|(at, hc)| {
                if *at <= now {
                    due.push(*hc);
                    false
                } else {
                    true
                }
            });
            due
        };
        for hc in due {
            match hc {
                HitCompletion::Load { seq, value } => self.complete_load(now, seq, value),
                HitCompletion::Store { seq, rmw_old } => self.complete_store(now, seq, rmw_old),
            }
        }

        for ev in mem.drain_events(self.id) {
            match ev {
                MemEvent::Done { txn, .. } => {
                    if let Some(entries) = self.sb_txn.remove(&txn) {
                        // Several stores may have merged into one
                        // transaction (same line); all complete with it.
                        for (seq, token) in entries {
                            let old = token.and_then(|t| mem.take_bound_value(t));
                            self.complete_store(now, seq, old);
                        }
                    }
                    if let Some(tokens) = self.txn_tokens.remove(&txn) {
                        for token in tokens {
                            let value = mem.take_bound_value(token);
                            if let Some(seq) = self.awaiting.remove(&token) {
                                let Some(value) = value else {
                                    self.set_fault(SimError::protocol(
                                        now,
                                        Some(self.id),
                                        None,
                                        format!("completed demand read (seq {seq}) bound no value"),
                                    ));
                                    continue;
                                };
                                self.complete_load(now, seq, value);
                            }
                            // else: a squashed/reissued load's stale value
                            // (footnote 5's tagging) — dropped.
                        }
                    }
                }
                MemEvent::Invalidated { line } | MemEvent::Replaced { line } => {
                    self.handle_hazard(now, mem, line, None);
                }
                MemEvent::Updated { line, addr, value } => {
                    self.handle_hazard(now, mem, line, Some((addr, value)));
                }
            }
        }
    }

    /// Detection + correction (§4.2): match the hazard against the
    /// speculative-load buffer and roll back or reissue.
    fn handle_hazard(
        &mut self,
        now: u64,
        mem: &MemorySystem,
        line: LineAddr,
        update: Option<(Addr, u64)>,
    ) {
        // Footnote 2 ablation: an update hazard names the written word and
        // value, so false sharing and same-value writes — both provably
        // harmless to the speculation — can be filtered out.
        let exact = self.cfg.exact_update_check;
        let mut filtered = 0u64;
        let m = self.specbuf.match_hazard_where(line, |e| {
            if let (true, Some((addr, value))) = (exact, update) {
                let harmless = e.addr != addr || e.bound == Some(value);
                if harmless {
                    filtered += 1;
                    return false;
                }
            }
            true
        });
        self.stats.hazards_filtered += filtered;
        let Some(m) = m else {
            return;
        };
        let entry_class = self.specbuf.get(m.seq).expect("matched entry exists").class;
        // Appendix A: once the RMW's atomic has *issued* (or already
        // performed — non-idempotent, it must never re-execute), only the
        // computation following it is discarded; the atomic's own return
        // value is authoritative.
        let rmw_issued = entry_class.writes
            && (self
                .sb
                .get(m.seq)
                .is_some_and(|e| matches!(e.state, SbState::Issued { .. }))
                || self.rob.entry(m.seq).is_none_or(|e| e.mem_performed));
        let _ = mem;
        if rmw_issued {
            // Appendix A: the atomic has already issued; its own value will
            // be the real one — discard only the computation after it.
            let Some(e) = self.rob.entry(m.seq) else {
                return;
            };
            let next_pc = e.pc + 1;
            self.stats.rollbacks += 1;
            self.emit(now, m.seq, TraceKind::RmwPartialRollback { line });
            self.squash(now, m.seq + 1, next_pc, true);
        } else if m.done {
            // Value (possibly) consumed: treat the load as mispredicted —
            // discard it and everything after, refetch (§4.2 case 1).
            let e = self
                .rob
                .entry(m.seq)
                .expect("speculative entries always have live ROB entries");
            let pc = e.pc;
            self.stats.rollbacks += 1;
            let squashed = self.squash(now, m.seq, pc, true);
            self.emit_at(now, m.seq, Some(pc), TraceKind::Rollback { line, squashed });
        } else {
            // Value not yet consumed: reissue the access only (§4.2 case
            // 2); the in-flight response is dropped by token epoch.
            self.stats.reissues += 1;
            self.specbuf.mark_reissued(m.seq);
            if let Some(req) = self.load_queue.iter_mut().find(|r| r.seq == m.seq) {
                if let LoadState::Issued { token } = req.state {
                    self.awaiting.remove(&token);
                    req.state = LoadState::Waiting;
                }
            }
            self.emit(now, m.seq, TraceKind::Reissue { line });
        }
    }

    /// Squashes all instructions with `seq >= from`, restarting fetch at
    /// `new_pc`. Returns how many instructions were squashed.
    fn squash(&mut self, now: u64, from: Seq, new_pc: u32, spec: bool) -> usize {
        if self.tracer.is_some() {
            // Squashed entries leave their buffers; record the exits
            // before the buffers forget them.
            let exits: Vec<(Seq, BufferKind, Addr)> = self
                .sb
                .iter()
                .filter(|e| e.seq >= from)
                .map(|e| (e.seq, BufferKind::Store, e.addr))
                .chain(
                    self.specbuf
                        .iter()
                        .filter(|e| e.seq >= from)
                        .map(|e| (e.seq, BufferKind::Spec, e.addr)),
                )
                .chain(
                    self.load_queue
                        .iter()
                        .filter(|r| r.seq >= from)
                        .map(|r| (r.seq, BufferKind::Load, r.addr)),
                )
                .collect();
            for (seq, buffer, addr) in exits {
                self.emit(now, seq, TraceKind::BufferExit { buffer, addr });
            }
        }
        let removed = self.rob.squash_from(from);
        let n = removed.len();
        if spec {
            self.stats.squashed_by_spec += n as u64;
        } else {
            self.stats.squashed_by_branch += n as u64;
        }
        self.sb.squash_from(from);
        self.specbuf.squash_from(from);
        self.addr_queue.retain(|&s| s < from);
        let awaiting = &mut self.awaiting;
        self.load_queue.retain(|r| {
            if r.seq >= from {
                if let LoadState::Issued { token } = r.state {
                    awaiting.remove(&token);
                }
                false
            } else {
                true
            }
        });
        self.hit_completions.retain(|(_, hc)| hc.seq() < from);
        self.forward_waiters.retain(|(_, l)| *l < from);
        self.sw_prefetches.retain(|(s, _, _)| *s < from);
        self.pc = new_pc;
        self.fetch_stalled_until = now + self.cfg.refetch_penalty;
        self.fetch_done = false;
        n
    }

    /// Finishes a load: publishes its value and marks it performed. For a
    /// split RMW's read-exclusive half, only the (speculative) value is
    /// published — the RMW performs when its store-buffer half does.
    fn complete_load(&mut self, now: u64, seq: Seq, value: u64) {
        let Some(i) = self.load_queue.iter().position(|r| r.seq == seq) else {
            return;
        };
        let req = self.load_queue.remove(i).expect("index valid");
        if let Some(at) = req.issued_at {
            self.stats.load_latency.record(now.saturating_sub(at));
        }
        self.rob.set_value(seq, value);
        self.specbuf.set_bound(seq, value);
        self.specbuf.mark_done(seq);
        if !matches!(req.kind, LoadKind::RmwSplit) {
            if let Some(e) = self.rob.entry_mut(seq) {
                e.mem_performed = true;
                e.completed = true;
            }
        }
        self.emit(
            now,
            seq,
            TraceKind::BufferExit {
                buffer: BufferKind::Load,
                addr: req.addr,
            },
        );
        self.emit(now, seq, TraceKind::Performed { addr: req.addr });
    }

    /// Finishes a store (or the atomic half of an RMW): removes it from
    /// the store buffer, publishes an RMW's authoritative old value,
    /// retags the speculative-load buffer, and performs forwarded loads.
    fn complete_store(&mut self, now: u64, seq: Seq, rmw_old: Option<u64>) {
        let Some(entry) = self.sb.complete(seq) else {
            self.set_fault(SimError::protocol(
                now,
                Some(self.id),
                None,
                format!("store completion for unknown store-buffer entry (seq {seq})"),
            ));
            return;
        };
        if let Some(at) = entry.issued_at {
            self.stats.store_latency.record(now.saturating_sub(at));
        }
        if let Some(old) = rmw_old {
            self.rob.set_value(seq, old);
        }
        if let Some(e) = self.rob.entry_mut(seq) {
            e.mem_performed = true;
            e.completed = true;
        }
        // Forwarded loads that took this store's value have now performed.
        let mut performed_loads = Vec::new();
        self.forward_waiters.retain(|(s, l)| {
            if *s == seq {
                performed_loads.push(*l);
                false
            } else {
                true
            }
        });
        for l in performed_loads {
            if let Some(e) = self.rob.entry_mut(l) {
                e.mem_performed = true;
            }
        }
        self.specbuf.mark_forward_sources_done(seq);
        self.specbuf.mark_done(seq); // split-RMW spec entry
        let model = self.model;
        let sb = &self.sb;
        self.specbuf.store_completed(seq, |load_seq, class| {
            sb.constraining_store(model, load_seq, class)
        });
        self.emit(
            now,
            seq,
            TraceKind::BufferExit {
                buffer: BufferKind::Store,
                addr: entry.addr,
            },
        );
        self.emit(now, seq, TraceKind::Performed { addr: entry.addr });
    }

    // ------------------------------------------------------------------
    // Stage 2: speculative-load-buffer retirement.
    // ------------------------------------------------------------------

    fn stage_spec_retire(&mut self, now: u64) {
        for seq in self.specbuf.retire_ready() {
            if let Some(e) = self.rob.entry_mut(seq) {
                e.speculative = false;
            }
            self.emit(now, seq, TraceKind::SpecRetired);
        }
    }

    // ------------------------------------------------------------------
    // Stage 3: execute (ALU completion, in-order branch resolution).
    // ------------------------------------------------------------------

    fn stage_execute(&mut self, now: u64) {
        let seqs: Vec<Seq> = self.rob.iter().map(|e| e.seq).collect();
        for seq in seqs {
            let Some(e) = self.rob.entry(seq) else {
                continue; // squashed by an older branch this cycle
            };
            match &e.instr {
                Instr::Alu { op, latency, .. } => {
                    let op = *op;
                    let latency = u64::from(*latency);
                    if e.value.is_some() {
                        continue;
                    }
                    if e.finishes_at.is_none() && e.srcs_ready() {
                        let v1 = e.src1_value();
                        let v2 = e.src2_value();
                        let e = self.rob.entry_mut(seq).expect("present");
                        e.finishes_at = Some(now + latency);
                        // Stash the computed result via value at finish.
                        let result = op.apply(v1, v2);
                        e.value = None;
                        e.src1 = Some(crate::rob::Src::Ready(result)); // result parked in src1
                    }
                    let e = self.rob.entry(seq).expect("present");
                    if e.finishes_at.is_some_and(|f| f <= now) && e.value.is_none() {
                        let result = e.src1_value();
                        self.rob.set_value(seq, result);
                        if let Some(e) = self.rob.entry_mut(seq) {
                            e.completed = true;
                        }
                    }
                }
                Instr::Branch {
                    cond,
                    target,
                    hint: _,
                    ..
                } => {
                    if e.resolved || !e.srcs_ready() {
                        continue;
                    }
                    let cond = *cond;
                    let target = *target;
                    let pc = e.pc;
                    let predicted = e.predicted_taken.expect("branches are predicted at fetch");
                    let actual = cond.apply(e.src1_value(), e.src2_value());
                    self.stats.branches += 1;
                    self.pred.resolve(pc, predicted, actual, target);
                    {
                        let e = self.rob.entry_mut(seq).expect("present");
                        e.resolved = true;
                        e.completed = true;
                    }
                    if actual != predicted {
                        self.stats.branch_mispredicts += 1;
                        let new_pc = if actual { target } else { pc + 1 };
                        self.emit(now, seq, TraceKind::BranchMispredicted);
                        self.squash(now, seq + 1, new_pc, false);
                        break; // everything younger is gone
                    }
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 4: commit.
    // ------------------------------------------------------------------

    /// Returns how many instructions retired this cycle (drives the busy
    /// component of the cycle breakdown).
    fn stage_commit(&mut self, now: u64) -> u64 {
        let mut retired = 0u64;
        let mut budget = self.cfg.commit_width.unwrap_or(usize::MAX);
        while budget > 0 {
            let Some(head) = self.rob.head() else { break };
            let seq = head.seq;
            let retire = match &head.instr {
                Instr::Nop | Instr::Jump { .. } => true,
                Instr::Halt => true,
                // A software prefetch is a retired hint once its address
                // went to the prefetch queue (non-binding: nothing waits).
                Instr::Prefetch { .. } => head.dispatched,
                Instr::Alu { .. } => head.value.is_some(),
                Instr::Branch { .. } => head.resolved,
                Instr::Load { .. } => head.value.is_some() && !head.speculative,
                Instr::Store { .. } => {
                    if !head.dispatched {
                        false
                    } else {
                        self.release_store(now, seq);
                        match self.model {
                            // SC/PC: the head store retires only when it
                            // completes (stores one-at-a-time, §4.2).
                            Model::Sc | Model::Pc => self.rob.head().expect("head").mem_performed,
                            // TSO/PSO/WC/RC: retired as soon as address
                            // translation is done — the store waits in the
                            // store buffer, whose drain order the delay
                            // arcs already govern (FIFO under TSO, free
                            // under PSO for ordinary stores).
                            Model::Tso | Model::Pso | Model::Wc | Model::RcSc | Model::Rc => true,
                        }
                    }
                }
                Instr::Rmw { .. } => {
                    if head.dispatched && head.in_store_buffer {
                        self.release_store(now, seq);
                    }
                    let head = self.rob.head().expect("head");
                    head.dispatched
                        && head.value.is_some()
                        && !head.speculative
                        && head.mem_performed
                }
            };
            if !retire {
                break;
            }
            let Some(e) = self.rob.pop_head() else { break };
            retired += 1;
            self.stats.committed += 1;
            // The entry is gone from the ROB; stamp the event with the
            // popped entry's own PC.
            self.emit_at(now, e.seq, Some(e.pc), TraceKind::Retired);
            if e.instr.is_mem_read() {
                self.stats.loads += 1;
            }
            if e.instr.is_mem_write() {
                self.stats.stores += 1;
            }
            if matches!(e.instr, Instr::Rmw { .. }) {
                self.stats.rmws += 1;
            }
            if matches!(e.instr, Instr::Halt) {
                self.program_finished = true;
                self.emit_at(now, e.seq, Some(e.pc), TraceKind::HaltCommitted);
                break;
            }
            budget -= 1;
        }
        retired
    }

    fn release_store(&mut self, now: u64, seq: Seq) {
        if let Some(e) = self.sb.get(seq) {
            if !e.rob_released {
                self.sb.mark_released(seq);
                self.emit(now, seq, TraceKind::StoreReleased);
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 5: fetch along the predicted path.
    // ------------------------------------------------------------------

    fn stage_fetch(&mut self, now: u64) {
        if self.fetch_done || now < self.fetch_stalled_until {
            return;
        }
        let width = self.cfg.fetch_width.unwrap_or(usize::MAX);
        for _ in 0..width {
            if !self.rob.has_space() {
                break;
            }
            let Some(instr) = self.program.fetch(self.pc as usize) else {
                // Ran off the end (program validation guarantees a halt,
                // so this means a wild predicted path) — stop fetching;
                // a squash will redirect us.
                self.fetch_done = true;
                break;
            };
            let instr = instr.clone();
            let pc = self.pc;
            let seq = self.rob.push(pc, instr.clone()).expect("space checked");
            self.emit_at(now, seq, Some(pc), TraceKind::Fetched);
            match &instr {
                Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Rmw { .. }
                | Instr::Prefetch { .. } => {
                    self.addr_queue.push_back(seq);
                    self.pc += 1;
                }
                Instr::Branch { hint, target, .. } => {
                    let taken = self.pred.predict(pc, *hint, *target);
                    self.rob
                        .entry_mut(seq)
                        .expect("just pushed")
                        .predicted_taken = Some(taken);
                    self.pc = if taken { *target } else { pc + 1 };
                }
                Instr::Jump { target } => {
                    self.pc = *target;
                }
                Instr::Halt => {
                    self.fetch_done = true;
                    break;
                }
                Instr::Nop | Instr::Alu { .. } => {
                    self.pc += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 6: in-order address unit / dispatch.
    // ------------------------------------------------------------------

    fn stage_dispatch(&mut self, now: u64, mem: &MemorySystem) {
        while let Some(&seq) = self.addr_queue.front() {
            let Some(e) = self.rob.entry(seq) else {
                self.addr_queue.pop_front();
                continue;
            };
            if !e.srcs_ready() {
                break; // in-order: stall behind an unresolved address/data
            }
            let instr = e.instr.clone();
            // Software prefetches carry no ordering class.
            let class = AccessClass::of_instr(&instr).unwrap_or(AccessClass::LOAD);
            match instr {
                Instr::Load { addr, .. } => {
                    let src1 = e.src1.and_then(|s| s.value());
                    let a = addr.eval(|_| src1.expect("index operand ready"));
                    {
                        let e = self.rob.entry_mut(seq).expect("present");
                        e.addr = Some(a);
                        e.dispatched = true;
                    }
                    if self.cfg.techniques.speculative_loads {
                        self.push_spec_entry(now, mem, seq, a, class, None);
                    }
                    self.load_queue.push_back(LoadReq {
                        seq,
                        addr: a,
                        class,
                        kind: LoadKind::Plain,
                        prefetch_sent: false,
                        state: LoadState::Waiting,
                        issued_at: None,
                    });
                    self.emit(
                        now,
                        seq,
                        TraceKind::BufferEnter {
                            buffer: BufferKind::Load,
                            addr: a,
                        },
                    );
                }
                Instr::Store { addr, .. } => {
                    let src1 = e.src1.and_then(|s| s.value());
                    let a = addr.eval(|_| src1.expect("index operand ready"));
                    let value = e.src2_value();
                    {
                        let e = self.rob.entry_mut(seq).expect("present");
                        e.addr = Some(a);
                        e.dispatched = true;
                        e.in_store_buffer = true;
                    }
                    self.sb.push(SbEntry {
                        seq,
                        class,
                        addr: a,
                        value,
                        rmw: None,
                        rob_released: false,
                        state: SbState::Waiting,
                        prefetch_sent: false,
                        issued_at: None,
                    });
                    self.emit(
                        now,
                        seq,
                        TraceKind::BufferEnter {
                            buffer: BufferKind::Store,
                            addr: a,
                        },
                    );
                }
                Instr::Rmw { addr, kind, .. } => {
                    let src1 = e.src1.and_then(|s| s.value());
                    let a = addr.eval(|_| src1.expect("index operand ready"));
                    let operand = e.src2_value();
                    let split = self.split_rmw(mem);
                    {
                        let e = self.rob.entry_mut(seq).expect("present");
                        e.addr = Some(a);
                        e.dispatched = true;
                        e.in_store_buffer = split;
                    }
                    if split {
                        // Appendix A: speculative read-exclusive load +
                        // the buffered atomic. The spec entry's store tag
                        // is the RMW's own store-buffer slot.
                        self.sb.push(SbEntry {
                            seq,
                            class,
                            addr: a,
                            value: operand,
                            rmw: Some(kind),
                            rob_released: false,
                            state: SbState::Waiting,
                            prefetch_sent: false,
                            issued_at: None,
                        });
                        self.emit(
                            now,
                            seq,
                            TraceKind::BufferEnter {
                                buffer: BufferKind::Store,
                                addr: a,
                            },
                        );
                        self.push_spec_entry(now, mem, seq, a, class, Some(seq));
                        self.load_queue.push_back(LoadReq {
                            seq,
                            addr: a,
                            class,
                            kind: LoadKind::RmwSplit,
                            prefetch_sent: false,
                            state: LoadState::Waiting,
                            issued_at: None,
                        });
                    } else {
                        self.load_queue.push_back(LoadReq {
                            seq,
                            addr: a,
                            class,
                            kind: LoadKind::RmwConv { kind, operand },
                            prefetch_sent: false,
                            state: LoadState::Waiting,
                            issued_at: None,
                        });
                    }
                    self.emit(
                        now,
                        seq,
                        TraceKind::BufferEnter {
                            buffer: BufferKind::Load,
                            addr: a,
                        },
                    );
                }
                Instr::Prefetch { addr, exclusive } => {
                    let src1 = e.src1.and_then(|s| s.value());
                    let a = addr.eval(|_| src1.expect("index operand ready"));
                    {
                        let e = self.rob.entry_mut(seq).expect("present");
                        e.addr = Some(a);
                        e.dispatched = true;
                    }
                    self.sw_prefetches.push_back((seq, a, exclusive));
                }
                other => {
                    // The fetch stage only queues memory ops; anything else
                    // here is a dispatch-bookkeeping breach. Drop it and
                    // report, rather than unwinding mid-cycle.
                    self.set_fault(SimError::protocol(
                        now,
                        Some(self.id),
                        None,
                        format!("non-memory instruction {other:?} in the address queue"),
                    ));
                    self.addr_queue.pop_front();
                    continue;
                }
            }
            self.addr_queue.pop_front();
        }
    }

    fn push_spec_entry(
        &mut self,
        now: u64,
        mem: &MemorySystem,
        seq: Seq,
        addr: Addr,
        class: AccessClass,
        own_tag: Option<Seq>,
    ) {
        let store_tag = match own_tag {
            Some(t) => Some(t),
            None => self.sb.constraining_store(self.model, seq, class),
        };
        // acq: later loads must wait for this access to perform — exactly
        // when the model has a delay arc from this class to an ordinary
        // load (all loads under SC/PC, sync accesses under WC/RC).
        let acq = self.model.must_delay(class, AccessClass::LOAD);
        self.specbuf.push(SpecEntry {
            seq,
            line: mem.line_of(addr),
            addr,
            bound: None,
            acq,
            done: false,
            store_tag,
            class,
            forward_src: None,
        });
        if let Some(e) = self.rob.entry_mut(seq) {
            e.speculative = true;
        }
        self.stats.speculative_loads += 1;
        self.emit(
            now,
            seq,
            TraceKind::BufferEnter {
                buffer: BufferKind::Spec,
                addr,
            },
        );
    }

    // ------------------------------------------------------------------
    // Stage 7: store issue.
    // ------------------------------------------------------------------

    fn stage_store_issue(&mut self, now: u64, mem: &mut MemorySystem) {
        for seq in self.sb.issuable(self.model) {
            let e = self.sb.get(seq).expect("issuable entry exists");
            let (addr, value, rmw) = (e.addr, e.value, e.rmw);
            let line = mem.line_of(addr);
            if self.port_used {
                // Only merge-candidates may proceed without the port.
                match mem.probe(self.id, line) {
                    ProbeResult::Pending {
                        exclusive: true, ..
                    } => {}
                    _ => continue,
                }
            }
            let result = match rmw {
                Some(kind) => mem.issue_demand_rmw(self.id, addr, kind, value),
                None => mem.issue_demand_write(self.id, addr, value),
            };
            match result {
                IssueResult::Hit { token } => {
                    let old = mem.take_bound_value(token);
                    let old = rmw.map(|_| old.expect("RMW hit binds its old value"));
                    self.hit_completions.push((
                        now + mem.config().timings.hit,
                        HitCompletion::Store { seq, rmw_old: old },
                    ));
                    // Keep the entry in the buffer until completion but
                    // stop reissuing it.
                    if let Some(e) = self.sb.get_mut(seq) {
                        e.state = SbState::Issued { txn: TxnId(0) };
                        e.issued_at.get_or_insert(now);
                    }
                    self.port_used = true;
                    self.emit(
                        now,
                        seq,
                        TraceKind::StoreIssue {
                            addr,
                            outcome: IssueOutcome::Hit,
                        },
                    );
                }
                IssueResult::Miss { txn, token } | IssueResult::Merged { txn, token } => {
                    let merged = matches!(result, IssueResult::Merged { .. });
                    self.sb_txn
                        .entry(txn)
                        .or_default()
                        .push((seq, rmw.map(|_| token)));
                    if let Some(e) = self.sb.get_mut(seq) {
                        e.state = SbState::Issued { txn };
                        e.issued_at.get_or_insert(now);
                    }
                    if !merged {
                        self.port_used = true;
                    }
                    self.emit(
                        now,
                        seq,
                        TraceKind::StoreIssue {
                            addr,
                            outcome: if merged {
                                IssueOutcome::Merged
                            } else {
                                IssueOutcome::Miss
                            },
                        },
                    );
                }
                IssueResult::WaitForFill { .. } | IssueResult::NoMshr | IssueResult::SetFull => {
                    // The attempt occupied the cache; retry next cycle.
                    self.port_used = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 8: load issue.
    // ------------------------------------------------------------------

    fn stage_load_issue(&mut self, now: u64, mem: &mut MemorySystem) {
        let speculative = self.cfg.techniques.speculative_loads;
        let waiting: Vec<Seq> = self
            .load_queue
            .iter()
            .filter(|r| matches!(r.state, LoadState::Waiting))
            .map(|r| r.seq)
            .collect();
        for seq in waiting {
            let Some(req) = self.load_queue.iter().find(|r| r.seq == seq) else {
                continue;
            };
            let (addr, class, kind) = (req.addr, req.class, req.kind);
            // Conventional mode: the access may not even be *attempted*
            // until the model's delay arcs allow it to perform.
            if !speculative && !self.may_perform_now(seq, class) {
                break; // in-order: younger loads are equally blocked
            }
            // Dependence check against the store buffer (§4.2).
            match self.sb.forward(addr, seq) {
                ForwardResult::Value { seq: store, value } if matches!(kind, LoadKind::Plain) => {
                    self.complete_forward(now, seq, addr, store, value);
                    continue; // no port consumed
                }
                ForwardResult::Value { .. } | ForwardResult::Conflict { .. } => {
                    // An atomic's read cannot forward (its value must be
                    // observed at perform time), and a conflicting RMW
                    // blocks: wait for the store-buffer entry to drain.
                    if !speculative {
                        break;
                    }
                    continue;
                }
                ForwardResult::None => {}
            }
            let line = mem.line_of(addr);
            if self.port_used {
                // Port taken: only merge-candidates may still proceed.
                let ok = match mem.probe(self.id, line) {
                    ProbeResult::Pending { exclusive, .. } => match kind {
                        LoadKind::Plain => true,
                        LoadKind::RmwSplit | LoadKind::RmwConv { .. } => exclusive,
                    },
                    _ => false,
                };
                if !ok {
                    if !speculative {
                        break;
                    }
                    continue;
                }
            }
            let result = match kind {
                LoadKind::Plain => mem.issue_demand_read(self.id, addr),
                LoadKind::RmwSplit => mem.issue_demand_read_ex(self.id, addr),
                LoadKind::RmwConv { kind, operand } => {
                    mem.issue_demand_rmw(self.id, addr, kind, operand)
                }
            };
            let is_spec_entry = self.specbuf.get(seq).is_some();
            match result {
                IssueResult::Hit { token } => {
                    let value = mem
                        .take_bound_value(token)
                        .expect("hit binds its value at issue");
                    self.hit_completions.push((
                        now + mem.config().timings.hit,
                        HitCompletion::Load { seq, value },
                    ));
                    if let Some(r) = self.load_queue.iter_mut().find(|r| r.seq == seq) {
                        r.state = LoadState::Issued { token };
                        r.issued_at.get_or_insert(now);
                    }
                    self.port_used = true;
                    self.emit(
                        now,
                        seq,
                        TraceKind::LoadIssue {
                            addr,
                            outcome: IssueOutcome::Hit,
                            speculative: is_spec_entry,
                        },
                    );
                }
                IssueResult::Miss { txn, token } | IssueResult::Merged { txn, token } => {
                    let merged = matches!(result, IssueResult::Merged { .. });
                    self.awaiting.insert(token, seq);
                    self.txn_tokens.entry(txn).or_default().push(token);
                    if let Some(r) = self.load_queue.iter_mut().find(|r| r.seq == seq) {
                        r.state = LoadState::Issued { token };
                        r.issued_at.get_or_insert(now);
                    }
                    if !merged {
                        self.port_used = true;
                    }
                    self.emit(
                        now,
                        seq,
                        TraceKind::LoadIssue {
                            addr,
                            outcome: if merged {
                                IssueOutcome::Merged
                            } else {
                                IssueOutcome::Miss
                            },
                            speculative: is_spec_entry,
                        },
                    );
                }
                IssueResult::WaitForFill { .. } | IssueResult::NoMshr | IssueResult::SetFull => {
                    self.port_used = true;
                    if !speculative {
                        break;
                    }
                }
            }
        }
    }

    /// Completes a load via store-to-load forwarding: the value is this
    /// core's own pending store's, so it is immune to coherence hazards;
    /// the load performs when the store does.
    fn complete_forward(&mut self, now: u64, seq: Seq, addr: Addr, store: Seq, value: u64) {
        let Some(i) = self.load_queue.iter().position(|r| r.seq == seq) else {
            return;
        };
        self.load_queue.remove(i);
        self.emit(
            now,
            seq,
            TraceKind::BufferExit {
                buffer: BufferKind::Load,
                addr,
            },
        );
        self.rob.set_value(seq, value);
        if let Some(e) = self.rob.entry_mut(seq) {
            e.completed = true;
            e.speculative = false; // the value can never be wrong
        }
        self.forward_waiters.push((store, seq));
        self.specbuf.set_forward_src(seq, store);
        self.stats.loads_forwarded += 1;
        self.emit(
            now,
            seq,
            TraceKind::LoadIssue {
                addr,
                outcome: IssueOutcome::Forwarded,
                speculative: false,
            },
        );
    }

    /// The conventional implementation's gate: may an access of `class`
    /// perform given the incomplete earlier accesses?
    fn may_perform_now(&self, seq: Seq, class: AccessClass) -> bool {
        self.model.may_perform(class, &self.outstanding_before(seq))
    }

    /// Incomplete memory accesses older than `seq`: pure loads still in
    /// the reorder buffer plus everything in the store buffer (stores may
    /// outlive their ROB entries under WC/RC).
    fn outstanding_before(&self, seq: Seq) -> Outstanding {
        let mut o = Outstanding::none();
        for e in self.rob.iter() {
            if e.seq >= seq {
                break;
            }
            if !e.instr.is_mem() || e.in_store_buffer {
                continue;
            }
            if !e.mem_performed {
                if let Some(c) = AccessClass::of_instr(&e.instr) {
                    o.add(c);
                }
            }
        }
        for j in self.sb.iter() {
            if j.seq < seq {
                o.add(j.class);
            }
        }
        o
    }

    // ------------------------------------------------------------------
    // Stage 9: hardware prefetch (§3).
    // ------------------------------------------------------------------

    fn stage_prefetch(&mut self, now: u64, mem: &mut MemorySystem) {
        if self.port_used {
            return;
        }
        // Software prefetch hints (§6) are explicit instructions and work
        // with or without the hardware prefetch unit. One issue per free
        // port cycle; cache-filtered discards are free.
        while let Some(&(seq, addr, exclusive)) = self.sw_prefetches.front() {
            self.stats.prefetch_requests += 1;
            match mem.issue_prefetch(self.id, addr, exclusive) {
                PrefetchResult::Issued { .. } => {
                    self.sw_prefetches.pop_front();
                    self.port_used = true;
                    self.port_used_by_prefetch = true;
                    self.emit(now, seq, TraceKind::PrefetchIssue { addr, exclusive });
                    return;
                }
                PrefetchResult::AlreadyPresent
                | PrefetchResult::AlreadyPending
                | PrefetchResult::Unsupported => {
                    self.sw_prefetches.pop_front();
                }
                PrefetchResult::NoResource => return, // retry next cycle
            }
        }
        if !self.cfg.techniques.prefetch {
            return;
        }
        // Candidates: consistency-delayed store-buffer entries
        // (read-exclusive) and — in conventional mode — delayed loads
        // (read; read-exclusive for RMWs). Oldest first.
        let mut cands: Vec<(Seq, Addr, bool)> = self
            .sb
            .prefetch_candidates(self.model)
            .into_iter()
            .map(|(s, a)| (s, a, true))
            .collect();
        if !self.cfg.techniques.speculative_loads {
            for r in &self.load_queue {
                if matches!(r.state, LoadState::Waiting)
                    && !r.prefetch_sent
                    && !self.may_perform_now(r.seq, r.class)
                {
                    let exclusive = !matches!(r.kind, LoadKind::Plain);
                    cands.push((r.seq, r.addr, exclusive));
                }
            }
        }
        cands.sort_unstable_by_key(|(s, _, _)| *s);
        for (seq, addr, exclusive) in cands {
            self.stats.prefetch_requests += 1;
            match mem.issue_prefetch(self.id, addr, exclusive) {
                PrefetchResult::Issued { .. } => {
                    self.mark_prefetch_sent(seq);
                    self.port_used = true;
                    self.port_used_by_prefetch = true;
                    self.emit(now, seq, TraceKind::PrefetchIssue { addr, exclusive });
                    break;
                }
                PrefetchResult::AlreadyPresent
                | PrefetchResult::AlreadyPending
                | PrefetchResult::Unsupported => {
                    // Discarded by the cache check (§3.2); don't retry,
                    // and keep scanning — discards are port-free.
                    self.mark_prefetch_sent(seq);
                }
                PrefetchResult::NoResource => break, // retry next cycle
            }
        }
    }

    fn mark_prefetch_sent(&mut self, seq: Seq) {
        if let Some(e) = self.sb.get_mut(seq) {
            e.prefetch_sent = true;
        }
        if let Some(r) = self.load_queue.iter_mut().find(|r| r.seq == seq) {
            r.prefetch_sent = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Techniques;
    use mcsim_isa::reg::{R1, R2, R3, R4};
    use mcsim_isa::ProgramBuilder;
    use mcsim_mem::MemConfig;

    fn run(
        model: Model,
        techniques: Techniques,
        program: Program,
        setup: impl FnOnce(&mut MemorySystem),
    ) -> (u64, Processor, MemorySystem) {
        let mut mem = MemorySystem::new(MemConfig::paper(), 1);
        setup(&mut mem);
        let mut p = Processor::new(0, ProcConfig::paper(techniques), model, program);
        for cycle in 0..100_000 {
            mem.tick(cycle);
            p.tick(cycle, &mut mem);
            if p.halted() {
                return (p.stats().halted_at, p, mem);
            }
        }
        panic!("processor did not halt");
    }

    const L: u64 = 0x40; // lock
    const A: u64 = 0x1000;
    const B: u64 = 0x1100;

    #[test]
    fn straight_line_loads_and_alu() {
        let prog = ProgramBuilder::new("t")
            .load(R1, A)
            .alu(R2, mcsim_isa::AluOp::Add, R1, 5u64)
            .halt()
            .build()
            .unwrap();
        let (cycles, p, _) = run(Model::Sc, Techniques::NONE, prog, |m| {
            m.write_initial(Addr(A), 37);
        });
        assert_eq!(p.regfile().read(R2), 42);
        assert!(cycles >= 100, "one miss minimum");
        assert_eq!(p.stats().loads, 1);
    }

    #[test]
    fn store_then_load_forwards() {
        let prog = ProgramBuilder::new("t")
            .store(A, 7u64)
            .load(R1, A)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let (_, p, mem) = run(model, t, prog.clone(), |_| {});
                assert_eq!(p.regfile().read(R1), 7, "{model}/{t}");
                assert_eq!(mem.read_coherent(Addr(A)), 7, "{model}/{t}");
            }
        }
    }

    #[test]
    fn rmw_test_and_set_returns_old_and_writes_one() {
        let prog = ProgramBuilder::new("t").lock(L, R1).halt().build().unwrap();
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let (_, p, mem) = run(model, t, prog.clone(), |_| {});
                assert_eq!(p.regfile().read(R1), 0, "{model}/{t}: lock was free");
                assert_eq!(mem.read_coherent(Addr(L)), 1, "{model}/{t}: now held");
                assert_eq!(p.stats().branch_mispredicts, 0, "{model}/{t}");
            }
        }
    }

    #[test]
    fn dependent_load_chain() {
        // r2 = mem[0x2000 + mem[A]*8]
        let prog = ProgramBuilder::new("t")
            .load(R1, A)
            .load(R2, mcsim_isa::AddrExpr::indexed(0x2000, R1, 8))
            .halt()
            .build()
            .unwrap();
        let (_, p, _) = run(Model::Sc, Techniques::BOTH, prog, |m| {
            m.write_initial(Addr(A), 3);
            m.write_initial(Addr(0x2000 + 24), 99);
        });
        assert_eq!(p.regfile().read(R2), 99);
    }

    #[test]
    fn mispredicted_branch_squashes_and_refetches() {
        // Branch on a loaded value; static hint predicts the wrong way.
        let mut b = ProgramBuilder::new("t");
        let skip = b.label();
        let prog = b
            .load(R1, A)
            .branch(
                mcsim_isa::CmpOp::Eq,
                R1,
                1u64,
                skip,
                mcsim_isa::BranchHint::NotTaken,
            )
            .store(B, 5u64) // squashed path
            .bind(skip)
            .store(B, 9u64)
            .halt()
            .build()
            .unwrap();
        let (_, p, mem) = run(Model::Rc, Techniques::BOTH, prog, |m| {
            m.write_initial(Addr(A), 1); // branch actually taken
        });
        assert_eq!(p.stats().branch_mispredicts, 1);
        assert_eq!(
            mem.read_coherent(Addr(B)),
            9,
            "wrong-path store never issued"
        );
    }

    #[test]
    fn spin_lock_contended_by_initial_value_spins_until_free() {
        // Lock starts held (1); no one releases it... so instead test a
        // flag spin: flag starts 0, we poll it, but the program itself
        // sets it first — simplest self-contained spin exercise:
        // store flag=1; spin_until flag==1 must exit on first try via
        // forwarding.
        let prog = ProgramBuilder::new("t")
            .store(0x3000u64, 1u64)
            .spin_until(0x3000, 1, R3)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL_EXTENDED {
            let (_, p, _) = run(model, Techniques::BOTH, prog.clone(), |_| {});
            assert_eq!(p.regfile().read(R3), 1, "{model}");
        }
    }

    #[test]
    fn speculation_stats_recorded() {
        let prog = ProgramBuilder::new("t")
            .load(R1, A)
            .load(R2, B)
            .halt()
            .build()
            .unwrap();
        let (_, p, _) = run(Model::Sc, Techniques::SPECULATION, prog, |_| {});
        assert_eq!(p.stats().speculative_loads, 2);
        assert_eq!(p.stats().rollbacks, 0);
    }

    #[test]
    fn spec_loads_pipeline_under_sc() {
        // Two independent load misses under SC: conventional serializes
        // (~200), speculation pipelines (~101).
        let prog = ProgramBuilder::new("t")
            .load(R1, A)
            .load(R2, B)
            .halt()
            .build()
            .unwrap();
        let (base, ..) = run(Model::Sc, Techniques::NONE, prog.clone(), |_| {});
        let (spec, ..) = run(Model::Sc, Techniques::SPECULATION, prog, |_| {});
        assert!(base >= 200, "conventional SC serializes: {base}");
        assert!(spec <= 105, "speculation pipelines: {spec}");
    }

    #[test]
    fn prefetch_pipelines_sc_stores() {
        let prog = ProgramBuilder::new("t")
            .store(A, 1u64)
            .store(B, 2u64)
            .halt()
            .build()
            .unwrap();
        let (base, ..) = run(Model::Sc, Techniques::NONE, prog.clone(), |_| {});
        let (pf, _, mem) = run(Model::Sc, Techniques::PREFETCH, prog, |_| {});
        assert!(base >= 200, "conventional SC stores serialize: {base}");
        assert!(pf <= 105, "prefetched stores pipeline: {pf}");
        assert!(mem.stats().prefetches_issued >= 1);
        assert_eq!(mem.read_coherent(Addr(B)), 2);
    }

    #[test]
    fn rc_pipelines_without_techniques() {
        let prog = ProgramBuilder::new("t")
            .store(A, 1u64)
            .store(B, 2u64)
            .halt()
            .build()
            .unwrap();
        let (rc, ..) = run(Model::Rc, Techniques::NONE, prog, |_| {});
        assert!(rc <= 105, "RC pipelines ordinary stores: {rc}");
    }

    #[test]
    fn width_limited_frontend_still_correct() {
        let prog = ProgramBuilder::new("t")
            .load(R1, A)
            .alu(R2, mcsim_isa::AluOp::Add, R1, 5u64)
            .store(B, R2)
            .halt()
            .build()
            .unwrap();
        for (rob, width) in [(2usize, 1usize), (4, 1), (8, 2)] {
            let mut mem = MemorySystem::new(MemConfig::paper(), 1);
            mem.write_initial(Addr(A), 10);
            let cfg = ProcConfig::with_window(Techniques::BOTH, rob, width);
            let mut p = Processor::new(0, cfg, Model::Sc, prog.clone());
            for cycle in 0..50_000 {
                mem.tick(cycle);
                p.tick(cycle, &mut mem);
                if p.halted() {
                    break;
                }
            }
            assert!(p.halted(), "rob={rob} width={width}");
            assert_eq!(mem.read_coherent(Addr(B)), 15, "rob={rob} width={width}");
        }
    }

    #[test]
    fn commit_width_limits_retirement_rate() {
        let mut b = ProgramBuilder::new("t");
        for _ in 0..20 {
            b = b.alu(R1, mcsim_isa::AluOp::Add, R1, 1u64);
        }
        let prog = b.halt().build().unwrap();
        let run_with_commit = |w: Option<usize>| {
            let mut mem = MemorySystem::new(MemConfig::paper(), 1);
            let mut cfg = ProcConfig::paper(Techniques::NONE);
            cfg.commit_width = w;
            let mut p = Processor::new(0, cfg, Model::Sc, prog.clone());
            for cycle in 0..10_000 {
                mem.tick(cycle);
                p.tick(cycle, &mut mem);
                if p.halted() {
                    return p.stats().halted_at;
                }
            }
            panic!("did not halt");
        };
        let narrow = run_with_commit(Some(1));
        let wide = run_with_commit(None);
        assert!(narrow >= wide, "narrow commit cannot be faster");
        assert!(narrow >= 20, "1-wide commit needs >= 20 cycles for 20 ALUs");
    }

    #[test]
    fn software_prefetch_hides_store_latency_without_hw_unit() {
        let prog = ProgramBuilder::new("t")
            .prefetch(A, true)
            .prefetch(B, true)
            .alu_lat(R1, mcsim_isa::AluOp::Add, 0u64, 0u64, 99)
            .store(A, 1u64)
            .store(B, 2u64)
            .halt()
            .build()
            .unwrap();
        let (cycles, _, mem) = run(Model::Sc, Techniques::NONE, prog, |_| {});
        assert!(
            cycles < 150,
            "prefetched stores complete as hits after the delay: {cycles}"
        );
        assert_eq!(mem.stats().prefetches_issued, 2);
        assert_eq!(mem.read_coherent(Addr(B)), 2);
    }

    #[test]
    fn software_prefetch_is_semantically_inert() {
        let with = ProgramBuilder::new("t")
            .prefetch(A, false)
            .load(R1, A)
            .halt()
            .build()
            .unwrap();
        let (_, p, _) = run(Model::Sc, Techniques::NONE, with, |m| {
            m.write_initial(Addr(A), 33);
        });
        assert_eq!(p.regfile().read(R1), 33);
        assert_eq!(p.stats().loads, 1, "prefetch does not count as a load");
    }

    #[test]
    fn rcsc_behaves_between_wc_and_rc() {
        // acquire after release: RCsc delays it, RCpc does not.
        let prog = ProgramBuilder::new("t")
            .store_release(A, 1u64)
            .load_acquire(R1, B)
            .halt()
            .build()
            .unwrap();
        let (rcsc, ..) = run(Model::RcSc, Techniques::NONE, prog.clone(), |_| {});
        let (rcpc, ..) = run(Model::Rc, Techniques::NONE, prog, |_| {});
        assert!(
            rcsc > rcpc,
            "RCsc serializes release->acquire ({rcsc}) vs RCpc ({rcpc})"
        );
    }

    #[test]
    fn all_model_technique_combinations_run_and_agree_on_values() {
        let prog = ProgramBuilder::new("t")
            .lock(L, R1)
            .load(R2, A)
            .alu(R3, mcsim_isa::AluOp::Add, R2, 1u64)
            .store(B, R3)
            .load(R4, B)
            .unlock(L)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL_EXTENDED {
            for t in Techniques::ALL {
                let (_, p, mem) = run(model, t, prog.clone(), |m| {
                    m.write_initial(Addr(A), 10);
                });
                assert_eq!(p.regfile().read(R4), 11, "{model}/{t}");
                assert_eq!(mem.read_coherent(Addr(B)), 11, "{model}/{t}");
                assert_eq!(mem.read_coherent(Addr(L)), 0, "{model}/{t}: unlocked");
            }
        }
    }
}
