//! Processor configuration and the technique switches.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the paper's two techniques are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Techniques {
    /// §3: hardware-controlled non-binding prefetch for consistency-
    /// delayed accesses (read prefetch for loads, read-exclusive for
    /// stores and RMWs).
    pub prefetch: bool,
    /// §4: speculative execution for load accesses, with the
    /// speculative-load buffer providing detection and correction.
    pub speculative_loads: bool,
}

impl Techniques {
    /// Conventional implementation: both techniques off.
    pub const NONE: Techniques = Techniques {
        prefetch: false,
        speculative_loads: false,
    };
    /// Prefetch only.
    pub const PREFETCH: Techniques = Techniques {
        prefetch: true,
        speculative_loads: false,
    };
    /// Speculative loads only.
    pub const SPECULATION: Techniques = Techniques {
        prefetch: false,
        speculative_loads: true,
    };
    /// Both techniques — the paper's full proposal (§4.3 combines
    /// speculative loads with prefetch for stores).
    pub const BOTH: Techniques = Techniques {
        prefetch: true,
        speculative_loads: true,
    };

    /// All four design points, in ablation order.
    pub const ALL: [Techniques; 4] = [
        Techniques::NONE,
        Techniques::PREFETCH,
        Techniques::SPECULATION,
        Techniques::BOTH,
    ];

    /// Short label for report rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match (self.prefetch, self.speculative_loads) {
            (false, false) => "base",
            (true, false) => "prefetch",
            (false, true) => "spec",
            (true, true) => "pf+spec",
        }
    }
}

impl fmt::Display for Techniques {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Microarchitectural parameters of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcConfig {
    /// Technique switches.
    pub techniques: Techniques,
    /// Reorder-buffer capacity (the instruction lookahead window; §3.2
    /// notes prefetching is limited by it).
    pub rob_size: usize,
    /// Instructions fetched/decoded per cycle. `None` = ideal frontend
    /// (the paper's walk-throughs assume instructions are already decoded
    /// and buffered: "the instructions are assumed to be decoded and
    /// placed in the reorder buffer", §4.3).
    pub fetch_width: Option<usize>,
    /// Instructions retired per cycle (`None` = unbounded).
    pub commit_width: Option<usize>,
    /// Extra cycles to compute an effective address once its operands are
    /// ready. The paper ignores this delay ("we will ignore the delay due
    /// to address calculation", §3.3), so the default is 0.
    pub addr_calc_latency: u64,
    /// Cycles between a squash and the first refetched instruction
    /// entering the reorder buffer.
    pub refetch_penalty: u64,
    /// Forward store-buffer data to later same-address loads (dependence
    /// checking on the store buffer, §4.2). Always safe; disabling forces
    /// such loads to wait for the store to perform.
    pub store_forwarding: bool,
    /// Footnote 2 ablation: under the *update* protocol, update hazards
    /// carry the written word and value, so the two provably-safe cases —
    /// false sharing (a different word of the line) and a same-value
    /// write — can be discriminated instead of conservatively rolling
    /// back. `false` (default) keeps the paper's conservative behavior.
    pub exact_update_check: bool,
}

impl ProcConfig {
    /// The paper-calibrated configuration: ideal frontend, 64-entry ROB,
    /// zero address-calculation delay.
    #[must_use]
    pub fn paper(techniques: Techniques) -> Self {
        ProcConfig {
            techniques,
            rob_size: 64,
            fetch_width: None,
            commit_width: None,
            addr_calc_latency: 0,
            refetch_penalty: 1,
            store_forwarding: true,
            exact_update_check: false,
        }
    }

    /// A finite-width frontend variant (for lookahead sensitivity
    /// experiments, E13).
    #[must_use]
    pub fn with_window(techniques: Techniques, rob_size: usize, width: usize) -> Self {
        ProcConfig {
            rob_size,
            fetch_width: Some(width),
            ..Self::paper(techniques)
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// If the ROB is empty or a width is zero.
    pub fn validate(&self) {
        assert!(
            self.rob_size >= 2,
            "reorder buffer needs at least 2 entries"
        );
        if let Some(w) = self.fetch_width {
            assert!(w > 0, "fetch width must be positive");
        }
        if let Some(w) = self.commit_width {
            assert!(w > 0, "commit width must be positive");
        }
    }
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig::paper(Techniques::BOTH)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(Techniques::NONE.label(), "base");
        assert_eq!(Techniques::PREFETCH.label(), "prefetch");
        assert_eq!(Techniques::SPECULATION.label(), "spec");
        assert_eq!(Techniques::BOTH.label(), "pf+spec");
        assert_eq!(Techniques::ALL.len(), 4);
    }

    #[test]
    fn paper_config_is_ideal() {
        let c = ProcConfig::paper(Techniques::BOTH);
        c.validate();
        assert_eq!(c.fetch_width, None);
        assert_eq!(c.addr_calc_latency, 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_rob_rejected() {
        ProcConfig {
            rob_size: 1,
            ..ProcConfig::default()
        }
        .validate();
    }
}
