//! Per-core statistics.

use serde::{Deserialize, Serialize};

pub use mcsim_guard::LatencyHistogram;

/// Per-cause attribution of every cycle a core was accounted for — the
/// paper's Section 5 stacked execution-time breakdown (busy time vs.
/// read-miss, write-miss, and acquire stall), extended with the
/// speculation-specific overheads this simulator models.
///
/// Exactly one component is incremented per core tick, classified by what
/// blocked retirement at the reorder-buffer head, so the components sum
/// to the cycles the core ran ([`CycleBreakdown::total`]); `mcsim-guard`
/// checks that identity as a hard invariant
/// (`InvariantKind::CycleBreakdownSum`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles in which at least one instruction retired, or the ROB head
    /// was an ALU/branch instruction still executing — the paper's "busy
    /// time".
    pub busy: u64,
    /// Cycles the ROB head was an ordinary load (or the read half of a
    /// plain RMW) waiting on memory — read-miss stall.
    pub read_stall: u64,
    /// Cycles the ROB head was a store (or the core was draining its
    /// store buffer) waiting on memory — write/store-buffer stall.
    pub write_stall: u64,
    /// Cycles the ROB head was an acquire-flavored access (acquire load
    /// or acquire RMW) waiting on memory — acquire/synchronization stall.
    pub acquire_stall: u64,
    /// Cycles the frontend was refetching after a squash (speculative-load
    /// rollback or branch misprediction) — correction overhead.
    pub rollback_stall: u64,
    /// Cycles the ROB was empty with nothing to refetch — frontend-starved
    /// (width-limited fetch, or the tail after `HALT` fetched).
    pub fetch_stall: u64,
}

impl CycleBreakdown {
    /// Sum of all components — must equal the cycles the core was
    /// accounted for.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.busy
            + self.read_stall
            + self.write_stall
            + self.acquire_stall
            + self.rollback_stall
            + self.fetch_stall
    }

    /// Component-wise sum (machine totals).
    pub fn merge(&mut self, o: &CycleBreakdown) {
        self.busy += o.busy;
        self.read_stall += o.read_stall;
        self.write_stall += o.write_stall;
        self.acquire_stall += o.acquire_stall;
        self.rollback_stall += o.rollback_stall;
        self.fetch_stall += o.fetch_stall;
    }

    /// `(label, count)` pairs in render order, stall causes first-to-last
    /// as the paper stacks them.
    #[must_use]
    pub fn components(&self) -> [(&'static str, u64); 6] {
        [
            ("busy", self.busy),
            ("read", self.read_stall),
            ("write", self.write_stall),
            ("acquire", self.acquire_stall),
            ("rollback", self.rollback_stall),
            ("fetch", self.fetch_stall),
        ]
    }
}

/// Counters kept by one core across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Instructions committed (retired from the reorder buffer).
    pub committed: u64,
    /// Committed loads (including RMWs).
    pub loads: u64,
    /// Committed stores (including RMWs).
    pub stores: u64,
    /// Committed atomic read-modify-writes.
    pub rmws: u64,
    /// Loads whose value came from store-to-load forwarding.
    pub loads_forwarded: u64,
    /// Loads issued speculatively (entered the speculative-load buffer).
    pub speculative_loads: u64,
    /// Detection hits that required a full rollback (value had been
    /// consumed — the branch-mispredict-style correction).
    pub rollbacks: u64,
    /// Detection hits fixed by reissuing the load only (value not yet
    /// consumed).
    pub reissues: u64,
    /// Update hazards ignored by the exact-update check (false sharing or
    /// same-value writes — footnote 2's provably-safe cases).
    pub hazards_filtered: u64,
    /// Instructions squashed by speculative-load rollbacks.
    pub squashed_by_spec: u64,
    /// Instructions squashed by branch mispredictions.
    pub squashed_by_branch: u64,
    /// Branch instructions resolved.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Prefetches the prefetch unit requested (before cache filtering).
    pub prefetch_requests: u64,
    /// Cycles in which no demand memory operation issued although at
    /// least one was waiting in the load queue or store buffer — whether
    /// the cache port sat idle (consistency delay arcs) or was consumed
    /// by a prefetch. A coarse issue-side pressure gauge; the per-cause
    /// retirement-side view is [`CycleBreakdown`].
    pub stall_cycles: u64,
    /// Cycle the core halted (all work drained).
    pub halted_at: u64,
    /// Per-cause attribution of every accounted cycle (one component
    /// incremented per tick).
    pub breakdown: CycleBreakdown,
    /// Issue-to-perform latency of demand loads (excluding forwarded).
    pub load_latency: LatencyHistogram,
    /// Issue-to-perform latency of stores and RMW atomics.
    pub store_latency: LatencyHistogram,
}

impl ProcStats {
    /// Rollback rate per speculative load (0 if none).
    #[must_use]
    pub fn rollback_rate(&self) -> f64 {
        if self.speculative_loads == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.speculative_loads as f64
        }
    }

    /// Branch misprediction rate (0 if no branches).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Merges another core's counters into this one (machine totals).
    pub fn merge(&mut self, o: &ProcStats) {
        self.committed += o.committed;
        self.loads += o.loads;
        self.stores += o.stores;
        self.rmws += o.rmws;
        self.loads_forwarded += o.loads_forwarded;
        self.speculative_loads += o.speculative_loads;
        self.rollbacks += o.rollbacks;
        self.reissues += o.reissues;
        self.hazards_filtered += o.hazards_filtered;
        self.squashed_by_spec += o.squashed_by_spec;
        self.squashed_by_branch += o.squashed_by_branch;
        self.branches += o.branches;
        self.branch_mispredicts += o.branch_mispredicts;
        self.prefetch_requests += o.prefetch_requests;
        self.stall_cycles += o.stall_cycles;
        self.halted_at = self.halted_at.max(o.halted_at);
        self.breakdown.merge(&o.breakdown);
        self.load_latency.merge(&o.load_latency);
        self.store_latency.merge(&o.store_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = ProcStats {
            speculative_loads: 4,
            rollbacks: 1,
            branches: 10,
            branch_mispredicts: 2,
            ..Default::default()
        };
        assert!((s.rollback_rate() - 0.25).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
        assert_eq!(ProcStats::default().rollback_rate(), 0.0);
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(100);
        h.record(1 << 30); // clamps into the last bucket
        assert_eq!(h.count(), 6);
        assert_eq!(h.count_up_to(0), 2, "latency-0 samples share bucket 0");
        assert_eq!(h.count_up_to(1), 2);
        assert_eq!(h.count_up_to(3), 4);
        let nz: Vec<_> = h.nonzero().collect();
        assert!(nz.contains(&(0, 2)), "bucket 0's lower bound is 0: {nz:?}");
        assert!(nz.contains(&(2, 2)));
        assert!(nz.contains(&(64, 1)));
        let mut h2 = LatencyHistogram::new();
        h2.record(100);
        h.merge(&h2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn breakdown_total_and_merge() {
        let mut a = CycleBreakdown {
            busy: 3,
            read_stall: 2,
            write_stall: 1,
            acquire_stall: 4,
            rollback_stall: 5,
            fetch_stall: 6,
        };
        assert_eq!(a.total(), 21);
        let b = CycleBreakdown {
            busy: 1,
            fetch_stall: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total(), 24);
        assert_eq!(a.busy, 4);
        assert_eq!(a.fetch_stall, 8);
        let sum: u64 = a.components().iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, a.total());
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ProcStats {
            committed: 5,
            halted_at: 10,
            ..Default::default()
        };
        let b = ProcStats {
            committed: 7,
            halted_at: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.committed, 12);
        assert_eq!(a.halted_at, 10);
    }
}
