//! Per-core statistics.

use serde::{Deserialize, Serialize};

/// A power-of-two-bucketed latency histogram: bucket `i` counts samples
/// with `2^i <= latency < 2^(i+1)` (bucket 0 also takes latency 0 and 1).
/// Cheap, `Copy`, and good enough to see the paper's effects — hit/miss
/// bimodality, and how the techniques move mass from the serialized tail
/// into the overlapped head.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; 20],
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 20] }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: u64) {
        let b = (64 - latency.max(1).leading_zeros() - 1) as usize;
        self.buckets[b.min(self.buckets.len() - 1)] += 1;
    }

    /// Total samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Samples at or below `latency` (bucket-granular upper bound).
    #[must_use]
    pub fn count_up_to(&self, latency: u64) -> u64 {
        let b = (64 - latency.max(1).leading_zeros() - 1) as usize;
        self.buckets[..=b.min(self.buckets.len() - 1)].iter().sum()
    }

    /// `(lower_bound, count)` for each non-empty bucket.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Merges another histogram.
    pub fn merge(&mut self, o: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Counters kept by one core across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Instructions committed (retired from the reorder buffer).
    pub committed: u64,
    /// Committed loads (including RMWs).
    pub loads: u64,
    /// Committed stores (including RMWs).
    pub stores: u64,
    /// Committed atomic read-modify-writes.
    pub rmws: u64,
    /// Loads whose value came from store-to-load forwarding.
    pub loads_forwarded: u64,
    /// Loads issued speculatively (entered the speculative-load buffer).
    pub speculative_loads: u64,
    /// Detection hits that required a full rollback (value had been
    /// consumed — the branch-mispredict-style correction).
    pub rollbacks: u64,
    /// Detection hits fixed by reissuing the load only (value not yet
    /// consumed).
    pub reissues: u64,
    /// Update hazards ignored by the exact-update check (false sharing or
    /// same-value writes — footnote 2's provably-safe cases).
    pub hazards_filtered: u64,
    /// Instructions squashed by speculative-load rollbacks.
    pub squashed_by_spec: u64,
    /// Instructions squashed by branch mispredictions.
    pub squashed_by_branch: u64,
    /// Branch instructions resolved.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Prefetches the prefetch unit requested (before cache filtering).
    pub prefetch_requests: u64,
    /// Cycles the core could not issue any memory operation although at
    /// least one was waiting (consistency stall measure).
    pub stall_cycles: u64,
    /// Cycle the core halted (all work drained).
    pub halted_at: u64,
    /// Issue-to-perform latency of demand loads (excluding forwarded).
    pub load_latency: LatencyHistogram,
    /// Issue-to-perform latency of stores and RMW atomics.
    pub store_latency: LatencyHistogram,
}

impl ProcStats {
    /// Rollback rate per speculative load (0 if none).
    #[must_use]
    pub fn rollback_rate(&self) -> f64 {
        if self.speculative_loads == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.speculative_loads as f64
        }
    }

    /// Branch misprediction rate (0 if no branches).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Merges another core's counters into this one (machine totals).
    pub fn merge(&mut self, o: &ProcStats) {
        self.committed += o.committed;
        self.loads += o.loads;
        self.stores += o.stores;
        self.rmws += o.rmws;
        self.loads_forwarded += o.loads_forwarded;
        self.speculative_loads += o.speculative_loads;
        self.rollbacks += o.rollbacks;
        self.reissues += o.reissues;
        self.hazards_filtered += o.hazards_filtered;
        self.squashed_by_spec += o.squashed_by_spec;
        self.squashed_by_branch += o.squashed_by_branch;
        self.branches += o.branches;
        self.branch_mispredicts += o.branch_mispredicts;
        self.prefetch_requests += o.prefetch_requests;
        self.stall_cycles += o.stall_cycles;
        self.halted_at = self.halted_at.max(o.halted_at);
        self.load_latency.merge(&o.load_latency);
        self.store_latency.merge(&o.store_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = ProcStats {
            speculative_loads: 4,
            rollbacks: 1,
            branches: 10,
            branch_mispredicts: 2,
            ..Default::default()
        };
        assert!((s.rollback_rate() - 0.25).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
        assert_eq!(ProcStats::default().rollback_rate(), 0.0);
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(100);
        h.record(1 << 30); // clamps into the last bucket
        assert_eq!(h.count(), 6);
        assert_eq!(h.count_up_to(1), 2);
        assert_eq!(h.count_up_to(3), 4);
        let nz: Vec<_> = h.nonzero().collect();
        assert!(nz.contains(&(1, 2)));
        assert!(nz.contains(&(2, 2)));
        assert!(nz.contains(&(64, 1)));
        let mut h2 = LatencyHistogram::new();
        h2.record(100);
        h.merge(&h2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = ProcStats {
            committed: 5,
            halted_at: 10,
            ..Default::default()
        };
        let b = ProcStats {
            committed: 7,
            halted_at: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.committed, 12);
        assert_eq!(a.halted_at, 10);
    }
}
