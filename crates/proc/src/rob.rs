//! The reorder buffer (Smith & Pleszkun [22]; Johnson [11]).
//!
//! Per §4.2 of the paper, the reorder buffer serves three roles:
//! eliminating storage conflicts through register renaming, buffering
//! uncommitted results so execution may proceed past unresolved branches,
//! and providing precise interrupts via in-order retirement. The same
//! squash machinery recovers from branch misprediction *and* from
//! incorrectly speculated loads — the paper's correction mechanism reuses
//! it wholesale.

use mcsim_isa::reg::RegFile;
use mcsim_isa::{Addr, Instr, Operand, RegId, NUM_REGS};
use std::collections::VecDeque;

/// Monotonically increasing instruction sequence number (unique per
/// core). Doubles as the rename tag.
pub type Seq = u64;

/// A source operand slot: resolved, or waiting on a producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Value available.
    Ready(u64),
    /// Waiting for the instruction with this sequence number.
    Waiting(Seq),
}

impl Src {
    /// The value if ready.
    #[must_use]
    pub fn value(&self) -> Option<u64> {
        match self {
            Src::Ready(v) => Some(*v),
            Src::Waiting(_) => None,
        }
    }
}

/// One in-flight instruction.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Sequence number (rename tag).
    pub seq: Seq,
    /// Program counter it was fetched from.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
    /// First operand: address-index register (memory ops) or left ALU /
    /// branch operand. `None` when the instruction has no such operand.
    pub src1: Option<Src>,
    /// Second operand: store/RMW data or right ALU / branch operand.
    pub src2: Option<Src>,
    /// Result value (register writers; loads once data returns).
    pub value: Option<u64>,
    /// Cycle an ALU op finishes executing (scheduled by the core).
    pub finishes_at: Option<u64>,
    /// Effective address, once computed by the address unit.
    pub addr: Option<Addr>,
    /// Memory op handed to the load/store unit (address unit done).
    pub dispatched: bool,
    /// A store-buffer entry exists (or existed) for this instruction, so
    /// the store buffer — not this entry — tracks its completion.
    pub in_store_buffer: bool,
    /// Memory access performed (§2's completion notion).
    pub mem_performed: bool,
    /// Load still speculative (its speculative-load-buffer entry has not
    /// retired) — blocks commit so the register file stays precise.
    pub speculative: bool,
    /// Execution finished; the entry may retire when it reaches the head
    /// (memory ops also need their per-model completion conditions).
    pub completed: bool,
    /// Branch prediction made at fetch.
    pub predicted_taken: Option<bool>,
    /// Branch has been resolved (compared against prediction).
    pub resolved: bool,
}

impl RobEntry {
    /// Whether both present operands are resolved.
    #[must_use]
    pub fn srcs_ready(&self) -> bool {
        self.src1.is_none_or(|s| s.value().is_some())
            && self.src2.is_none_or(|s| s.value().is_some())
    }

    /// src1's value (panics if absent/unready — callers check first).
    #[must_use]
    pub fn src1_value(&self) -> u64 {
        self.src1
            .expect("src1 present")
            .value()
            .expect("src1 ready")
    }

    /// src2's value (panics if absent/unready — callers check first).
    #[must_use]
    pub fn src2_value(&self) -> u64 {
        self.src2
            .expect("src2 present")
            .value()
            .expect("src2 ready")
    }
}

/// The reorder buffer plus the rename table and architectural register
/// file it guards.
#[derive(Debug)]
pub struct Rob {
    capacity: usize,
    entries: VecDeque<RobEntry>,
    next_seq: Seq,
    /// Architectural register → most recent in-flight producer.
    rename: [Option<Seq>; NUM_REGS],
    regfile: RegFile,
}

impl Rob {
    /// An empty reorder buffer.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Rob {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            next_seq: 0,
            rename: [None; NUM_REGS],
            regfile: RegFile::new(),
        }
    }

    /// Whether another instruction fits.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The committed architectural register file.
    #[must_use]
    pub fn regfile(&self) -> &RegFile {
        &self.regfile
    }

    /// Reads an operand through the rename table: the youngest in-flight
    /// producer's value (or a tag for it), else the architectural file.
    #[must_use]
    pub fn read_reg(&self, r: RegId) -> Src {
        match self.rename[r.index()] {
            Some(seq) => match self.entry(seq).and_then(|e| e.value) {
                Some(v) => Src::Ready(v),
                None => Src::Waiting(seq),
            },
            None => Src::Ready(self.regfile.read(r)),
        }
    }

    fn resolve_operand(&self, op: &Operand) -> Src {
        match op {
            Operand::Imm(v) => Src::Ready(*v),
            Operand::Reg(r) => self.read_reg(*r),
        }
    }

    /// Allocates an entry for `instr` fetched from `pc`, resolving its
    /// operands through the rename table and claiming the destination
    /// register. Returns `None` when full.
    pub fn push(&mut self, pc: u32, instr: Instr) -> Option<Seq> {
        if !self.has_space() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let (src1, src2) = match &instr {
            Instr::Load { addr, .. } => (addr.dep().map(|r| self.read_reg(r)), None),
            Instr::Store { addr, src, .. } | Instr::Rmw { addr, src, .. } => (
                addr.dep().map(|r| self.read_reg(r)),
                Some(self.resolve_operand(src)),
            ),
            Instr::Alu { lhs, rhs, .. } | Instr::Branch { lhs, rhs, .. } => (
                Some(self.resolve_operand(lhs)),
                Some(self.resolve_operand(rhs)),
            ),
            Instr::Prefetch { addr, .. } => (addr.dep().map(|r| self.read_reg(r)), None),
            Instr::Jump { .. } | Instr::Nop | Instr::Halt => (None, None),
        };
        let completed = matches!(instr, Instr::Jump { .. } | Instr::Nop | Instr::Halt);
        if let Some(dst) = instr.dst() {
            self.rename[dst.index()] = Some(seq);
        }
        self.entries.push_back(RobEntry {
            seq,
            pc,
            instr,
            src1,
            src2,
            value: None,
            finishes_at: None,
            addr: None,
            dispatched: false,
            in_store_buffer: false,
            mem_performed: false,
            speculative: false,
            completed,
            predicted_taken: None,
            resolved: false,
        });
        Some(seq)
    }

    fn index_of(&self, seq: Seq) -> Option<usize> {
        // Sequence numbers are strictly increasing but not contiguous
        // after a squash+refetch, so binary-search by seq.
        self.entries.binary_search_by_key(&seq, |e| e.seq).ok()
    }

    /// The entry with sequence `seq`, if still in flight.
    #[must_use]
    pub fn entry(&self, seq: Seq) -> Option<&RobEntry> {
        self.index_of(seq).map(|i| &self.entries[i])
    }

    /// Mutable access to an in-flight entry.
    pub fn entry_mut(&mut self, seq: Seq) -> Option<&mut RobEntry> {
        self.index_of(seq).map(move |i| &mut self.entries[i])
    }

    /// The oldest entry.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }

    /// Iterates oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        self.entries.iter()
    }

    /// Mutable iteration oldest → youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        self.entries.iter_mut()
    }

    /// Publishes `seq`'s result: stores it in the entry and wakes every
    /// waiting operand slot (values are usable the same cycle, matching
    /// the paper's zero-cost forwarding).
    pub fn set_value(&mut self, seq: Seq, value: u64) {
        if let Some(e) = self.entry_mut(seq) {
            e.value = Some(value);
        }
        for e in &mut self.entries {
            if e.src1 == Some(Src::Waiting(seq)) {
                e.src1 = Some(Src::Ready(value));
            }
            if e.src2 == Some(Src::Waiting(seq)) {
                e.src2 = Some(Src::Ready(value));
            }
        }
    }

    /// Retires the head entry: writes its result to the architectural
    /// register file and releases its rename binding. Returns `None` when
    /// the buffer is empty.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        let e = self.entries.pop_front()?;
        if let Some(dst) = e.instr.dst() {
            if let Some(v) = e.value {
                self.regfile.write(dst, v);
            }
            if self.rename[dst.index()] == Some(e.seq) {
                self.rename[dst.index()] = None;
            }
        }
        Some(e)
    }

    /// Squashes every entry with `seq >= from` (inclusive), rebuilding the
    /// rename table from the survivors. Returns the removed entries
    /// (oldest first) so the core can clean up its own structures.
    pub fn squash_from(&mut self, from: Seq) -> Vec<RobEntry> {
        let mut removed = Vec::new();
        while self.entries.back().is_some_and(|e| e.seq >= from) {
            if let Some(e) = self.entries.pop_back() {
                removed.push(e);
            }
        }
        removed.reverse();
        // Rebuild rename: youngest surviving producer per register.
        self.rename = [None; NUM_REGS];
        for e in &self.entries {
            if let Some(dst) = e.instr.dst() {
                self.rename[dst.index()] = Some(e.seq);
            }
        }
        removed
    }

    /// The next sequence number that will be allocated (used by the core
    /// to name the refetch point).
    #[must_use]
    pub fn next_seq(&self) -> Seq {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::reg::{R1, R2, R3};
    use mcsim_isa::{AddrExpr, AluOp, MemFlavor};

    fn load(dst: RegId, base: u64) -> Instr {
        Instr::Load {
            dst,
            addr: AddrExpr::direct(base),
            flavor: MemFlavor::Ordinary,
        }
    }

    fn add(dst: RegId, lhs: RegId, imm: u64) -> Instr {
        Instr::Alu {
            dst,
            op: AluOp::Add,
            lhs: Operand::Reg(lhs),
            rhs: Operand::Imm(imm),
            latency: 1,
        }
    }

    #[test]
    fn renaming_chains_through_producers() {
        let mut rob = Rob::new(8);
        let s0 = rob.push(0, load(R1, 0x10)).unwrap();
        let s1 = rob.push(1, add(R2, R1, 5)).unwrap();
        // add waits on the load.
        assert_eq!(rob.entry(s1).unwrap().src1, Some(Src::Waiting(s0)));
        rob.set_value(s0, 37);
        assert_eq!(rob.entry(s1).unwrap().src1, Some(Src::Ready(37)));
        assert!(rob.entry(s1).unwrap().srcs_ready());
    }

    #[test]
    fn read_reg_prefers_youngest_producer() {
        let mut rob = Rob::new(8);
        let _ = rob.push(0, load(R1, 0x10)).unwrap();
        let s1 = rob.push(1, load(R1, 0x20)).unwrap();
        assert_eq!(rob.read_reg(R1), Src::Waiting(s1));
        rob.set_value(s1, 9);
        assert_eq!(rob.read_reg(R1), Src::Ready(9));
    }

    #[test]
    fn read_reg_falls_back_to_regfile() {
        let rob = Rob::new(4);
        assert_eq!(rob.read_reg(R3), Src::Ready(0));
    }

    #[test]
    fn capacity_enforced() {
        let mut rob = Rob::new(2);
        assert!(rob.push(0, Instr::Nop).is_some());
        assert!(rob.push(1, Instr::Nop).is_some());
        assert!(rob.push(2, Instr::Nop).is_none());
        assert!(!rob.has_space());
    }

    #[test]
    fn pop_head_commits_to_regfile() {
        let mut rob = Rob::new(4);
        let s0 = rob.push(0, load(R1, 0x10)).unwrap();
        rob.set_value(s0, 42);
        let e = rob.pop_head().expect("non-empty");
        assert_eq!(e.seq, s0);
        assert_eq!(rob.regfile().read(R1), 42);
        // Rename binding released: reads now hit the regfile.
        assert_eq!(rob.read_reg(R1), Src::Ready(42));
    }

    #[test]
    fn squash_rebuilds_rename() {
        let mut rob = Rob::new(8);
        let s0 = rob.push(0, load(R1, 0x10)).unwrap();
        let s1 = rob.push(1, load(R2, 0x20)).unwrap();
        let s2 = rob.push(2, load(R1, 0x30)).unwrap();
        let removed = rob.squash_from(s1);
        assert_eq!(
            removed.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![s1, s2]
        );
        // R1 renames to the surviving s0, R2 back to the regfile.
        assert_eq!(rob.read_reg(R1), Src::Waiting(s0));
        assert_eq!(rob.read_reg(R2), Src::Ready(0));
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn lookup_works_with_non_contiguous_seqs() {
        // After a squash the next push creates a gap in sequence numbers;
        // lookups must still resolve (regression: the original index math
        // assumed contiguity and silently dropped refetched entries).
        let mut rob = Rob::new(8);
        let s0 = rob.push(0, load(R1, 0x10)).unwrap();
        let s1 = rob.push(1, load(R2, 0x20)).unwrap();
        let _s2 = rob.push(2, load(R1, 0x30)).unwrap();
        rob.squash_from(s1);
        let s3 = rob.push(1, load(R2, 0x40)).unwrap();
        assert!(s3 > s1 + 1, "squash leaves a seq gap");
        assert!(rob.entry(s0).is_some());
        assert!(rob.entry(s3).is_some(), "refetched entry must be findable");
        assert!(rob.entry(s1).is_none());
        rob.set_value(s3, 5);
        assert_eq!(rob.entry(s3).unwrap().value, Some(5));
    }

    #[test]
    fn squash_from_future_is_noop() {
        let mut rob = Rob::new(4);
        let _ = rob.push(0, Instr::Nop);
        let removed = rob.squash_from(100);
        assert!(removed.is_empty());
        assert_eq!(rob.len(), 1);
    }

    #[test]
    fn set_value_wakes_both_slots() {
        let mut rob = Rob::new(8);
        let s0 = rob.push(0, load(R1, 0x10)).unwrap();
        let s1 = rob
            .push(
                1,
                Instr::Alu {
                    dst: R2,
                    op: AluOp::Add,
                    lhs: Operand::Reg(R1),
                    rhs: Operand::Reg(R1),
                    latency: 1,
                },
            )
            .unwrap();
        rob.set_value(s0, 4);
        let e = rob.entry(s1).unwrap();
        assert_eq!(e.src1, Some(Src::Ready(4)));
        assert_eq!(e.src2, Some(Src::Ready(4)));
    }

    #[test]
    fn store_resolves_address_and_data_operands() {
        let mut rob = Rob::new(8);
        let s0 = rob.push(0, load(R1, 0x10)).unwrap();
        let s1 = rob
            .push(
                1,
                Instr::Store {
                    addr: AddrExpr::indexed(0x100, R1, 8),
                    src: Operand::Reg(R1),
                    flavor: MemFlavor::Ordinary,
                },
            )
            .unwrap();
        let e = rob.entry(s1).unwrap();
        assert_eq!(e.src1, Some(Src::Waiting(s0)));
        assert_eq!(e.src2, Some(Src::Waiting(s0)));
        assert!(!e.srcs_ready());
    }

    #[test]
    fn nop_jump_halt_complete_immediately() {
        let mut rob = Rob::new(8);
        let s = rob.push(0, Instr::Halt).unwrap();
        assert!(rob.entry(s).unwrap().completed);
    }
}
