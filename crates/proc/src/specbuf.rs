//! The speculative-load buffer — the paper's central new structure
//! (Figure 4, §4.2).
//!
//! Every speculatively issued load (and the read-exclusive half of a
//! split RMW, Appendix A) gets an entry with the paper's four fields:
//! *load address* (kept at line granularity — the matching grain of the
//! coherence protocol), *acq*, *done*, and *store tag*. Entries retire in
//! FIFO order when (1) the store tag is null and (2) `done` is set if
//! `acq` is set. Until retirement the entry's load is speculative and the
//! reorder buffer may not commit it.
//!
//! The detection mechanism is an associative match of incoming
//! invalidations, updates, and replacements against the buffered line
//! addresses; the match closest to the head is reported (§4.2). An entry
//! whose value came from store-to-load forwarding is immune: its value is
//! supplied by this processor's own pending store, which no coherence
//! event can falsify.

use crate::rob::Seq;
use mcsim_consistency::AccessClass;
use mcsim_isa::{Addr, LineAddr};
use std::collections::VecDeque;

/// One speculative load.
#[derive(Debug, Clone)]
pub struct SpecEntry {
    /// The load's sequence number.
    pub seq: Seq,
    /// Line it reads (the associative-match key).
    pub line: LineAddr,
    /// The exact word it reads (for the optional exact-update check —
    /// footnote 2's conservatism made configurable).
    pub addr: Addr,
    /// The speculated value once bound (None until the access returns).
    pub bound: Option<u64>,
    /// Acquire semantics under the active model: later loads must wait
    /// for this one to perform. Set for *all* loads under SC and PC, only
    /// for synchronization loads under WC/RC (§4.2).
    pub acq: bool,
    /// The access has performed (value bound by the memory system).
    pub done: bool,
    /// Youngest earlier store this load must wait for, per the model's
    /// arcs; `None` once no such store remains.
    pub store_tag: Option<Seq>,
    /// Ordering class of the load (needed to recompute the tag when a
    /// store completes).
    pub class: AccessClass,
    /// `Some(store)` when the value came from store-to-load forwarding:
    /// the load logically performs when that store does, and no coherence
    /// event can falsify its value (it is this processor's own).
    pub forward_src: Option<Seq>,
}

impl SpecEntry {
    /// Whether the value came from forwarding (hazard-immune).
    #[must_use]
    pub fn forwarded(&self) -> bool {
        self.forward_src.is_some()
    }
}

/// What the detection mechanism found for a hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HazardMatch {
    /// The matched (oldest) entry's load.
    pub seq: Seq,
    /// Whether its speculated value had already been bound (and thus
    /// possibly consumed): `true` → full rollback; `false` → the load is
    /// merely reissued (§4.2's two correction cases).
    pub done: bool,
}

/// The buffer itself.
#[derive(Debug, Default)]
pub struct SpeculativeLoadBuffer {
    entries: VecDeque<SpecEntry>,
}

impl SpeculativeLoadBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        SpeculativeLoadBuffer::default()
    }

    /// Occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no speculative loads are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (program order).
    pub fn push(&mut self, e: SpecEntry) {
        debug_assert!(
            self.entries.back().is_none_or(|b| b.seq < e.seq),
            "spec-buffer entries must arrive in program order"
        );
        self.entries.push_back(e);
    }

    /// The entry for `seq`.
    #[must_use]
    pub fn get(&self, seq: Seq) -> Option<&SpecEntry> {
        self.entries.iter().find(|e| e.seq == seq)
    }

    /// Marks the load's access performed, recording the bound value when
    /// the caller knows it.
    pub fn mark_done(&mut self, seq: Seq) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.done = true;
        }
    }

    /// Records the speculated value for the exact-update check.
    pub fn set_bound(&mut self, seq: Seq, value: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.bound = Some(value);
        }
    }

    /// Records that the load's value came from store-to-load forwarding
    /// (discovered at issue, after the entry was created at dispatch).
    pub fn set_forward_src(&mut self, seq: Seq, store: Seq) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.forward_src = Some(store);
        }
    }

    /// A store performed: forwarded loads that took their value from it
    /// are now logically performed too.
    pub fn mark_forward_sources_done(&mut self, store_seq: Seq) {
        for e in &mut self.entries {
            if e.forward_src == Some(store_seq) {
                e.done = true;
            }
        }
    }

    /// A store completed: nullify or recompute matching store tags.
    /// `retag(load_seq, class)` returns the next constraining store for
    /// that load, if any (the core asks its store buffer).
    pub fn store_completed(
        &mut self,
        store_seq: Seq,
        mut retag: impl FnMut(Seq, AccessClass) -> Option<Seq>,
    ) {
        for e in &mut self.entries {
            if e.store_tag == Some(store_seq) {
                e.store_tag = retag(e.seq, e.class);
            }
        }
    }

    /// Retires every ready entry at the head (FIFO): store tag null, and
    /// done if acq. Returns the retired sequence numbers, oldest first.
    pub fn retire_ready(&mut self) -> Vec<Seq> {
        let mut out = Vec::new();
        while self
            .entries
            .front()
            .is_some_and(|h| h.store_tag.is_none() && (!h.acq || h.done))
        {
            if let Some(e) = self.entries.pop_front() {
                out.push(e.seq);
            }
        }
        out
    }

    /// The detection mechanism: associatively matches a coherence hazard
    /// (invalidation, update, or replacement) for `line` against the
    /// buffer. The match closest to the head is reported. Entries whose
    /// values came from forwarding are skipped (immune), as is a head
    /// entry that already satisfies its retirement conditions — it would
    /// have been allowed to perform at this point anyway (footnote 4 of
    /// the paper).
    #[must_use]
    pub fn match_hazard(&self, line: LineAddr) -> Option<HazardMatch> {
        self.match_hazard_where(line, |_| true)
    }

    /// [`Self::match_hazard`] with an additional predicate: entries for
    /// which `applies` returns false are skipped. Used by the exact-update
    /// check to ignore false-sharing and same-value update hazards
    /// (footnote 2's two provably-safe cases).
    #[must_use]
    pub fn match_hazard_where(
        &self,
        line: LineAddr,
        mut applies: impl FnMut(&SpecEntry) -> bool,
    ) -> Option<HazardMatch> {
        for (i, e) in self.entries.iter().enumerate() {
            if e.line != line || e.forwarded() || !applies(e) {
                continue;
            }
            let retirable = e.store_tag.is_none() && (!e.acq || e.done);
            if i == 0 && retirable && e.done {
                continue; // effectively non-speculative already
            }
            return Some(HazardMatch {
                seq: e.seq,
                done: e.done,
            });
        }
        None
    }

    /// Removes the entry for `seq` (reissue path keeps the slot? no — the
    /// reissued access gets a fresh entry in program-order position; the
    /// caller re-inserts). Returns whether it existed.
    pub fn remove(&mut self, seq: Seq) -> bool {
        if let Some(i) = self.entries.iter().position(|e| e.seq == seq) {
            self.entries.remove(i);
            true
        } else {
            false
        }
    }

    /// Resets the `done` flag for a reissued load (its first value was
    /// discarded before use; the entry keeps its buffer position so FIFO
    /// ordering is preserved — footnote 5's tagging of return values is
    /// modeled by the core's token epochs).
    pub fn mark_reissued(&mut self, seq: Seq) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.done = false;
        }
    }

    /// Squashes entries with `seq >= from`.
    pub fn squash_from(&mut self, from: Seq) {
        while self.entries.back().is_some_and(|e| e.seq >= from) {
            self.entries.pop_back();
        }
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &SpecEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: Seq, line: u64, acq: bool, tag: Option<Seq>) -> SpecEntry {
        SpecEntry {
            seq,
            line: LineAddr(line),
            addr: Addr(line << 6),
            bound: None,
            acq,
            done: false,
            store_tag: tag,
            class: AccessClass::LOAD,
            forward_src: None,
        }
    }

    #[test]
    fn fifo_retirement_conditions() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, true, None)); // acq, not done -> blocks
        b.push(entry(2, 11, false, None)); // ready but behind
        assert!(b.retire_ready().is_empty());
        b.mark_done(1);
        assert_eq!(b.retire_ready(), vec![1, 2]);
        assert!(b.is_empty());
    }

    #[test]
    fn store_tag_blocks_retirement() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, false, Some(7)));
        assert!(b.retire_ready().is_empty());
        // Store 7 completes; no further constraining store.
        b.store_completed(7, |_, _| None);
        assert_eq!(b.retire_ready(), vec![1]);
    }

    #[test]
    fn store_completion_can_retag() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, false, Some(7)));
        b.store_completed(7, |_, _| Some(5));
        assert_eq!(b.get(1).unwrap().store_tag, Some(5));
        assert!(b.retire_ready().is_empty());
    }

    #[test]
    fn hazard_matches_oldest() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, true, None));
        b.push(entry(2, 99, true, None));
        b.push(entry(3, 99, true, None));
        b.mark_done(2);
        let m = b.match_hazard(LineAddr(99)).unwrap();
        assert_eq!(m.seq, 2, "match closest to the head");
        assert!(m.done);
        assert!(b.match_hazard(LineAddr(55)).is_none());
    }

    #[test]
    fn forwarded_entries_are_immune() {
        let mut b = SpeculativeLoadBuffer::new();
        let mut e = entry(1, 10, true, Some(0));
        e.forward_src = Some(0);
        b.push(e);
        assert!(b.match_hazard(LineAddr(10)).is_none());
    }

    #[test]
    fn retirable_done_head_is_skipped() {
        // Footnote 4: the head entry with a null tag has effectively been
        // allowed to perform; once done, a hazard no longer applies to it.
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, true, None));
        b.mark_done(1);
        assert!(b.match_hazard(LineAddr(10)).is_none());
        // But a non-head or still-constrained entry does match.
        b.push(entry(2, 10, true, None));
        b.mark_done(2);
        let m = b.match_hazard(LineAddr(10)).unwrap();
        assert_eq!(m.seq, 2);
    }

    #[test]
    fn undone_match_reports_reissue_case() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, true, Some(5)));
        let m = b.match_hazard(LineAddr(10)).unwrap();
        assert!(!m.done, "not-done match -> reissue, not rollback");
        b.mark_reissued(1);
        assert!(!b.get(1).unwrap().done);
    }

    #[test]
    fn squash_drops_tail() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, false, None));
        b.push(entry(4, 11, false, None));
        b.push(entry(6, 12, false, None));
        b.squash_from(4);
        assert_eq!(b.len(), 1);
        assert!(b.get(1).is_some());
    }

    #[test]
    fn remove_specific_entry() {
        let mut b = SpeculativeLoadBuffer::new();
        b.push(entry(1, 10, false, None));
        assert!(b.remove(1));
        assert!(!b.remove(1));
    }
}
