//! # mcsim-proc — the dynamically scheduled processor
//!
//! An implementation of the processor organization of §4.2 of
//! Gharachorloo, Gupta & Hennessy (ICPP 1991) — Johnson's dynamically
//! scheduled design (Figure 3) with the modified load/store unit of
//! Figure 4:
//!
//! * [`rob`] — the reorder buffer: register renaming, storage for
//!   uncommitted results, in-order retirement (precise interrupts), and
//!   the squash machinery shared by branch misprediction and
//!   speculative-load correction.
//! * [`btb`] — branch prediction (static hints + a 2-bit-counter branch
//!   target buffer), letting execution proceed past unresolved branches —
//!   the lookahead both techniques feed on (§3.2).
//! * [`storebuf`] — the store buffer: stores are held until the reorder
//!   buffer signals they reached the head (precise interrupts), then
//!   issue under the consistency model's store-side delay arcs. Under SC
//!   the store at the head also retires only when it *completes*,
//!   serializing stores; under RC it retires at address translation,
//!   pipelining them (§4.2).
//! * [`specbuf`] — the speculative-load buffer (the paper's central new
//!   structure): four fields per entry (`load address`, `acq`, `done`,
//!   `store tag`), FIFO retirement, and an associative match against
//!   invalidations, updates, and replacements that detects incorrect
//!   speculation (§4.2).
//! * [`core`] — the processor proper: ideal or width-limited frontend,
//!   in-order address unit, the cache-port arbitration that gives the
//!   paper's merge-completes-with-prefetch timing, the hardware prefetch
//!   unit (§3), speculative load issue (§4), RMW splitting (Appendix A),
//!   and the two-tier correction mechanism (rollback when the speculated
//!   value was consumed, reissue when it was not).
//!
//! The two techniques are switched independently via [`Techniques`], so a
//! single core models all four design points the paper compares:
//! conventional, prefetch-only, speculation-only, and both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod config;
pub mod core;
pub mod rob;
pub mod specbuf;
pub mod stats;
pub mod storebuf;

pub use config::{ProcConfig, Techniques};
pub use core::{ProcQuiescence, Processor};
pub use stats::{CycleBreakdown, ProcStats};
// The event taxonomy lives in mcsim-trace; re-exported for convenience.
pub use mcsim_trace::{IssueOutcome, TraceEvent, TraceKind};
