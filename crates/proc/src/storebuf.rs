//! The store buffer (Figure 4 of the paper).
//!
//! Stores (and the write halves of read-modify-writes) wait here after
//! address translation. Two gates control issue:
//!
//! 1. **Precise interrupts** — a store may not issue until the reorder
//!    buffer signals that it reached the head (`rob_released`), i.e. all
//!    previous instructions have completed. This single mechanism also
//!    delays stores behind previous loads and acquires, conservatively
//!    satisfying every model's store-after-load arcs (§4.2: "although the
//!    mechanism described is stricter than what RC requires, the
//!    conservative implementation is required for providing precise
//!    interrupts").
//! 2. **Store-side delay arcs** — an entry may not issue while an earlier
//!    incomplete entry `j` exists with `must_delay(j, me)`. Under SC/PC
//!    this serializes stores; under RC ordinary stores pipeline and only a
//!    release waits for everything before it.
//!
//! The buffer also answers dependence checks from later loads
//! (store-to-load forwarding) and feeds the prefetch unit with delayed
//! entries.

use crate::rob::Seq;
use mcsim_consistency::{AccessClass, Model};
use mcsim_isa::{Addr, RmwKind};
use mcsim_mem::TxnId;
use std::collections::VecDeque;

/// Progress of one store-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbState {
    /// Not yet issued to the memory system.
    Waiting,
    /// Issued; completion pending.
    Issued {
        /// Transaction carrying it.
        txn: TxnId,
    },
}

/// One buffered store or RMW write-half.
#[derive(Debug, Clone)]
pub struct SbEntry {
    /// The instruction's sequence number (also the spec-buffer store tag).
    pub seq: Seq,
    /// Ordering classification.
    pub class: AccessClass,
    /// Target word.
    pub addr: Addr,
    /// Store value, or the RMW operand.
    pub value: u64,
    /// `Some` for the write half of a read-modify-write.
    pub rmw: Option<RmwKind>,
    /// The reorder buffer has signaled the entry reached its head.
    pub rob_released: bool,
    /// Issue progress.
    pub state: SbState,
    /// A read-exclusive prefetch has been sent for it (§3.2).
    pub prefetch_sent: bool,
    /// Cycle it was issued to the memory system (latency stats).
    pub issued_at: Option<u64>,
}

/// Result of a load's dependence check against the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardResult {
    /// No earlier same-address store: the load may go to memory.
    None,
    /// An earlier plain store supplies the value (store-to-load
    /// forwarding); the load logically performs when that store does.
    Value {
        /// The forwarding store.
        seq: Seq,
        /// Its value.
        value: u64,
    },
    /// An earlier same-address RMW whose result is not yet known; the
    /// load must wait for it to complete.
    Conflict {
        /// The conflicting entry.
        seq: Seq,
    },
}

/// The FIFO store buffer.
#[derive(Debug, Default)]
pub struct StoreBuffer {
    entries: VecDeque<SbEntry>,
}

impl StoreBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        StoreBuffer::default()
    }

    /// Number of incomplete entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty (all stores performed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an entry (program order).
    pub fn push(&mut self, e: SbEntry) {
        debug_assert!(
            self.entries.back().is_none_or(|b| b.seq < e.seq),
            "store buffer entries must arrive in program order"
        );
        self.entries.push_back(e);
    }

    /// Marks `seq` as released by the reorder buffer (reached the head).
    pub fn mark_released(&mut self, seq: Seq) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.rob_released = true;
        }
    }

    /// The entry for `seq`, if incomplete.
    #[must_use]
    pub fn get(&self, seq: Seq) -> Option<&SbEntry> {
        self.entries.iter().find(|e| e.seq == seq)
    }

    /// Mutable entry lookup.
    pub fn get_mut(&mut self, seq: Seq) -> Option<&mut SbEntry> {
        self.entries.iter_mut().find(|e| e.seq == seq)
    }

    /// Whether `me` is blocked by an earlier incomplete entry under
    /// `model`'s store-side delay arcs.
    #[must_use]
    pub fn blocked_by_earlier(&self, model: Model, me: &SbEntry) -> bool {
        self.entries
            .iter()
            .take_while(|j| j.seq < me.seq)
            .any(|j| model.must_delay(j.class, me.class))
    }

    /// Sequence numbers of entries eligible to issue this cycle, oldest
    /// first: released, still waiting, and not blocked by an earlier
    /// entry's delay arc.
    #[must_use]
    pub fn issuable(&self, model: Model) -> Vec<Seq> {
        self.entries
            .iter()
            .filter(|e| {
                e.rob_released
                    && matches!(e.state, SbState::Waiting)
                    && !self.blocked_by_earlier(model, e)
            })
            .map(|e| e.seq)
            .collect()
    }

    /// Entries that are *delayed* (waiting but not issuable) and have not
    /// been prefetched — the prefetch unit's candidates (§3.2: prefetches
    /// are generated for accesses "delayed due to consistency
    /// constraints").
    #[must_use]
    pub fn prefetch_candidates(&self, model: Model) -> Vec<(Seq, Addr)> {
        self.entries
            .iter()
            .filter(|e| {
                matches!(e.state, SbState::Waiting)
                    && !e.prefetch_sent
                    && (!e.rob_released || self.blocked_by_earlier(model, e))
            })
            .map(|e| (e.seq, e.addr))
            .collect()
    }

    /// Removes a completed entry, returning it (the spec buffer nullifies
    /// matching store tags with it).
    pub fn complete(&mut self, seq: Seq) -> Option<SbEntry> {
        let i = self.entries.iter().position(|e| e.seq == seq)?;
        self.entries.remove(i)
    }

    /// Dependence check for a load at `load_seq` against earlier entries
    /// to the same word. The *youngest* earlier match wins.
    #[must_use]
    pub fn forward(&self, addr: Addr, load_seq: Seq) -> ForwardResult {
        for e in self.entries.iter().rev().skip_while(|e| e.seq >= load_seq) {
            if e.addr == addr {
                return match e.rmw {
                    None => ForwardResult::Value {
                        seq: e.seq,
                        value: e.value,
                    },
                    Some(_) => ForwardResult::Conflict { seq: e.seq },
                };
            }
        }
        ForwardResult::None
    }

    /// The youngest incomplete entry older than `load_seq` whose class
    /// constrains a later access of class `later` — the spec-buffer store
    /// tag (§4.2: "if the consistency constraints require the load to be
    /// delayed for a previous store, the store tag uniquely identifies
    /// that store").
    #[must_use]
    pub fn constraining_store(
        &self,
        model: Model,
        load_seq: Seq,
        later: AccessClass,
    ) -> Option<Seq> {
        self.entries
            .iter()
            .rev()
            .skip_while(|e| e.seq >= load_seq)
            .find(|e| model.must_delay(e.class, later))
            .map(|e| e.seq)
    }

    /// Squashes entries with `seq >= from`.
    ///
    /// # Panics
    /// If a squashed entry was already issued — the release discipline
    /// guarantees stores younger than any speculative load are unissued
    /// (they can only be released after the load commits).
    pub fn squash_from(&mut self, from: Seq) {
        while self.entries.back().is_some_and(|e| e.seq >= from) {
            let e = self.entries.pop_back().expect("checked");
            assert!(
                matches!(e.state, SbState::Waiting),
                "squashed store {} was already issued to memory",
                e.seq
            );
        }
    }

    /// Iterates entries oldest → youngest.
    pub fn iter(&self) -> impl Iterator<Item = &SbEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: Seq, class: AccessClass, addr: u64) -> SbEntry {
        SbEntry {
            seq,
            class,
            addr: Addr(addr),
            value: seq, // distinct values for forwarding checks
            rmw: None,
            rob_released: false,
            state: SbState::Waiting,
            prefetch_sent: false,
            issued_at: None,
        }
    }

    #[test]
    fn sc_serializes_stores() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        sb.push(entry(2, AccessClass::STORE, 0x200));
        sb.mark_released(1);
        sb.mark_released(2);
        assert_eq!(sb.issuable(Model::Sc), vec![1], "only the oldest store");
        sb.complete(1);
        assert_eq!(sb.issuable(Model::Sc), vec![2]);
    }

    #[test]
    fn rc_pipelines_ordinary_stores() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        sb.push(entry(2, AccessClass::STORE, 0x200));
        sb.push(entry(3, AccessClass::RELEASE_STORE, 0x40));
        sb.mark_released(1);
        sb.mark_released(2);
        sb.mark_released(3);
        assert_eq!(
            sb.issuable(Model::Rc),
            vec![1, 2],
            "ordinary stores pipeline; the release waits"
        );
        sb.complete(1);
        sb.complete(2);
        assert_eq!(sb.issuable(Model::Rc), vec![3]);
    }

    #[test]
    fn unreleased_entries_never_issue() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        assert!(sb.issuable(Model::Rc).is_empty());
        sb.mark_released(1);
        assert_eq!(sb.issuable(Model::Rc), vec![1]);
    }

    #[test]
    fn prefetch_candidates_are_delayed_entries() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        sb.push(entry(2, AccessClass::STORE, 0x200));
        sb.mark_released(1);
        // Under SC, entry 1 is issuable (not a candidate); entry 2 is
        // delayed behind it.
        let cands = sb.prefetch_candidates(Model::Sc);
        assert_eq!(cands, vec![(2, Addr(0x200))]);
        // Marking prefetch_sent removes it.
        sb.get_mut(2).unwrap().prefetch_sent = true;
        assert!(sb.prefetch_candidates(Model::Sc).is_empty());
    }

    #[test]
    fn unreleased_entry_is_prefetch_candidate() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        assert_eq!(sb.prefetch_candidates(Model::Rc), vec![(1, Addr(0x100))]);
    }

    #[test]
    fn forwarding_picks_youngest_earlier_match() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        sb.push(entry(3, AccessClass::STORE, 0x100));
        sb.push(entry(5, AccessClass::STORE, 0x200));
        assert_eq!(
            sb.forward(Addr(0x100), 7),
            ForwardResult::Value { seq: 3, value: 3 }
        );
        assert_eq!(
            sb.forward(Addr(0x100), 2),
            ForwardResult::Value { seq: 1, value: 1 },
            "only entries older than the load are checked"
        );
        assert_eq!(sb.forward(Addr(0x300), 7), ForwardResult::None);
    }

    #[test]
    fn rmw_conflicts_instead_of_forwarding() {
        let mut sb = StoreBuffer::new();
        let mut e = entry(1, AccessClass::ACQUIRE_RMW, 0x40);
        e.rmw = Some(RmwKind::TestAndSet);
        sb.push(e);
        assert_eq!(
            sb.forward(Addr(0x40), 5),
            ForwardResult::Conflict { seq: 1 }
        );
    }

    #[test]
    fn constraining_store_respects_model() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        sb.push(entry(2, AccessClass::RELEASE_STORE, 0x40));
        // SC: any earlier store constrains a later load — youngest wins.
        assert_eq!(
            sb.constraining_store(Model::Sc, 5, AccessClass::LOAD),
            Some(2)
        );
        // RC: ordinary loads are not delayed for earlier stores at all
        // (release -> ordinary load is free).
        assert_eq!(sb.constraining_store(Model::Rc, 5, AccessClass::LOAD), None);
        // WC: the release (a sync access) constrains later loads; the
        // ordinary store does not.
        assert_eq!(
            sb.constraining_store(Model::Wc, 5, AccessClass::LOAD),
            Some(2)
        );
        sb.complete(2);
        assert_eq!(sb.constraining_store(Model::Wc, 5, AccessClass::LOAD), None);
    }

    #[test]
    fn squash_removes_unissued_tail() {
        let mut sb = StoreBuffer::new();
        sb.push(entry(1, AccessClass::STORE, 0x100));
        sb.push(entry(4, AccessClass::STORE, 0x200));
        sb.squash_from(2);
        assert_eq!(sb.len(), 1);
        assert!(sb.get(4).is_none());
        assert!(sb.get(1).is_some());
    }

    #[test]
    #[should_panic(expected = "already issued")]
    fn squashing_issued_store_panics() {
        let mut sb = StoreBuffer::new();
        let mut e = entry(1, AccessClass::STORE, 0x100);
        e.state = SbState::Issued { txn: TxnId(1) };
        sb.push(e);
        sb.squash_from(0);
    }
}
