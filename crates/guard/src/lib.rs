//! # mcsim-guard — runtime verification and failure diagnostics
//!
//! The simulator's correctness argument (coherence keeps prefetching
//! safe, the speculative-load buffer makes speculation recoverable) is a
//! set of *runtime-checkable invariants over an operational model*. This
//! crate is the vocabulary for checking them: a typed, serializable
//! [`SimError`] taxonomy that hot paths report instead of panicking, the
//! catalog of invariants the checker enforces ([`InvariantKind`]), the
//! forward-progress watchdog's structured verdict ([`StallReport`]), and
//! the deterministic fault-injection plan ([`FaultKind`]) used to
//! mutation-test the checker itself.
//!
//! The crate is deliberately leaf-level (data types only, no simulator
//! state): `mem`, `proc`, `core`, and `sweep` all depend on it, raise its
//! errors, and surface them unchanged in reports, CLI diagnostics, and
//! crash dumps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A processor index (mirrors `mcsim_mem::ProcId` without the dependency).
pub type ProcId = usize;

/// A power-of-two-bucketed latency histogram: bucket `i` counts samples
/// with `2^i <= latency < 2^(i+1)` (bucket 0 also takes latency 0 and 1,
/// so its reported lower bound is 0). Cheap, `Copy`, and good enough to
/// see the paper's effects — hit/miss bimodality, and how the techniques
/// move mass from the serialized tail into the overlapped head.
///
/// Lives in the guard crate (the leaf data-types layer) so both the
/// processor and the memory system can attribute latencies per cause
/// without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: [u64; 20],
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 20] }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: u64) {
        let b = (64 - latency.max(1).leading_zeros() - 1) as usize;
        self.buckets[b.min(self.buckets.len() - 1)] += 1;
    }

    /// Total samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Samples at or below `latency` (bucket-granular upper bound).
    #[must_use]
    pub fn count_up_to(&self, latency: u64) -> u64 {
        let b = (64 - latency.max(1).leading_zeros() - 1) as usize;
        self.buckets[..=b.min(self.buckets.len() - 1)].iter().sum()
    }

    /// `(lower_bound, count)` for each non-empty bucket. Bucket 0's lower
    /// bound is 0: `record` routes latency-0 samples (forwarded or merged
    /// accesses) into it alongside latency 1.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }

    /// Merges another histogram.
    pub fn merge(&mut self, o: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// One invariant of the machine's operational model. The checker reports
/// the first cycle at which any of these fails to hold.
///
/// All listed invariants hold at every cycle boundary, *including* while
/// coherence transactions are in flight — transient protocol states
/// (e.g. a directory that has promised ownership while the fill is still
/// traveling) are accounted for, so a violation is always a real bug (or
/// an injected fault).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantKind {
    /// SWMR: more than one cache holds the same line exclusively.
    SwmrMultipleExclusive,
    /// SWMR: a cache holds a line exclusively while another cache still
    /// has any copy of it.
    SwmrExclusiveWithCopies,
    /// The directory records an owner, but the owner's cache neither
    /// holds the line exclusively nor has an outstanding transaction that
    /// would make it so.
    DirOwnerDisagrees,
    /// An MSHR file holds more entries than its configured capacity.
    MshrOverflow,
    /// A fill-type MSHR has no reserved cache way to land in (or an
    /// upgrade MSHR targets a line the cache no longer tracks).
    MshrMissingWay,
    /// Store-buffer entries are out of program order.
    StoreBufferOrder,
    /// Speculative-load-buffer entries are out of program order.
    SpecBufferOrder,
    /// Reorder-buffer entries are out of sequence order.
    RobOrder,
    /// A core's per-cause cycle breakdown does not sum to the cycles it
    /// has been accounted for (one classified bucket per tick).
    CycleBreakdownSum,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InvariantKind::SwmrMultipleExclusive => "SWMR: multiple exclusive copies",
            InvariantKind::SwmrExclusiveWithCopies => "SWMR: exclusive copy coexists with others",
            InvariantKind::DirOwnerDisagrees => "directory owner disagrees with owner's cache",
            InvariantKind::MshrOverflow => "MSHR occupancy exceeds capacity",
            InvariantKind::MshrMissingWay => "outstanding MSHR has no cache way",
            InvariantKind::StoreBufferOrder => "store buffer out of program order",
            InvariantKind::SpecBufferOrder => "speculative-load buffer out of program order",
            InvariantKind::RobOrder => "reorder buffer out of sequence order",
            InvariantKind::CycleBreakdownSum => {
                "cycle breakdown components do not sum to total cycles"
            }
        };
        f.write_str(s)
    }
}

/// How a stalled machine is stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallClass {
    /// Every processor is frozen waiting on memory responses that will
    /// never arrive (and the network has nothing in flight).
    Deadlock,
    /// Processors are still actively executing (fetching, squashing,
    /// reissuing) but none retires an instruction.
    Livelock,
}

impl fmt::Display for StallClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StallClass::Deadlock => "deadlock",
            StallClass::Livelock => "livelock",
        })
    }
}

/// One stalled processor's state at watchdog-fire time: who it is, where
/// it stopped, and which buffer entries it is still holding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StalledProc {
    /// Processor index.
    pub proc: ProcId,
    /// Fetch PC at fire time.
    pub pc: u64,
    /// Instructions committed so far (unchanged over the whole window).
    pub committed: u64,
    /// Occupied reorder-buffer entries.
    pub rob_entries: usize,
    /// Rendered store-buffer entries still held.
    pub store_buffer: Vec<String>,
    /// Rendered speculative-load-buffer entries still held.
    pub spec_buffer: Vec<String>,
    /// Demand tokens the load/store unit is still awaiting.
    pub awaiting: Vec<String>,
}

/// The forward-progress watchdog's verdict: over a whole window of
/// cycles, no processor retired an instruction and the memory system
/// performed no coherence work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallReport {
    /// Deadlock or livelock.
    pub class: StallClass,
    /// Window length in cycles.
    pub window: u64,
    /// First cycle of the silent window.
    pub since_cycle: u64,
    /// Every processor that had not halted, with its held state.
    pub stalled: Vec<StalledProc>,
}

impl StallReport {
    /// Classifies a silent window: if any processor's frontend state
    /// moved (or speculation churned) during the window the machine is
    /// livelocked, otherwise it is frozen — a deadlock.
    #[must_use]
    pub fn classify(frontend_moved: bool, speculation_churned: bool) -> StallClass {
        if frontend_moved || speculation_churned {
            StallClass::Livelock
        } else {
            StallClass::Deadlock
        }
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} detected: no retires and no coherence activity since cycle {} ({}-cycle window); stalled procs:",
            self.class, self.since_cycle, self.window
        )?;
        for p in &self.stalled {
            write!(
                f,
                " [proc {} pc {} rob {} sb {} spec {} awaiting {}]",
                p.proc,
                p.pc,
                p.rob_entries,
                p.store_buffer.len(),
                p.spec_buffer.len(),
                p.awaiting.len()
            )?;
        }
        Ok(())
    }
}

/// Whether a failure is worth retrying.
///
/// The sweep supervisor uses this split to decide what a bounded retry
/// can buy: a **deterministic** failure is a property of the simulated
/// point itself (same spec + same seed ⇒ same failure, every time), so
/// re-running it burns wall-clock to reproduce the same diagnostic. A
/// **transient** failure comes from the *environment* the point ran in —
/// a worker process killed by a signal (OOM killer, operator), a spawn
/// or pipe error, a wall-clock deadline on an overloaded machine — and
/// may well succeed on a clean re-execution of the identical point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureClass {
    /// Reproducible from the point spec alone; retrying re-derives the
    /// same failure, so the supervisor records it immediately.
    Deterministic,
    /// Environmental; a bounded retry of the *same* point (same seed,
    /// same config) is justified.
    Transient,
}

impl FailureClass {
    /// Whether the supervisor's bounded retry applies.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(self, FailureClass::Transient)
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureClass::Deterministic => "deterministic",
            FailureClass::Transient => "transient",
        })
    }
}

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimErrorKind {
    /// A protocol-contract violation detected at the site itself: a
    /// structure was asked for an operation the coherence protocol should
    /// have made impossible (previously a `panic!`/`unreachable!`).
    Protocol {
        /// What the structure was asked to do and why it could not.
        detail: String,
    },
    /// The periodic invariant checker found a violated invariant.
    Invariant {
        /// Which invariant failed.
        invariant: InvariantKind,
        /// The violating state, rendered.
        detail: String,
    },
    /// The forward-progress watchdog declared the machine stalled.
    NoProgress(StallReport),
}

/// A structured, serializable simulation failure: what failed, at which
/// cycle, on which processor and cache line, with enough captured state
/// for a postmortem — the replacement for unwinding out of the hot loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimError {
    /// Cycle at which the failure was detected. For invariant violations
    /// this is the first violating cycle at the configured check cadence.
    pub cycle: u64,
    /// Processor involved, when attributable.
    pub proc: Option<ProcId>,
    /// Cache-line address involved, when attributable.
    pub line: Option<u64>,
    /// The failure itself.
    pub kind: SimErrorKind,
}

impl SimError {
    /// A protocol-contract failure.
    #[must_use]
    pub fn protocol(
        cycle: u64,
        proc: Option<ProcId>,
        line: Option<u64>,
        detail: impl Into<String>,
    ) -> Self {
        SimError {
            cycle,
            proc,
            line,
            kind: SimErrorKind::Protocol {
                detail: detail.into(),
            },
        }
    }

    /// An invariant violation.
    #[must_use]
    pub fn invariant(
        cycle: u64,
        proc: Option<ProcId>,
        line: Option<u64>,
        invariant: InvariantKind,
        detail: impl Into<String>,
    ) -> Self {
        SimError {
            cycle,
            proc,
            line,
            kind: SimErrorKind::Invariant {
                invariant,
                detail: detail.into(),
            },
        }
    }

    /// A watchdog no-forward-progress failure.
    #[must_use]
    pub fn no_progress(cycle: u64, report: StallReport) -> Self {
        SimError {
            cycle,
            proc: None,
            line: None,
            kind: SimErrorKind::NoProgress(report),
        }
    }

    /// The violated invariant, if this is an invariant failure.
    #[must_use]
    pub fn violated_invariant(&self) -> Option<InvariantKind> {
        match &self.kind {
            SimErrorKind::Invariant { invariant, .. } => Some(*invariant),
            _ => None,
        }
    }

    /// Classifies this failure for the retry policy.
    ///
    /// Every [`SimError`] is [`FailureClass::Deterministic`]: protocol
    /// faults, invariant violations, and watchdog verdicts are all
    /// functions of the simulated machine's state, which is itself a
    /// pure function of the configuration and seed. The transient class
    /// exists for *process-level* failures (a crashed or wedged worker),
    /// which never reach this type — they have no simulated state to
    /// report.
    #[must_use]
    pub fn class(&self) -> FailureClass {
        match &self.kind {
            SimErrorKind::Protocol { .. }
            | SimErrorKind::Invariant { .. }
            | SimErrorKind::NoProgress(_) => FailureClass::Deterministic,
        }
    }

    /// The stall report, if this is a watchdog failure.
    #[must_use]
    pub fn stall(&self) -> Option<&StallReport> {
        match &self.kind {
            SimErrorKind::NoProgress(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.cycle)?;
        if let Some(p) = self.proc {
            write!(f, " proc {p}")?;
        }
        if let Some(l) = self.line {
            write!(f, " line {l:#x}")?;
        }
        match &self.kind {
            SimErrorKind::Protocol { detail } => write!(f, ": protocol violation: {detail}"),
            SimErrorKind::Invariant { invariant, detail } => {
                write!(f, ": invariant violated ({invariant}): {detail}")
            }
            SimErrorKind::NoProgress(report) => write!(f, ": {report}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Which protocol perturbation to inject, and on which occurrence.
///
/// Faults are counted per delivery site: `nth` = 1 perturbs the first
/// matching message, `nth` = 2 the second, and so on. Injection is fully
/// deterministic — the same configuration always corrupts the same
/// message at the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Silently drop the `nth` invalidation delivery: the victim cache
    /// keeps a stale copy while the directory believes it was purged.
    /// Caught by the SWMR invariant when the new owner's exclusive fill
    /// lands.
    DropInvalidation {
        /// Which invalidation delivery to drop (1-based).
        nth: u64,
    },
    /// Corrupt the `nth` shared fill into an exclusive one: the cache
    /// believes it owns a line the directory only shared. Caught by the
    /// SWMR / directory-agreement invariants at the fill cycle.
    CorruptLineState {
        /// Which shared fill delivery to corrupt (1-based).
        nth: u64,
    },
    /// Silently drop the `nth` fill delivery: the MSHR never completes
    /// and its processor freezes. Caught by the forward-progress
    /// watchdog as a deadlock.
    StuckMshr {
        /// Which fill delivery to drop (1-based).
        nth: u64,
    },
}

impl FaultKind {
    /// Every fault class, at its first opportunity — the smoke-test set.
    pub const ALL_FIRST: [FaultKind; 3] = [
        FaultKind::DropInvalidation { nth: 1 },
        FaultKind::CorruptLineState { nth: 1 },
        FaultKind::StuckMshr { nth: 1 },
    ];

    /// Derives a fault deterministically from a seed (an LCG step picks
    /// the class and the occurrence), for seeded fault-sweep harnesses.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        // Numerical Recipes LCG: deterministic, platform-independent.
        let x = seed
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let nth = (x >> 33) % 2 + 1;
        match x % 3 {
            0 => FaultKind::DropInvalidation { nth },
            1 => FaultKind::CorruptLineState { nth },
            _ => FaultKind::StuckMshr { nth },
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::DropInvalidation { nth } => write!(f, "drop-inv:{nth}"),
            FaultKind::CorruptLineState { nth } => write!(f, "corrupt:{nth}"),
            FaultKind::StuckMshr { nth } => write!(f, "stuck-mshr:{nth}"),
        }
    }
}

impl FromStr for FaultKind {
    type Err = String;

    /// Parses `drop-inv:N`, `corrupt:N`, or `stuck-mshr:N` (N defaults
    /// to 1 when omitted).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, nth) = match s.split_once(':') {
            Some((k, n)) => (
                k,
                n.parse::<u64>()
                    .map_err(|_| format!("bad fault occurrence `{n}`"))?,
            ),
            None => (s, 1),
        };
        if nth == 0 {
            return Err("fault occurrence is 1-based".into());
        }
        match kind {
            "drop-inv" => Ok(FaultKind::DropInvalidation { nth }),
            "corrupt" => Ok(FaultKind::CorruptLineState { nth }),
            "stuck-mshr" => Ok(FaultKind::StuckMshr { nth }),
            other => Err(format!(
                "unknown fault `{other}` (want drop-inv | corrupt | stuck-mshr)"
            )),
        }
    }
}

/// Guard-layer knobs, carried inside the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardConfig {
    /// Run the invariant checker every this-many cycles. `0` = automatic:
    /// every cycle in debug builds (or under the `strict-invariants`
    /// feature), every [`GuardConfig::RELEASE_PERIOD`] cycles otherwise.
    /// `u64::MAX` disables checking.
    ///
    /// The cadence is defined over *simulated* cycles, not loop
    /// iterations: when the machine loop fast-forwards over a quiescent
    /// span, a check still runs for the first in-span multiple of the
    /// period (state is frozen across the span, so that one verdict is
    /// exactly what checking at every covered multiple would produce).
    pub invariant_period: u64,
    /// Watchdog window: declare a stall after this many consecutive
    /// cycles with no retires and no coherence activity. `0` disables the
    /// watchdog (leaving only the `max_cycles` bound). Window edges are
    /// likewise simulated-cycle positions — edges crossed by a
    /// fast-forwarded span are sampled, in order, against the frozen
    /// state, so a deadlock fires at the same edge cycle either way.
    pub watchdog_window: u64,
    /// Protocol fault to inject (mutation-testing the checker).
    pub fault: Option<FaultKind>,
}

impl GuardConfig {
    /// Automatic invariant cadence for release builds.
    pub const RELEASE_PERIOD: u64 = 1024;

    /// Resolves the configured cadence; `every_cycle` is the build-mode
    /// hint (debug build or `strict-invariants` feature). `None` means
    /// checking is disabled.
    #[must_use]
    pub fn effective_period(&self, every_cycle: bool) -> Option<u64> {
        match self.invariant_period {
            u64::MAX => None,
            0 if every_cycle => Some(1),
            0 => Some(Self::RELEASE_PERIOD),
            n => Some(n),
        }
    }
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            invariant_period: 0,
            watchdog_window: 10_000,
            fault: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_cycle_proc_and_line() {
        let e = SimError::protocol(42, Some(3), Some(0x40), "fill without an MSHR");
        let s = e.to_string();
        assert!(s.contains("cycle 42"), "{s}");
        assert!(s.contains("proc 3"), "{s}");
        assert!(s.contains("line 0x40"), "{s}");
        assert!(s.contains("fill without an MSHR"), "{s}");
    }

    #[test]
    fn invariant_error_names_the_invariant() {
        let e = SimError::invariant(
            7,
            None,
            Some(2),
            InvariantKind::SwmrMultipleExclusive,
            "procs 0 and 1",
        );
        assert_eq!(
            e.violated_invariant(),
            Some(InvariantKind::SwmrMultipleExclusive)
        );
        assert!(e.to_string().contains("SWMR"));
    }

    #[test]
    fn stall_report_renders_stalled_procs() {
        let r = StallReport {
            class: StallClass::Deadlock,
            window: 100,
            since_cycle: 900,
            stalled: vec![StalledProc {
                proc: 1,
                pc: 5,
                committed: 12,
                rob_entries: 3,
                store_buffer: vec!["seq 9 -> 0x100".into()],
                spec_buffer: vec![],
                awaiting: vec!["op7".into()],
            }],
        };
        let e = SimError::no_progress(1000, r);
        let s = e.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(s.contains("proc 1"), "{s}");
        assert!(s.contains("since cycle 900"), "{s}");
        assert_eq!(e.stall().unwrap().stalled.len(), 1);
    }

    #[test]
    fn classify_requires_total_silence_for_deadlock() {
        assert_eq!(StallReport::classify(false, false), StallClass::Deadlock);
        assert_eq!(StallReport::classify(true, false), StallClass::Livelock);
        assert_eq!(StallReport::classify(false, true), StallClass::Livelock);
    }

    #[test]
    fn fault_round_trips_through_strings() {
        for f in [
            FaultKind::DropInvalidation { nth: 2 },
            FaultKind::CorruptLineState { nth: 1 },
            FaultKind::StuckMshr { nth: 3 },
        ] {
            assert_eq!(f.to_string().parse::<FaultKind>(), Ok(f));
        }
        assert_eq!(
            "drop-inv".parse::<FaultKind>(),
            Ok(FaultKind::DropInvalidation { nth: 1 })
        );
        assert!("nonsense".parse::<FaultKind>().is_err());
        assert!("drop-inv:0".parse::<FaultKind>().is_err());
    }

    #[test]
    fn seeded_faults_are_deterministic_and_varied() {
        let a: Vec<FaultKind> = (0..32).map(FaultKind::from_seed).collect();
        let b: Vec<FaultKind> = (0..32).map(FaultKind::from_seed).collect();
        assert_eq!(a, b, "same seeds, same faults");
        let classes: std::collections::BTreeSet<u8> = a
            .iter()
            .map(|f| match f {
                FaultKind::DropInvalidation { .. } => 0,
                FaultKind::CorruptLineState { .. } => 1,
                FaultKind::StuckMshr { .. } => 2,
            })
            .collect();
        assert_eq!(classes.len(), 3, "all classes reachable: {a:?}");
    }

    #[test]
    fn histogram_bucket_zero_lower_bound_is_zero() {
        let mut h = LatencyHistogram::new();
        h.record(0); // forwarded/merged accesses land here
        h.record(1);
        let nz: Vec<_> = h.nonzero().collect();
        assert_eq!(nz, vec![(0, 2)], "latency 0 and 1 share bucket 0: {nz:?}");
    }

    #[test]
    fn histogram_count_up_to_boundaries() {
        let mut h = LatencyHistogram::new();
        for l in [0, 1, 2, 3, 4, 7, 8] {
            h.record(l);
        }
        // Bucket-granular: an upper bound anywhere inside a bucket
        // includes the whole bucket.
        assert_eq!(h.count_up_to(0), 2, "latency 0 counts bucket 0 (0..=1)");
        assert_eq!(h.count_up_to(1), 2);
        assert_eq!(h.count_up_to(2), 4, "bucket 1 is 2..=3");
        assert_eq!(h.count_up_to(3), 4);
        assert_eq!(h.count_up_to(4), 6, "bucket 2 is 4..=7");
        assert_eq!(h.count_up_to(7), 6);
        assert_eq!(h.count_up_to(8), 7);
        assert_eq!(h.count_up_to(u64::MAX), h.count());
    }

    #[test]
    fn every_sim_error_is_deterministic_and_not_retryable() {
        let errors = [
            SimError::protocol(1, None, None, "x"),
            SimError::invariant(2, None, None, InvariantKind::RobOrder, "y"),
            SimError::no_progress(
                3,
                StallReport {
                    class: StallClass::Deadlock,
                    window: 10,
                    since_cycle: 0,
                    stalled: vec![],
                },
            ),
        ];
        for e in errors {
            assert_eq!(e.class(), FailureClass::Deterministic, "{e}");
            assert!(!e.class().retryable());
        }
        assert!(FailureClass::Transient.retryable());
        assert_eq!(FailureClass::Transient.to_string(), "transient");
        assert_eq!(FailureClass::Deterministic.to_string(), "deterministic");
    }

    #[test]
    fn effective_period_resolves_auto_mode() {
        let g = GuardConfig::default();
        assert_eq!(g.effective_period(true), Some(1));
        assert_eq!(g.effective_period(false), Some(GuardConfig::RELEASE_PERIOD));
        let explicit = GuardConfig {
            invariant_period: 7,
            ..GuardConfig::default()
        };
        assert_eq!(explicit.effective_period(false), Some(7));
        let off = GuardConfig {
            invariant_period: u64::MAX,
            ..GuardConfig::default()
        };
        assert_eq!(off.effective_period(true), None);
    }
}
