//! Litmus tests wired to the execution-enumeration oracle.
//!
//! Each [`Litmus`] bundles the per-processor programs with an initial
//! memory image. [`Litmus::allowed_outcomes`] enumerates the legal final
//! states under any consistency model (delegating to `mcsim-oracle`);
//! [`Litmus::run`] simulates one execution; [`Litmus::outcome_of`]
//! projects the run onto the oracle's state space so membership can be
//! checked with [`Litmus::is_allowed_under`]. Under SC — with any
//! combination of the paper's techniques — every simulated execution
//! must be in the SC set; that is the machine-checkable statement of
//! the paper's correctness argument (§4.2). The conformance harness
//! extends the same membership check to every model in
//! `Model::ALL_EXTENDED`.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig, Outcome, RunReport};
use mcsim_isa::reg::{R1, R2};
use mcsim_isa::{Program, ProgramBuilder};
use mcsim_oracle::OracleConfig;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named multiprocessor test with an initial memory image.
#[derive(Debug, Clone)]
pub struct Litmus {
    /// Test name (reports, panics).
    pub name: &'static str,
    /// One program per processor.
    pub programs: Vec<Program>,
    /// Initial memory image.
    pub init: BTreeMap<u64, u64>,
}

impl Litmus {
    /// Enumerates the final states allowed under `model`.
    #[must_use]
    pub fn allowed_outcomes(&self, model: Model) -> Vec<Outcome> {
        let r = mcsim_oracle::outcomes(model, &self.programs, &self.init, OracleConfig::default());
        assert!(
            r.complete,
            "{}: oracle exceeded its state budget under {model}",
            self.name
        );
        r.outcomes.into_iter().collect()
    }

    /// Enumerates the sequentially consistent final states.
    #[must_use]
    pub fn sc_outcomes(&self) -> Vec<Outcome> {
        self.allowed_outcomes(Model::Sc)
    }

    /// Simulates one execution under `cfg`.
    #[must_use]
    pub fn run(&self, cfg: MachineConfig) -> RunReport {
        let mut m = Machine::new(cfg, self.programs.clone());
        for (&a, &v) in &self.init {
            m.write_memory(a, v);
        }
        m.run()
    }

    /// Projects a run report onto the oracle's outcome space: full
    /// register files plus the union of memory addresses any oracle
    /// outcome mentions.
    #[must_use]
    pub fn outcome_of(&self, report: &RunReport, oracle: &[Outcome]) -> Outcome {
        let keys: std::collections::BTreeSet<u64> = oracle
            .iter()
            .flat_map(|o| o.memory.keys().copied())
            .collect();
        Outcome {
            regs: report
                .regfiles
                .iter()
                .map(|rf| rf.iter().map(|(_, v)| v).collect())
                .collect(),
            memory: keys.iter().map(|&k| (k, report.mem_word(k))).collect(),
        }
    }

    /// Whether `report`'s final state is allowed under `model` — the
    /// conformance check. Memory comparison is over the union of
    /// oracle-mentioned addresses (both sides default untouched words to
    /// their initial value).
    #[must_use]
    pub fn is_allowed_under(&self, model: Model, report: &RunReport) -> bool {
        let allowed = self.allowed_outcomes(model);
        let observed = self.outcome_of(report, &allowed);
        allowed.iter().any(|o| {
            o.regs == observed.regs && observed.memory.iter().all(|(k, v)| o.mem(*k) == *v)
        })
    }

    /// Whether `report`'s final state is sequentially consistent — the
    /// SC specialization of [`Litmus::is_allowed_under`].
    #[must_use]
    pub fn is_sequentially_consistent(&self, report: &RunReport) -> bool {
        self.is_allowed_under(Model::Sc, report)
    }
}

// Shared-location map used by the standard suite.
const X: u64 = 0x1000;
const Y: u64 = 0x1100;
const DATA: u64 = 0x1200;
const FLAG: u64 = 0x1300;

/// Store buffering (the Dekker core): `P0: x=1; r1=y` / `P1: y=1; r1=x`.
/// SC forbids both loads returning 0; relaxed models allow it.
#[must_use]
pub fn store_buffering() -> Litmus {
    let p0 = ProgramBuilder::new("sb-p0")
        .store(X, 1u64)
        .load(R1, Y)
        .halt()
        .build()
        .unwrap();
    let p1 = ProgramBuilder::new("sb-p1")
        .store(Y, 1u64)
        .load(R1, X)
        .halt()
        .build()
        .unwrap();
    Litmus {
        name: "store-buffering",
        programs: vec![p0, p1],
        init: BTreeMap::new(),
    }
}

/// Message passing with release/acquire synchronization:
/// `P0: data=42; flag=1(rel)` / `P1: spin flag(acq); r2=data`.
/// Data-race-free, so every model must deliver 42.
#[must_use]
pub fn message_passing() -> Litmus {
    let p0 = ProgramBuilder::new("mp-p0")
        .store(DATA, 42u64)
        .store_release(FLAG, 1u64)
        .halt()
        .build()
        .unwrap();
    let p1 = ProgramBuilder::new("mp-p1")
        .spin_until(FLAG, 1, R1)
        .load(R2, DATA)
        .halt()
        .build()
        .unwrap();
    Litmus {
        name: "message-passing",
        programs: vec![p0, p1],
        init: BTreeMap::new(),
    }
}

/// Racy message passing: the flag write is an *ordinary* store. Under SC
/// the data must still follow the flag; relaxed models may reorder.
#[must_use]
pub fn message_passing_racy() -> Litmus {
    let p0 = ProgramBuilder::new("mpr-p0")
        .store(DATA, 42u64)
        .store(FLAG, 1u64)
        .halt()
        .build()
        .unwrap();
    let p1 = ProgramBuilder::new("mpr-p1")
        .load(R1, FLAG)
        .load(R2, DATA)
        .halt()
        .build()
        .unwrap();
    Litmus {
        name: "message-passing-racy",
        programs: vec![p0, p1],
        init: BTreeMap::new(),
    }
}

/// Load buffering: `P0: r1=x; y=1` / `P1: r1=y; x=1`.
/// SC forbids both loads returning 1.
#[must_use]
pub fn load_buffering() -> Litmus {
    let p0 = ProgramBuilder::new("lb-p0")
        .load(R1, X)
        .store(Y, 1u64)
        .halt()
        .build()
        .unwrap();
    let p1 = ProgramBuilder::new("lb-p1")
        .load(R1, Y)
        .store(X, 1u64)
        .halt()
        .build()
        .unwrap();
    Litmus {
        name: "load-buffering",
        programs: vec![p0, p1],
        init: BTreeMap::new(),
    }
}

/// Coherence of reads to one location: `P0: x=1` / `P1: r1=x; r2=x`.
/// Reads of the same location must not go backwards (r1=1, r2=0
/// forbidden even under relaxed models — per-location coherence).
#[must_use]
pub fn coherence_rr() -> Litmus {
    let p0 = ProgramBuilder::new("corr-p0")
        .store(X, 1u64)
        .halt()
        .build()
        .unwrap();
    let p1 = ProgramBuilder::new("corr-p1")
        .load(R1, X)
        .load(R2, X)
        .halt()
        .build()
        .unwrap();
    Litmus {
        name: "coherence-rr",
        programs: vec![p0, p1],
        init: BTreeMap::new(),
    }
}

/// Dekker-style mutual exclusion *without* atomics — correct only under
/// SC. Each processor raises its own flag, checks the peer's, and only
/// enters the critical section (incrementing a counter read-modify-write
/// style with plain loads/stores) when the peer's flag is down;
/// otherwise it skips.
#[must_use]
pub fn dekker_attempt() -> Litmus {
    const ME0: u64 = 0x1400;
    const ME1: u64 = 0x1500;
    const COUNT: u64 = 0x1600;
    let side = |name: &'static str, mine: u64, theirs: u64| {
        let mut b = ProgramBuilder::new(name);
        let skip = b.label();
        b.store(mine, 1u64)
            .load(R1, theirs)
            .branch(
                mcsim_isa::CmpOp::Ne,
                R1,
                0u64,
                skip,
                mcsim_isa::BranchHint::Dynamic,
            )
            .load(R2, COUNT)
            .alu(R2, mcsim_isa::AluOp::Add, R2, 1u64)
            .store(COUNT, R2)
            .bind(skip)
            .halt()
            .build()
            .unwrap()
    };
    Litmus {
        name: "dekker-attempt",
        programs: vec![side("dekker-p0", ME0, ME1), side("dekker-p1", ME1, ME0)],
        init: BTreeMap::new(),
    }
}

/// Independent reads of independent writes:
/// `P0: x=1` / `P1: y=1` / `P2: r1=x; r2=y` / `P3: r1=y; r2=x`.
/// The interesting outcome is the two readers disagreeing on the order
/// of the two writes (P2 sees x first, P3 sees y first) — possible only
/// on non-store-atomic machines. This simulator's coherence protocol
/// serializes writes through the directory, so every model forbids it;
/// the oracle's single atomic memory encodes the same guarantee.
#[must_use]
pub fn iriw() -> Litmus {
    let writer = |name: &'static str, addr: u64| {
        ProgramBuilder::new(name)
            .store(addr, 1u64)
            .halt()
            .build()
            .unwrap()
    };
    let reader = |name: &'static str, first: u64, second: u64| {
        ProgramBuilder::new(name)
            .load(R1, first)
            .load(R2, second)
            .halt()
            .build()
            .unwrap()
    };
    Litmus {
        name: "iriw",
        programs: vec![
            writer("iriw-p0", X),
            writer("iriw-p1", Y),
            reader("iriw-p2", X, Y),
            reader("iriw-p3", Y, X),
        ],
        init: BTreeMap::new(),
    }
}

/// 2+2W: `P0: x=1; y=2` / `P1: y=1; x=2`. The outcome x=1 ∧ y=1 needs
/// each processor's *first* store to overwrite the other's *second* —
/// forbidden while store→store order holds (SC, TSO, PC), allowed once
/// stores may drain out of order (PSO, WC, RC).
#[must_use]
pub fn two_plus_two_w() -> Litmus {
    let side = |name: &'static str, first: u64, second: u64| {
        ProgramBuilder::new(name)
            .store(first, 1u64)
            .store(second, 2u64)
            .halt()
            .build()
            .unwrap()
    };
    Litmus {
        name: "2+2w",
        programs: vec![side("2+2w-p0", X, Y), side("2+2w-p1", Y, X)],
        init: BTreeMap::new(),
    }
}

/// The standard suite.
#[must_use]
pub fn standard_suite() -> Vec<Litmus> {
    vec![
        store_buffering(),
        message_passing(),
        message_passing_racy(),
        load_buffering(),
        coherence_rr(),
        dekker_attempt(),
    ]
}

/// The conformance corpus: the classic named litmus shapes whose
/// per-model allowed sets are pinned as goldens and checked against the
/// simulator across `Model::ALL_EXTENDED` × techniques × seeds.
#[must_use]
pub fn conformance_corpus() -> Vec<Litmus> {
    vec![
        store_buffering(),
        message_passing(),
        load_buffering(),
        iriw(),
        coherence_rr(),
        two_plus_two_w(),
    ]
}

/// Renders the allowed-outcome sets of every corpus test under every
/// model as stable, diff-friendly text — the golden-file format and the
/// output of `mcsim oracle print`.
#[must_use]
pub fn render_allowed_sets(corpus: &[Litmus]) -> String {
    let mut out = String::new();
    for l in corpus {
        for model in Model::ALL_EXTENDED {
            let allowed = l.allowed_outcomes(model);
            let _ = writeln!(
                out,
                "== {} @ {} ({} outcomes)",
                l.name,
                model.name(),
                allowed.len()
            );
            out.push_str(&mcsim_oracle::format_outcomes(&allowed));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_oracles_are_finite_and_nonempty() {
        for l in standard_suite() {
            let o = l.sc_outcomes();
            assert!(!o.is_empty(), "{}", l.name);
        }
    }

    #[test]
    fn sb_oracle_forbids_zero_zero() {
        let l = store_buffering();
        for o in l.sc_outcomes() {
            assert!(
                !(o.reg(0, R1) == 0 && o.reg(1, R1) == 0),
                "SC forbids (0, 0)"
            );
        }
    }

    #[test]
    fn mp_oracle_always_delivers() {
        let l = message_passing();
        for o in l.sc_outcomes() {
            assert_eq!(o.reg(1, R2), 42);
        }
    }
}
