//! The paper's own code segments (Figure 2 and Figure 5).
//!
//! Addresses are chosen so every named location sits on its own cache
//! line (64-byte blocks), matching the paper's implicit assumption that
//! `lock L`, `A`, `B`, `C`, `D`, and `E[D]` are independent coherence
//! units.

use mcsim_core::Machine;
use mcsim_isa::reg::{R1, R2, R3, R4};
use mcsim_isa::{AddrExpr, AluOp, Program, ProgramBuilder};

/// The lock variable `L`.
pub const LOCK: u64 = 0x40;
/// Location `A` (Example 1 / Figure 5).
pub const A: u64 = 0x1000;
/// Location `B`.
pub const B: u64 = 0x1080;
/// Location `C`.
pub const C: u64 = 0x1100;
/// Location `D`.
pub const D: u64 = 0x1180;
/// Base of array `E` (indexed by the value loaded from `D`, scale 8).
pub const E_BASE: u64 = 0x2000;
/// The initial value stored at `D` in the consumer examples.
pub const D_VALUE: u64 = 3;
/// The element of `E` that `E[D]` resolves to.
pub const E_AT_D: u64 = E_BASE + D_VALUE * 8;

/// Figure 2, left — the producer:
///
/// ```text
/// lock    L    (miss)
/// write   A    (miss)
/// write   B    (miss)
/// unlock  L    (hit)
/// ```
#[must_use]
pub fn example1() -> Program {
    ProgramBuilder::new("fig2-example1-producer")
        .lock(LOCK, R1)
        .store(A, 1u64)
        .store(B, 2u64)
        .unlock(LOCK)
        .halt()
        .build()
        .expect("static program is valid")
}

/// Figure 2, right — the consumer:
///
/// ```text
/// lock  L     (miss)
/// read  C     (miss)
/// read  D     (hit)
/// read  E[D]  (miss)
/// unlock L    (hit)
/// ```
#[must_use]
pub fn example2() -> Program {
    ProgramBuilder::new("fig2-example2-consumer")
        .lock(LOCK, R1)
        .load(R2, C)
        .load(R3, D)
        .load(R4, AddrExpr::indexed(E_BASE, R3, 8))
        .unlock(LOCK)
        .halt()
        .build()
        .expect("static program is valid")
}

/// Primes a machine for [`example2`]: `D` is resident in processor 0's
/// cache ("read D (hit)") and holds the index of the `E` element.
pub fn setup_example2(m: &mut Machine) {
    m.write_memory(D, D_VALUE);
    m.write_memory(E_AT_D, 0xE1);
    m.preload_cache(0, D, false);
}

/// Figure 5's code segment for processor 0 (run under SC with both
/// techniques):
///
/// ```text
/// read  A     (miss — dirty at processor 1, so it takes the long path
///              and the prefetched ownership of B arrives first, matching
///              the event order of the figure)
/// write B     (miss)
/// write C     (miss)
/// read  D     (hit — then invalidated mid-flight by processor 1)
/// read  E[D]  (miss)
/// ```
#[must_use]
pub fn figure5_main() -> Program {
    ProgramBuilder::new("fig5-main")
        .load(R1, A)
        .store(B, 1u64)
        .store(C, 2u64)
        .load(R3, D)
        .load(R4, AddrExpr::indexed(E_BASE, R3, 8))
        .halt()
        .build()
        .expect("static program is valid")
}

/// Figure 5's antagonist (processor 1): after a configurable delay it
/// writes `D`, invalidating processor 0's speculatively loaded copy —
/// the event the figure's steps 5–7 walk through. The delay is realized
/// with a long-latency ALU op so no extra memory traffic perturbs the
/// trace.
#[must_use]
pub fn figure5_antagonist(delay_cycles: u32, new_d: u64) -> Program {
    ProgramBuilder::new("fig5-antagonist")
        .alu_lat(R1, AluOp::Add, 0u64, 0u64, delay_cycles.max(1))
        .alu(R2, AluOp::Add, R1, new_d) // depends on the delay op
        .store(D, R2)
        .halt()
        .build()
        .expect("static program is valid")
}

/// Primes a machine for the Figure 5 pair: `A` dirty at processor 1
/// (so `read A` takes the flush path), `D` resident shared at processor
/// 0 with its index value, and both `E` elements populated.
pub fn setup_figure5(m: &mut Machine, new_d: u64) {
    m.write_memory(D, D_VALUE);
    m.write_memory(E_AT_D, 0xE1);
    m.write_memory(E_BASE + new_d * 8, 0xE2);
    m.write_memory(A, 0xA0);
    m.preload_cache(0, D, false);
    m.preload_cache(1, A, true); // dirty-remote read for processor 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::{Instr, MemFlavor};

    #[test]
    fn addresses_are_on_distinct_lines() {
        let lines: Vec<u64> = [LOCK, A, B, C, D, E_AT_D].iter().map(|a| a >> 6).collect();
        let mut dedup = lines.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(lines.len(), dedup.len(), "each location on its own line");
    }

    #[test]
    fn example1_shape() {
        let p = example1();
        assert_eq!(p.mem_instr_count(), 4, "lock, two writes, unlock");
        assert!(matches!(
            p.fetch(0),
            Some(Instr::Rmw {
                flavor: MemFlavor::Acquire,
                ..
            })
        ));
        assert!(matches!(
            p.fetch(4),
            Some(Instr::Store {
                flavor: MemFlavor::Release,
                ..
            })
        ));
    }

    #[test]
    fn example2_indexed_load_depends_on_d() {
        let p = example2();
        let Some(Instr::Load { addr, .. }) = p.fetch(4) else {
            panic!("E[D] load expected at index 4");
        };
        assert_eq!(addr.dep(), Some(R3), "E[D] must depend on the D load");
    }

    #[test]
    fn figure5_has_five_accesses() {
        assert_eq!(figure5_main().mem_instr_count(), 5);
        assert_eq!(figure5_antagonist(100, 5).mem_instr_count(), 1);
    }
}
