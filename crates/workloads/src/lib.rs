//! # mcsim-workloads — programs that exercise the techniques
//!
//! * [`paper`] — the exact code segments of the paper: Figure 2's
//!   producer (Example 1) and consumer (Example 2), and the Figure 5
//!   segment with a second processor that invalidates `D` mid-flight.
//! * [`litmus`] — classic consistency litmus tests (store buffering,
//!   message passing, load buffering, IRIW, 2+2W, coherence, Dekker
//!   mutual exclusion) wired to the per-model enumeration oracle in
//!   `mcsim-oracle`.
//! * [`generators`] — parameterized synthetic workloads: critical
//!   sections, producer/consumer hand-offs, array sweeps, pointer
//!   chases, hit/miss dependence chains (the §3.3 prefetch-limitation
//!   pattern), and seeded random program generators (data-race-free and
//!   racy) for property testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod litmus;
pub mod paper;

pub use litmus::Litmus;
