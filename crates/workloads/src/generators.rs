//! Parameterized synthetic workload generators.
//!
//! The paper's §5 argues its claims should be substantiated "with
//! extensive simulation experiments"; these generators provide the
//! workload axes those experiments sweep: synchronization density,
//! contention, hit/miss interleaving, and address-dependence depth.

use mcsim_isa::reg::{R1, R2, R3};
use mcsim_isa::{AddrExpr, AluOp, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Base address of generated shared data regions.
pub const DATA_BASE: u64 = 0x10_000;
/// Base address of generated locks.
pub const LOCK_BASE: u64 = 0x40;
/// Line stride (64-byte blocks).
pub const LINE: u64 = 64;

/// Parameters for the critical-section workload (the paper's central
/// motif: producers/consumers updating shared data under locks).
#[derive(Debug, Clone, Copy)]
pub struct CriticalSections {
    /// Number of processors.
    pub procs: usize,
    /// Critical sections each processor executes.
    pub sections: usize,
    /// Loads per section.
    pub reads: usize,
    /// Stores per section.
    pub writes: usize,
    /// Distinct locks (1 = full contention; `procs` = none).
    pub locks: usize,
    /// Distinct shared data lines per lock region.
    pub lines_per_region: usize,
    /// Local ALU work between sections (cycles).
    pub think: u32,
    /// Each processor sticks to its own lock/region (`lock = proc %
    /// locks`) instead of rotating through all of them. Private regions
    /// make the workload latency-dominated (the paper's §3.3 setting:
    /// "no other processes are writing to the locations"); rotation makes
    /// it sharing-dominated.
    pub private_regions: bool,
    /// RNG seed (address selection).
    pub seed: u64,
}

impl Default for CriticalSections {
    fn default() -> Self {
        CriticalSections {
            procs: 2,
            sections: 4,
            reads: 3,
            writes: 3,
            locks: 1,
            lines_per_region: 8,
            think: 0,
            private_regions: false,
            seed: 1,
        }
    }
}

/// Builds one program per processor: repeated lock → reads+writes →
/// unlock, data-race-free by construction (each data region is touched
/// only under its lock).
#[must_use]
pub fn critical_sections(p: &CriticalSections) -> Vec<Program> {
    assert!(p.procs > 0 && p.locks > 0 && p.lines_per_region > 0);
    let mut rng = StdRng::seed_from_u64(p.seed);
    (0..p.procs)
        .map(|proc| {
            let mut b = ProgramBuilder::new(format!("cs-p{proc}"));
            for s in 0..p.sections {
                let lock_idx = if p.private_regions {
                    proc % p.locks
                } else {
                    (proc + s) % p.locks
                };
                let lock = LOCK_BASE + (lock_idx as u64) * LINE;
                let region = DATA_BASE + (lock_idx as u64) * 0x1000;
                b = b.lock(lock, R1);
                for _ in 0..p.reads {
                    let a = region + rng.gen_range(0..p.lines_per_region as u64) * LINE;
                    b = b.load(R2, a);
                }
                for _ in 0..p.writes {
                    let a = region + rng.gen_range(0..p.lines_per_region as u64) * LINE;
                    b = b.store(a, proc as u64 + 1);
                }
                b = b.unlock(lock);
                if p.think > 0 {
                    b = b.alu_lat(R3, AluOp::Add, R3, 1u64, p.think);
                }
            }
            b.halt().build().expect("generated program is valid")
        })
        .collect()
}

/// A flag-based producer/consumer hand-off chain: `stages` processors,
/// each waiting for the previous stage's flag, transforming `values`
/// data words, and signalling the next.
#[must_use]
pub fn pipeline_handoff(stages: usize, values: usize) -> Vec<Program> {
    assert!(stages >= 2 && values >= 1);
    let flag = |s: usize| 0x8000 + (s as u64) * LINE;
    let data = |i: usize| DATA_BASE + (i as u64) * LINE;
    (0..stages)
        .map(|s| {
            let mut b = ProgramBuilder::new(format!("pipe-s{s}"));
            if s > 0 {
                b = b.spin_until(flag(s - 1), 1, R1);
            }
            for i in 0..values {
                if s == 0 {
                    b = b.store(data(i), (i + 1) as u64);
                } else {
                    b = b
                        .load(R2, data(i))
                        .alu(R2, AluOp::Add, R2, 100u64)
                        .store(data(i), R2);
                }
            }
            b = b.store_release(flag(s), 1u64);
            b.halt().build().expect("generated program is valid")
        })
        .collect()
}

/// A single-processor array sweep: `n` loads (or stores) to consecutive
/// lines — maximal pipelining opportunity, no dependences.
#[must_use]
pub fn array_sweep(n: usize, store: bool) -> Program {
    let mut b = ProgramBuilder::new(if store { "sweep-st" } else { "sweep-ld" });
    for i in 0..n {
        let a = DATA_BASE + (i as u64) * LINE;
        b = if store {
            b.store(a, i as u64)
        } else {
            b.load(R1, a)
        };
    }
    b.halt().build().expect("generated program is valid")
}

/// A pointer chase of `len` dependent loads: each load's address comes
/// from the previous load's value. No technique can pipeline it — the
/// lower bound both the paper's techniques run into.
///
/// Returns the program and the memory image encoding the chain.
#[must_use]
pub fn pointer_chase(len: usize, seed: u64) -> (Program, BTreeMap<u64, u64>) {
    assert!(len >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // Build a random permutation chain of line-aligned indices.
    let mut idx: Vec<u64> = (1..=len as u64).collect();
    for i in (1..idx.len()).rev() {
        idx.swap(i, rng.gen_range(0..=i));
    }
    let mut mem = BTreeMap::new();
    let mut prev = 0u64;
    for &next in &idx {
        mem.insert(DATA_BASE + prev * LINE, next);
        prev = next;
    }
    let mut b = ProgramBuilder::new("pointer-chase").alu(R1, AluOp::Add, 0u64, 0u64);
    for _ in 0..len {
        b = b.load(R1, AddrExpr::indexed(DATA_BASE, R1, LINE));
    }
    let p = b.halt().build().expect("generated program is valid");
    (p, mem)
}

/// The §3.3 prefetch-limitation pattern, generalized: a sequence of
/// loads where every `period`-th load *hits* in the cache and the next
/// load's address depends on the hit's value (like `read D (hit)` →
/// `read E[D]`). Prefetching pipelines the misses but cannot consume the
/// hit values out of order; speculation can.
///
/// Returns per-processor programs (one), the memory image, and the
/// addresses that must be preloaded into processor 0's cache.
#[must_use]
pub fn hit_dependence_chain(
    groups: usize,
    misses_per_group: usize,
) -> (Program, BTreeMap<u64, u64>, Vec<u64>) {
    assert!(groups >= 1 && misses_per_group >= 1);
    let mut mem = BTreeMap::new();
    let mut preload = Vec::new();
    let mut b = ProgramBuilder::new("hit-dep-chain");
    let table = 0x80_000u64;
    for g in 0..groups as u64 {
        let region = DATA_BASE + g * 0x1000;
        for m in 0..misses_per_group as u64 {
            b = b.load(R2, region + m * LINE);
        }
        // The hit whose value gates the next group's first address.
        let hit_addr = 0x60_000 + g * LINE;
        mem.insert(hit_addr, g + 1);
        preload.push(hit_addr);
        b = b.load(R1, hit_addr);
        // Dependent load: address = table + value * line.
        b = b.load(R3, AddrExpr::indexed(table, R1, LINE));
        mem.insert(table + (g + 1) * LINE, 0xBEEF);
    }
    let p = b.halt().build().expect("generated program is valid");
    (p, mem, preload)
}

/// Parameters for random program generation.
#[derive(Debug, Clone, Copy)]
pub struct RandomParams {
    /// Number of processors.
    pub procs: usize,
    /// Memory operations per processor.
    pub ops: usize,
    /// Distinct shared words.
    pub addrs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomParams {
    fn default() -> Self {
        RandomParams {
            procs: 2,
            ops: 4,
            addrs: 3,
            seed: 1,
        }
    }
}

/// Random *racy* programs: unsynchronized loads/stores over a small set
/// of shared words (plus occasional register arithmetic). Small enough
/// for the SC oracle to enumerate; used to property-test that SC
/// executions stay in the oracle set no matter which techniques are on.
#[must_use]
pub fn random_racy(p: &RandomParams) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    (0..p.procs)
        .map(|proc| {
            let mut b = ProgramBuilder::new(format!("racy-p{proc}"));
            for _ in 0..p.ops {
                let addr = DATA_BASE + rng.gen_range(0..p.addrs as u64) * LINE;
                match rng.gen_range(0..10u32) {
                    0..=4 => {
                        let dst = if rng.gen() { R1 } else { R2 };
                        b = b.load(dst, addr);
                    }
                    5..=8 => {
                        let v = rng.gen_range(1..100u64);
                        b = b.store(addr, v);
                    }
                    _ => {
                        b = b.alu(R3, AluOp::Add, R1, R2);
                    }
                }
            }
            b.halt().build().expect("generated program is valid")
        })
        .collect()
}

/// Random *data-race-free* programs: every shared access happens inside
/// a critical section on a single global lock. Any consistency model
/// must give these SC semantics (§5 of the paper).
#[must_use]
pub fn random_drf(p: &RandomParams) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xD12F);
    (0..p.procs)
        .map(|proc| {
            let mut b = ProgramBuilder::new(format!("drf-p{proc}"));
            let mut remaining = p.ops;
            while remaining > 0 {
                let burst = rng.gen_range(1..=remaining.min(3));
                b = b.lock(LOCK_BASE, R1);
                for _ in 0..burst {
                    let addr = DATA_BASE + rng.gen_range(0..p.addrs as u64) * LINE;
                    if rng.gen() {
                        b = b.load(R2, addr);
                    } else {
                        let v = rng.gen_range(1..100u64);
                        b = b.store(addr, v);
                    }
                }
                b = b.unlock(LOCK_BASE);
                remaining -= burst;
            }
            b.halt().build().expect("generated program is valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_sections_shape() {
        let ps = critical_sections(&CriticalSections::default());
        assert_eq!(ps.len(), 2);
        for p in &ps {
            // 4 sections × (lock rmw + 3 reads + 3 writes + unlock) = 32.
            assert_eq!(p.mem_instr_count(), 32);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = critical_sections(&CriticalSections::default());
        let b = critical_sections(&CriticalSections::default());
        assert_eq!(a[0].instrs(), b[0].instrs());
        let (p1, m1) = pointer_chase(5, 7);
        let (p2, m2) = pointer_chase(5, 7);
        assert_eq!(p1.instrs(), p2.instrs());
        assert_eq!(m1, m2);
    }

    #[test]
    fn pointer_chase_chain_is_complete() {
        let (_, mem) = pointer_chase(8, 3);
        // Follow the chain from 0 for 8 hops; all must exist.
        let mut cur = 0u64;
        for _ in 0..8 {
            cur = *mem
                .get(&(DATA_BASE + cur * LINE))
                .expect("chain link present");
        }
    }

    #[test]
    fn hit_dependence_chain_preloads_hits() {
        let (p, mem, preload) = hit_dependence_chain(3, 2);
        assert_eq!(preload.len(), 3);
        for a in &preload {
            assert!(mem.contains_key(a));
        }
        // 3 groups × (2 misses + hit + dependent) = 12 loads.
        assert_eq!(p.mem_instr_count(), 12);
    }

    #[test]
    fn pipeline_handoff_stage_count() {
        let ps = pipeline_handoff(3, 2);
        assert_eq!(ps.len(), 3);
        // Middle stages spin, transform, signal.
        assert!(ps[1].mem_instr_count() >= 2 * 2 + 2);
    }

    #[test]
    fn random_programs_validate() {
        for seed in 0..20 {
            let params = RandomParams {
                seed,
                ..Default::default()
            };
            for p in random_racy(&params) {
                assert!(!p.is_empty());
            }
            for p in random_drf(&params) {
                assert!(!p.is_empty());
            }
        }
    }
}
