//! Named built-in sweep specs — the experiment grids of EXPERIMENTS.md
//! expressed declaratively, shared by the `mcsim-sweep` CLI and the
//! migrated experiment binaries.

use mcsim_consistency::Model;
use mcsim_proc::Techniques;

use crate::spec::{SweepSpec, Window, WorkloadSpec};

/// A critical-section workload axis value with the repo's default region
/// geometry.
#[allow(clippy::too_many_arguments)]
fn cs(
    label: &str,
    procs: usize,
    sections: usize,
    reads: usize,
    writes: usize,
    locks: usize,
    think: u32,
    private_regions: bool,
) -> WorkloadSpec {
    WorkloadSpec::CriticalSections {
        label: label.to_string(),
        procs,
        sections,
        reads,
        writes,
        locks,
        lines_per_region: 8,
        think,
        private_regions,
    }
}

/// E6 — §5 model equalization on synthetic critical-section workloads:
/// the full extended model matrix × all four technique settings on
/// three contention regimes.
#[must_use]
pub fn e6_equalization() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "e6-equalization",
        "§5 equalization: model spread collapses once both techniques are on",
    );
    spec.models = Model::ALL_EXTENDED.to_vec();
    spec.techniques = Techniques::ALL.to_vec();
    spec.workloads = vec![
        cs(
            "uncontended (2 procs, private locks)",
            2,
            4,
            3,
            3,
            2,
            0,
            false,
        ),
        cs("contended (4 procs, one lock)", 4, 3, 2, 2, 1, 0, false),
        cs(
            "mixed (4 procs, 2 locks, think time)",
            4,
            3,
            3,
            2,
            2,
            40,
            false,
        ),
    ];
    spec
}

/// E7 — §5 rollback/reissue rates of the speculative-load buffer as
/// contention and think time vary (SC with both techniques).
#[must_use]
pub fn e7_speculation() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "e7-speculation",
        "§5 invalidations of speculated values are infrequent: rollback rates vs contention",
    );
    spec.models = vec![Model::Sc];
    spec.techniques = vec![Techniques::BOTH];
    for procs in [2usize, 4, 8] {
        for locks in [procs, 1] {
            for think in [0u32, 100] {
                let lock_desc = if locks == 1 {
                    "1 lock (contended)".to_string()
                } else {
                    format!("{locks} locks (private)")
                };
                spec.workloads.push(cs(
                    &format!("{procs} procs / {lock_desc} / think {think}"),
                    procs,
                    4,
                    3,
                    3,
                    locks,
                    think,
                    false,
                ));
            }
        }
    }
    spec
}

/// E12 — miss-latency sensitivity on the paper's Example 2 consumer:
/// the techniques' benefit grows with the latency they hide.
#[must_use]
pub fn e12_latency() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "e12-latency",
        "miss-latency sensitivity of Example 2: technique benefit grows with latency",
    );
    spec.models = vec![Model::Sc, Model::Rc];
    spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
    spec.machine.miss_latency = vec![20, 50, 100, 200, 400];
    spec.workloads = vec![WorkloadSpec::PaperExample2];
    spec
}

/// E13 — §3.2 lookahead sensitivity: a 16-line store sweep under SC with
/// both techniques, across instruction-window sizes.
#[must_use]
pub fn e13_window() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "e13-window",
        "§3.2 lookahead: shrinking the instruction window caps hidden latency",
    );
    spec.models = vec![Model::Sc];
    spec.techniques = vec![Techniques::BOTH];
    spec.machine.window = vec![
        Window::Finite { rob: 4, fetch: 1 },
        Window::Finite { rob: 8, fetch: 2 },
        Window::Finite { rob: 16, fetch: 4 },
        Window::Finite { rob: 32, fetch: 4 },
        Window::Finite { rob: 64, fetch: 8 },
        Window::Ideal,
    ];
    spec.workloads = vec![WorkloadSpec::ArraySweep {
        n: 16,
        stores: true,
    }];
    spec
}

/// E17 — processor-count scaling on private-region critical sections:
/// with disjoint data the directory pipelines all cores until its
/// single-ported bandwidth saturates.
#[must_use]
pub fn e17_scaling() -> SweepSpec {
    let mut spec = SweepSpec::new(
        "e17-scaling",
        "processor-count scaling of private critical sections (directory saturation)",
    );
    spec.models = vec![Model::Sc, Model::Rc];
    spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
    for procs in [1usize, 2, 4, 8, 12] {
        spec.workloads.push(cs(
            &format!("{procs} procs"),
            procs,
            4,
            3,
            3,
            procs,
            0,
            true,
        ));
    }
    spec
}

/// Names accepted by [`builtin`], in documentation order.
pub const BUILTIN_NAMES: [&str; 5] = [
    "e6-equalization",
    "e7-speculation",
    "e12-latency",
    "e13-window",
    "e17-scaling",
];

/// Looks up a built-in spec by name.
#[must_use]
pub fn builtin(name: &str) -> Option<SweepSpec> {
    match name {
        "e6-equalization" => Some(e6_equalization()),
        "e7-speculation" => Some(e7_speculation()),
        "e12-latency" => Some(e12_latency()),
        "e13-window" => Some(e13_window()),
        "e17-scaling" => Some(e17_scaling()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_and_validates() {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).unwrap_or_else(|| panic!("missing builtin {name}"));
            assert_eq!(spec.name, name);
            spec.validate().expect("builtin specs validate");
            assert!(!spec.is_empty());
        }
        assert!(builtin("no-such-sweep").is_none());
    }

    #[test]
    fn grid_sizes_match_experiment_definitions() {
        assert_eq!(e6_equalization().len(), 3 * 7 * 4);
        assert_eq!(e7_speculation().len(), 12);
        assert_eq!(e12_latency().len(), 5 * 2 * 2);
        assert_eq!(e13_window().len(), 6);
        assert_eq!(e17_scaling().len(), 5 * 2 * 2);
    }

    #[test]
    fn builtin_specs_round_trip_through_json() {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).expect("exists");
            let json = serde_json::to_string_pretty(&spec).expect("serializes");
            let back: SweepSpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, spec, "round trip of {name}");
            // Points (and therefore seeds) are identical after the trip.
            assert_eq!(back.points(), spec.points());
        }
    }
}
