//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names a cartesian grid over the design space the paper
//! explores — consistency models × technique combinations × machine
//! parameters × workloads — plus a seed. Expanding the spec yields a flat,
//! deterministically ordered list of [`SweepPoint`]s, each carrying its
//! own derived seed, so execution order (and thread scheduling) can never
//! influence what any point computes.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_isa::Program;
use mcsim_mem::{MemTimings, Protocol};
use mcsim_proc::{ProcConfig, Techniques};
use mcsim_workloads::generators::{
    array_sweep, critical_sections, pipeline_handoff, CriticalSections,
};
use mcsim_workloads::paper;
use serde::{Deserialize, Serialize};

/// Instruction-window axis value: the paper-calibrated ideal frontend or
/// a finite ROB/fetch-width pair (E13's lookahead sensitivity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Window {
    /// Unbounded fetch, 64-entry ROB (the paper's walk-through setting).
    Ideal,
    /// Finite reorder buffer and fetch width.
    Finite {
        /// Reorder-buffer capacity.
        rob: usize,
        /// Instructions fetched per cycle.
        fetch: usize,
    },
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Window::Ideal => write!(f, "ideal"),
            Window::Finite { rob, fetch } => write!(f, "rob{rob}/w{fetch}"),
        }
    }
}

/// Machine-parameter axes. Every listed value of every axis is crossed
/// with every other; a single-element axis pins that parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineAxes {
    /// Clean-miss latencies in cycles (each must be even and ≥ 4; the
    /// paper's calibration is 100).
    pub miss_latency: Vec<u64>,
    /// Instruction-window settings.
    pub window: Vec<Window>,
    /// Coherence protocols.
    pub protocol: Vec<Protocol>,
}

impl Default for MachineAxes {
    fn default() -> Self {
        MachineAxes {
            miss_latency: vec![100],
            window: vec![Window::Ideal],
            protocol: vec![Protocol::Invalidate],
        }
    }
}

/// A workload axis value: which programs run on the machine, with any
/// generator parameters. Workload-generator randomness (address
/// selection) draws from the *point* seed, never from global state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Lock-protected read/write sections (the paper's central motif).
    CriticalSections {
        /// Display label for result rows.
        label: String,
        /// Number of processors.
        procs: usize,
        /// Critical sections per processor.
        sections: usize,
        /// Loads per section.
        reads: usize,
        /// Stores per section.
        writes: usize,
        /// Distinct locks (1 = full contention).
        locks: usize,
        /// Shared data lines per lock region.
        lines_per_region: usize,
        /// Local ALU cycles between sections.
        think: u32,
        /// Pin each processor to its own lock/region.
        private_regions: bool,
    },
    /// The paper's Example 1 producer (§3.3).
    PaperExample1,
    /// The paper's Example 2 consumer (§3.3/§4.1), with its memory setup.
    PaperExample2,
    /// A strided walk over `n` lines, loads or stores.
    ArraySweep {
        /// Lines touched.
        n: usize,
        /// `true` = stores, `false` = loads.
        stores: bool,
    },
    /// Flag-passing pipeline across processors.
    PipelineHandoff {
        /// Pipeline stages (processors).
        stages: usize,
        /// Values pushed through the pipeline.
        values: usize,
    },
}

impl WorkloadSpec {
    /// Short label for result rows and tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::CriticalSections { label, .. } => label.clone(),
            WorkloadSpec::PaperExample1 => "example1".to_string(),
            WorkloadSpec::PaperExample2 => "example2".to_string(),
            WorkloadSpec::ArraySweep { n, stores } => {
                format!(
                    "array_sweep({n},{})",
                    if *stores { "stores" } else { "loads" }
                )
            }
            WorkloadSpec::PipelineHandoff { stages, values } => {
                format!("pipeline({stages}x{values})")
            }
        }
    }

    /// Builds the per-processor programs for this workload.
    #[must_use]
    pub fn programs(&self, seed: u64) -> Vec<Program> {
        match self {
            WorkloadSpec::CriticalSections {
                procs,
                sections,
                reads,
                writes,
                locks,
                lines_per_region,
                think,
                private_regions,
                ..
            } => critical_sections(&CriticalSections {
                procs: *procs,
                sections: *sections,
                reads: *reads,
                writes: *writes,
                locks: *locks,
                lines_per_region: *lines_per_region,
                think: *think,
                private_regions: *private_regions,
                seed,
            }),
            WorkloadSpec::PaperExample1 => vec![paper::example1()],
            WorkloadSpec::PaperExample2 => vec![paper::example2()],
            WorkloadSpec::ArraySweep { n, stores } => vec![array_sweep(*n, *stores)],
            WorkloadSpec::PipelineHandoff { stages, values } => pipeline_handoff(*stages, *values),
        }
    }

    /// Primes machine state (memory contents, cache warm-up) the workload
    /// assumes, mirroring what the hand-written experiment binaries did.
    pub fn setup(&self, m: &mut Machine) {
        if let WorkloadSpec::PaperExample2 = self {
            paper::setup_example2(m);
        }
    }
}

/// A declarative, serializable description of one experiment sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Sweep name (used in artifacts and progress output).
    pub name: String,
    /// One-line description of what the sweep shows.
    pub description: String,
    /// Root seed; every point derives its own seed from this and its
    /// index, so adding points never perturbs existing ones' programs.
    pub seed: u64,
    /// Consistency models to cross.
    pub models: Vec<Model>,
    /// Technique combinations to cross.
    pub techniques: Vec<Techniques>,
    /// Machine-parameter axes.
    pub machine: MachineAxes,
    /// Workloads to cross.
    pub workloads: Vec<WorkloadSpec>,
    /// Cycle budget per point; a point reaching it is recorded as a
    /// failed cell, not an abort.
    pub max_cycles: u64,
}

impl SweepSpec {
    /// A spec with the paper-calibrated machine and a 2M-cycle budget,
    /// ready for axes to be filled in.
    #[must_use]
    pub fn new(name: &str, description: &str) -> Self {
        SweepSpec {
            name: name.to_string(),
            description: description.to_string(),
            seed: 1,
            models: vec![Model::Sc],
            techniques: vec![Techniques::BOTH],
            machine: MachineAxes::default(),
            workloads: Vec::new(),
            max_cycles: MachineConfig::paper().max_cycles,
        }
    }

    /// Checks the spec describes a non-empty, well-formed grid.
    ///
    /// Parameter values that only fail *inside* a run (e.g. a workload
    /// with zero locks) are deliberately not rejected here: the executor
    /// records such points as failed cells, keeping the rest of the grid
    /// alive.
    ///
    /// # Errors
    /// A human-readable message naming the empty axis.
    pub fn validate(&self) -> Result<(), String> {
        for (axis, empty) in [
            ("models", self.models.is_empty()),
            ("techniques", self.techniques.is_empty()),
            ("machine.miss_latency", self.machine.miss_latency.is_empty()),
            ("machine.window", self.machine.window.is_empty()),
            ("machine.protocol", self.machine.protocol.is_empty()),
            ("workloads", self.workloads.is_empty()),
        ] {
            if empty {
                return Err(format!("sweep '{}': axis '{axis}' is empty", self.name));
            }
        }
        if self.max_cycles == 0 {
            return Err(format!("sweep '{}': max_cycles is zero", self.name));
        }
        Ok(())
    }

    /// Total number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.machine.protocol.len()
            * self.machine.miss_latency.len()
            * self.machine.window.len()
            * self.models.len()
            * self.techniques.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into its flat, deterministic point list.
    ///
    /// Axis nesting order (outermost first): workload, protocol,
    /// miss latency, window, model, techniques. The order is part of the
    /// spec's contract: point indices — and therefore per-point seeds —
    /// are stable for a given spec.
    #[must_use]
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut out = Vec::with_capacity(self.len());
        for workload in &self.workloads {
            for &protocol in &self.machine.protocol {
                for &miss_latency in &self.machine.miss_latency {
                    for &window in &self.machine.window {
                        for &model in &self.models {
                            for &techniques in &self.techniques {
                                let index = out.len();
                                out.push(SweepPoint {
                                    index,
                                    seed: derive_seed(self.seed, index as u64),
                                    workload: workload.clone(),
                                    protocol,
                                    miss_latency,
                                    window,
                                    model,
                                    techniques,
                                    max_cycles: self.max_cycles,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One fully instantiated grid point, self-contained: everything needed
/// to run it (and nothing about when or where it runs).
///
/// Serializable so the point has a *canonical form*: the journal layer
/// content-addresses each point by hashing its canonical JSON (see
/// [`crate::journal::point_hash`]), which is what lets a resumed or
/// process-isolated sweep prove it is completing the same computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Position in the spec's expansion order.
    pub index: usize,
    /// Seed for this point's workload generation.
    pub seed: u64,
    /// Workload to run.
    pub workload: WorkloadSpec,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Clean-miss latency in cycles.
    pub miss_latency: u64,
    /// Instruction-window setting.
    pub window: Window,
    /// Consistency model.
    pub model: Model,
    /// Technique combination.
    pub techniques: Techniques,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl SweepPoint {
    /// The machine configuration this point describes.
    ///
    /// # Panics
    /// If `miss_latency` is odd or below 4 (surfaces as a failed cell
    /// when run through the executor).
    #[must_use]
    pub fn machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::paper_with(self.model, self.techniques);
        cfg.mem.timings = MemTimings::with_miss_latency(self.miss_latency);
        cfg.mem.protocol = self.protocol;
        cfg.proc = match self.window {
            Window::Ideal => ProcConfig::paper(self.techniques),
            Window::Finite { rob, fetch } => ProcConfig::with_window(self.techniques, rob, fetch),
        };
        cfg.max_cycles = self.max_cycles;
        cfg
    }
}

/// Derives a point seed from the spec seed and point index (splitmix64
/// finalizer over their combination — decorrelated even for adjacent
/// indices).
#[must_use]
pub fn derive_seed(spec_seed: u64, index: u64) -> u64 {
    let mut z = spec_seed
        .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("tiny", "unit-test spec");
        spec.models = vec![Model::Sc, Model::Rc];
        spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
        spec.machine.miss_latency = vec![20, 100];
        spec.workloads = vec![
            WorkloadSpec::PaperExample1,
            WorkloadSpec::ArraySweep { n: 4, stores: true },
        ];
        spec
    }

    #[test]
    fn point_count_is_cartesian_product() {
        let spec = tiny_spec();
        assert_eq!(spec.len(), 2 * 2 * 2 * 2);
        assert_eq!(spec.points().len(), spec.len());
    }

    #[test]
    fn expansion_order_is_stable_and_indexed() {
        let points = tiny_spec().points();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Innermost axis is techniques, then models.
        assert_eq!(points[0].techniques, Techniques::NONE);
        assert_eq!(points[1].techniques, Techniques::BOTH);
        assert_eq!(points[0].model, Model::Sc);
        assert_eq!(points[2].model, Model::Rc);
        // Outermost axis is the workload.
        assert_eq!(points[0].workload.label(), "example1");
        assert_eq!(
            points.last().unwrap().workload.label(),
            "array_sweep(4,stores)"
        );
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        let points = tiny_spec().points();
        assert_eq!(points[0].seed, derive_seed(1, 0));
        let mut seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(
            seeds.len(),
            points.len(),
            "per-point seeds must be distinct"
        );
        // Changing the spec seed changes every point seed.
        let mut other = tiny_spec();
        other.seed = 2;
        assert_ne!(other.points()[0].seed, points[0].seed);
    }

    #[test]
    fn validate_rejects_empty_axes() {
        let mut spec = tiny_spec();
        spec.models.clear();
        assert!(spec.validate().unwrap_err().contains("models"));
        let mut spec = tiny_spec();
        spec.workloads.clear();
        assert!(spec.validate().unwrap_err().contains("workloads"));
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn machine_config_applies_all_axes() {
        let mut spec = tiny_spec();
        spec.machine.window = vec![Window::Finite { rob: 8, fetch: 2 }];
        spec.machine.protocol = vec![Protocol::Update];
        let p = &spec.points()[0];
        let cfg = p.machine_config();
        assert_eq!(cfg.model, Model::Sc);
        assert_eq!(cfg.mem.protocol, Protocol::Update);
        assert_eq!(cfg.mem.timings.clean_miss(), 20);
        assert_eq!(cfg.proc.rob_size, 8);
        assert_eq!(cfg.proc.fetch_width, Some(2));
    }
}
