//! Execution telemetry: lock-free counters workers bump as points
//! finish, and periodic snapshots (points/sec, simulated cycles/sec,
//! ETA) rendered to stderr while a sweep runs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use mcsim_core::RunTelemetry;

/// The fast-forward leverage ratio `(stepped + skipped) / stepped`,
/// defined to be **finite for every input** so telemetry snapshots and
/// timing JSON can never carry a NaN or infinity:
///
/// * nothing recorded yet (`0, 0`) → `1.0` (no skipping happened);
/// * skipped cycles with zero stepped ones — possible when a view is
///   taken between a worker's two counter bumps, or when every recorded
///   point failed before stepping — divide by an imputed single stepped
///   cycle instead of zero.
#[must_use]
pub fn fast_forward_speedup(stepped: u64, skipped: u64) -> f64 {
    if stepped == 0 && skipped == 0 {
        1.0
    } else {
        (stepped + skipped) as f64 / stepped.max(1) as f64
    }
}

/// Shared counters for one sweep execution. Workers only ever add;
/// the telemetry thread only ever reads.
#[derive(Debug)]
pub struct ProgressState {
    total: usize,
    completed: AtomicUsize,
    failed: AtomicUsize,
    resumed: AtomicUsize,
    sim_cycles: AtomicU64,
    stepped_cycles: AtomicU64,
    skipped_cycles: AtomicU64,
    started: Instant,
}

impl ProgressState {
    /// Fresh counters for a sweep of `total` points.
    #[must_use]
    pub fn new(total: usize) -> Self {
        ProgressState {
            total,
            completed: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            resumed: AtomicUsize::new(0),
            sim_cycles: AtomicU64::new(0),
            stepped_cycles: AtomicU64::new(0),
            skipped_cycles: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Records one finished point: the simulated cycles it covered
    /// (0 for failed points) and how its machine loop covered them.
    pub fn record(&self, cycles: u64, failed: bool, telemetry: &RunTelemetry) {
        self.sim_cycles.fetch_add(cycles, Ordering::Relaxed);
        self.stepped_cycles
            .fetch_add(telemetry.stepped_cycles, Ordering::Relaxed);
        self.skipped_cycles
            .fetch_add(telemetry.skipped_cycles, Ordering::Relaxed);
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one point replayed from a journal: counted as completed
    /// (and failed, if its journaled outcome was a failure) but kept out
    /// of the cycle-rate counters, which describe *this* execution.
    pub fn record_resumed(&self, failed: bool) {
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.resumed.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough view for display (counters are relaxed; the
    /// completed count may trail the cycle total by a point).
    #[must_use]
    pub fn snapshot(&self) -> ProgressSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        let points_per_sec = if elapsed > 0.0 {
            completed as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(completed);
        let stepped = self.stepped_cycles.load(Ordering::Relaxed);
        let skipped = self.skipped_cycles.load(Ordering::Relaxed);
        ProgressSnapshot {
            total: self.total,
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            elapsed_secs: elapsed,
            points_per_sec,
            sim_cycles_per_sec: if elapsed > 0.0 {
                self.sim_cycles.load(Ordering::Relaxed) as f64 / elapsed
            } else {
                0.0
            },
            fast_forward_speedup: fast_forward_speedup(stepped, skipped),
            eta_secs: if points_per_sec > 0.0 {
                remaining as f64 / points_per_sec
            } else {
                f64::INFINITY
            },
        }
    }

    /// Whether every point has been recorded.
    #[must_use]
    pub fn done(&self) -> bool {
        self.completed.load(Ordering::Relaxed) >= self.total
    }
}

/// One rendered view of the counters.
#[derive(Debug, Clone, Copy)]
pub struct ProgressSnapshot {
    /// Grid size.
    pub total: usize,
    /// Points finished (any outcome), including resumed ones.
    pub completed: usize,
    /// Points that timed out, failed a guard check, panicked, or lost
    /// their worker process.
    pub failed: usize,
    /// Points replayed from a journal rather than executed.
    pub resumed: usize,
    /// Wall seconds since the sweep started.
    pub elapsed_secs: f64,
    /// Completion rate.
    pub points_per_sec: f64,
    /// Simulated cycles retired per wall second.
    pub sim_cycles_per_sec: f64,
    /// Simulated cycles per stepped cycle so far (1.0 = no skipping).
    pub fast_forward_speedup: f64,
    /// Estimated seconds to completion at the current rate.
    pub eta_secs: f64,
}

impl std::fmt::Display for ProgressSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} points ({} failed{}) | {:.1} pts/s | {:.2}M sim-cycles/s | {:.1}x ff | ETA {}",
            self.completed,
            self.total,
            self.failed,
            if self.resumed > 0 {
                format!(", {} resumed", self.resumed)
            } else {
                String::new()
            },
            self.points_per_sec,
            self.sim_cycles_per_sec / 1e6,
            self.fast_forward_speedup,
            if self.eta_secs.is_finite() {
                format!("{:.0}s", self.eta_secs)
            } else {
                "-".to_string()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn telemetry(stepped: u64, skipped: u64) -> RunTelemetry {
        RunTelemetry {
            stepped_cycles: stepped,
            skipped_cycles: skipped,
            spans: u64::from(skipped > 0),
        }
    }

    #[test]
    fn counters_accumulate() {
        let p = ProgressState::new(3);
        assert!(!p.done());
        p.record(100, false, &telemetry(100, 0));
        p.record(0, true, &telemetry(0, 0));
        p.record(50, false, &telemetry(10, 40));
        assert!(p.done());
        let s = p.snapshot();
        assert_eq!((s.completed, s.failed, s.total), (3, 1, 3));
        assert!(s.points_per_sec > 0.0);
        assert!(s.eta_secs.abs() < 1e-9);
        // 150 total machine cycles, 110 stepped.
        assert!((s.fast_forward_speedup - 150.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_ratio_is_finite_for_every_input() {
        // The regression this pins: a view taken before any stepped
        // cycles are recorded must not divide by zero — telemetry (and
        // the timing JSON it feeds) must never contain NaN or inf.
        assert_eq!(fast_forward_speedup(0, 0), 1.0);
        assert_eq!(fast_forward_speedup(0, 500), 500.0);
        assert_eq!(fast_forward_speedup(100, 0), 1.0);
        assert_eq!(fast_forward_speedup(100, 900), 10.0);
        for (stepped, skipped) in [(0, 0), (0, 7), (3, 0), (u64::MAX / 2, u64::MAX / 2)] {
            let s = fast_forward_speedup(stepped, skipped);
            assert!(s.is_finite(), "({stepped},{skipped}) -> {s}");
        }
    }

    #[test]
    fn early_snapshot_is_finite_and_renderable() {
        let p = ProgressState::new(4);
        let s = p.snapshot(); // before any record()
        assert!(s.fast_forward_speedup.is_finite());
        assert!(s.points_per_sec.is_finite());
        assert!(s.sim_cycles_per_sec.is_finite());
        let line = s.to_string();
        assert!(line.contains("0/4 points"), "{line}");
        assert!(!line.contains("NaN") && !line.contains("inf"), "{line}");
    }

    #[test]
    fn resumed_points_count_as_completed_not_rate() {
        let p = ProgressState::new(3);
        p.record_resumed(false);
        p.record_resumed(true);
        p.record(50, false, &telemetry(10, 40));
        assert!(p.done());
        let s = p.snapshot();
        assert_eq!((s.completed, s.failed, s.resumed), (3, 1, 2));
        let line = s.to_string();
        assert!(line.contains("2 resumed"), "{line}");
    }

    #[test]
    fn snapshot_renders() {
        let p = ProgressState::new(2);
        p.record(1_000_000, false, &telemetry(100_000, 900_000));
        let line = p.snapshot().to_string();
        assert!(line.contains("1/2 points"), "{line}");
        assert!(line.contains("10.0x ff"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }
}
