//! # mcsim-sweep — declarative, deterministic, parallel experiment sweeps
//!
//! Every quantitative claim of the paper is a comparison across a grid —
//! consistency models × techniques × machine parameters × workloads. This
//! crate turns such grids into data:
//!
//! * [`SweepSpec`] describes the grid declaratively and round-trips
//!   through JSON, so experiments are artifacts, not ad-hoc loops.
//! * [`run_sweep`] fans the expanded points across scoped worker threads
//!   (`--jobs N`); every point derives its configuration, programs and
//!   seed from the spec alone, so the assembled [`SweepResult`] is
//!   bit-identical whatever the worker count — parallelism buys wall
//!   time only.
//! * [`PointRecord`] rows carry exact simulated counts (cycles,
//!   prefetches, rollbacks, …); wall-clock telemetry lives separately in
//!   [`SweepTiming`]. JSON and CSV writers plus the generalized
//!   fixed-width/markdown table renderers sit on top.
//! * A point that exhausts its cycle budget, fails a guard check
//!   (invariant violation, protocol fault, watchdog), or panics becomes a
//!   failed cell ([`PointOutcome::TimedOut`] / [`PointOutcome::Failed`] /
//!   [`PointOutcome::Panicked`]); the rest of the grid keeps running.
//! * Sweeps are **crash-safe**: every grid point is content-addressed
//!   ([`journal::point_hash`]), completed points stream to a JSON-lines
//!   journal the moment they finish, and `--resume` replays the journal
//!   and executes only the remainder — byte-identical to an
//!   uninterrupted run. `--isolate process` runs each point in a
//!   supervised child process ([`supervise`]) with a wall deadline and
//!   bounded, deterministic retry of transient worker losses, so even an
//!   abort or OOM kill costs one cell, not the sweep.
//!
//! The named grids of EXPERIMENTS.md live in [`builtin`]; the
//! `mcsim-sweep` binary runs either a built-in or a spec file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod exec;
pub mod journal;
pub mod progress;
pub mod result;
pub mod spec;
pub mod supervise;
pub mod table;

pub use builtin::{builtin, BUILTIN_NAMES};
pub use exec::{execute_point, run_sweep, ExecOptions};
pub use journal::{point_hash, spec_hash, JournalEntry, JournalLine, JournalWriter};
pub use progress::{fast_forward_speedup, ProgressSnapshot, ProgressState};
pub use result::{PointMetrics, PointOutcome, PointRecord, SweepResult, SweepRun, SweepTiming};
pub use spec::{derive_seed, MachineAxes, SweepPoint, SweepSpec, Window, WorkloadSpec};
pub use supervise::{Isolation, RetryPolicy, Supervisor};
pub use table::{format_table, markdown_table, model_spread, render_groups, TableCell};
