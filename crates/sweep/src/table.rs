//! Table rendering generalized over result-row types.
//!
//! The fixed-width and markdown model × technique tables originally lived
//! on `mcsim_core::MatrixRow`; the [`TableCell`] trait lets the same
//! renderers consume sweep [`PointRecord`]s (where a failed cell renders
//! as `-`) and any future row type.

use std::fmt::Write as _;

use mcsim_consistency::Model;
use mcsim_core::MatrixRow;
use mcsim_proc::Techniques;

use crate::result::{PointRecord, SweepResult};

/// A result row a model × technique table can be built from.
pub trait TableCell {
    /// Consistency model of the cell.
    fn model(&self) -> Model;
    /// Technique combination of the cell.
    fn techniques(&self) -> Techniques;
    /// Cycles, when the cell completed.
    fn cycles(&self) -> Option<u64>;
}

impl TableCell for MatrixRow {
    fn model(&self) -> Model {
        self.model
    }

    fn techniques(&self) -> Techniques {
        self.techniques
    }

    fn cycles(&self) -> Option<u64> {
        Some(self.cycles)
    }
}

impl TableCell for PointRecord {
    fn model(&self) -> Model {
        self.model
    }

    fn techniques(&self) -> Techniques {
        self.techniques
    }

    fn cycles(&self) -> Option<u64> {
        self.outcome.cycles()
    }
}

impl<T: TableCell> TableCell for &T {
    fn model(&self) -> Model {
        (*self).model()
    }

    fn techniques(&self) -> Techniques {
        (*self).techniques()
    }

    fn cycles(&self) -> Option<u64> {
        (*self).cycles()
    }
}

/// Distinct models (first-appearance order) and techniques (ablation
/// order) present in `rows`.
fn axes<T: TableCell>(rows: &[T]) -> (Vec<Model>, Vec<Techniques>) {
    let mut models: Vec<Model> = Vec::new();
    for r in rows {
        if !models.contains(&r.model()) {
            models.push(r.model());
        }
    }
    let mut techs: Vec<Techniques> = rows.iter().map(TableCell::techniques).collect();
    techs.sort_by_key(|t| (t.prefetch, t.speculative_loads));
    techs.dedup();
    (models, techs)
}

fn cell<T: TableCell>(rows: &[T], m: Model, t: Techniques) -> Option<u64> {
    rows.iter()
        .find(|r| r.model() == m && r.techniques() == t)
        .and_then(TableCell::cycles)
}

/// Fixed-width table: one row per model, one cycles column per technique
/// combination, plus the speedup of the full proposal (`pf+spec`) over
/// the conventional implementation (`base`). Failed cells render as `-`.
#[must_use]
pub fn format_table<T: TableCell>(title: &str, rows: &[T]) -> String {
    let (models, techs) = axes(rows);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<6}", "model");
    for t in &techs {
        let _ = write!(out, " {:>10}", t.label());
    }
    let _ = writeln!(out, " {:>9}", "speedup");
    for m in models {
        let _ = write!(out, "{:<6}", m.name());
        for t in &techs {
            match cell(rows, m, *t) {
                Some(c) => {
                    let _ = write!(out, " {c:>10}");
                }
                None => {
                    let _ = write!(out, " {:>10}", "-");
                }
            }
        }
        let base = cell(rows, m, Techniques::NONE);
        let best = cell(rows, m, Techniques::BOTH);
        match (base, best) {
            (Some(b), Some(x)) if x > 0 => {
                let _ = writeln!(out, " {:>8.2}x", b as f64 / x as f64);
            }
            _ => {
                let _ = writeln!(out, " {:>9}", "-");
            }
        }
    }
    out
}

/// Markdown variant of [`format_table`], suitable for pasting into
/// EXPERIMENTS.md.
#[must_use]
pub fn markdown_table<T: TableCell>(rows: &[T]) -> String {
    let (models, techs) = axes(rows);
    let mut out = String::from("| model |");
    for t in &techs {
        let _ = write!(out, " {} |", t.label());
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &techs {
        out.push_str("---|");
    }
    out.push('\n');
    for m in models {
        let _ = write!(out, "| {} |", m.name());
        for t in &techs {
            match cell(rows, m, *t) {
                Some(c) => {
                    let _ = write!(out, " {c} |");
                }
                None => out.push_str(" - |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Relative spread of cycle counts across models for one technique
/// setting — `(max - min) / min` (the equalization metric).
#[must_use]
pub fn model_spread<T: TableCell>(rows: &[T], t: Techniques) -> f64 {
    let cycles: Vec<u64> = rows
        .iter()
        .filter(|r| r.techniques() == t)
        .filter_map(TableCell::cycles)
        .collect();
    match (cycles.iter().min(), cycles.iter().max()) {
        (Some(&min), Some(&max)) if min > 0 => (max - min) as f64 / min as f64,
        _ => 0.0,
    }
}

/// Renders every machine-parameter group of a sweep as a titled
/// fixed-width table, in expansion order.
#[must_use]
pub fn render_groups(result: &SweepResult) -> String {
    let mut out = String::new();
    let mut seen: Vec<String> = Vec::new();
    for row in &result.rows {
        let key = row.group_key();
        let title = format!(
            "{} | {:?} protocol | miss {} | window {}",
            key.0, key.1, key.2, key.3
        );
        if seen.contains(&title) {
            continue;
        }
        let group: Vec<&PointRecord> = result
            .rows
            .iter()
            .filter(|r| r.group_key() == key)
            .collect();
        seen.push(title.clone());
        let _ = writeln!(out, "{}", format_table(&title, &group));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{PointOutcome, PointRecord};
    use crate::spec::{SweepSpec, WorkloadSpec};

    fn rows_with_failure() -> Vec<PointRecord> {
        let mut spec = SweepSpec::new("t", "table unit tests");
        spec.models = vec![Model::Sc, Model::Rc];
        spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
        spec.workloads = vec![WorkloadSpec::PaperExample1];
        let points = spec.points();
        points
            .iter()
            .map(|p| {
                let outcome = if p.model == Model::Rc && p.techniques == Techniques::BOTH {
                    PointOutcome::TimedOut { cycles: 99 }
                } else {
                    PointOutcome::Done(crate::result::PointMetrics {
                        cycles: 100 + p.index as u64,
                        committed: 1,
                        loads: 0,
                        stores: 0,
                        speculative_loads: 0,
                        rollbacks: 0,
                        reissues: 0,
                        squashed_by_spec: 0,
                        prefetches_issued: 0,
                        prefetches_useful: 0,
                        demand_merges: 0,
                        demand_misses: 0,
                        dir_queue_cycles: 0,
                        busy_cycles: 1,
                        read_stall_cycles: 0,
                        write_stall_cycles: 99 + p.index as u64,
                        acquire_stall_cycles: 0,
                        rollback_stall_cycles: 0,
                        fetch_stall_cycles: 0,
                    })
                };
                PointRecord::new(p, outcome)
            })
            .collect()
    }

    #[test]
    fn failed_cells_render_as_dash() {
        let rows = rows_with_failure();
        let table = format_table("demo", &rows);
        assert!(table.contains("SC"), "{table}");
        let rc_line = table.lines().find(|l| l.starts_with("RC")).unwrap();
        assert!(rc_line.contains('-'), "{rc_line}");
        let md = markdown_table(&rows);
        assert!(md.contains("| RC |"), "{md}");
        assert!(md.contains(" - |"), "{md}");
    }

    #[test]
    fn spread_ignores_failed_cells() {
        let rows = rows_with_failure();
        // Under BOTH only SC completed, so the spread collapses to zero.
        assert!(model_spread(&rows, Techniques::BOTH).abs() < 1e-12);
        assert!(model_spread(&rows, Techniques::NONE) > 0.0);
    }

    #[test]
    fn render_groups_emits_one_table_per_group() {
        let mut spec = SweepSpec::new("g", "grouping");
        spec.models = vec![Model::Sc];
        spec.techniques = vec![Techniques::NONE];
        spec.machine.miss_latency = vec![20, 100];
        spec.workloads = vec![WorkloadSpec::PaperExample1];
        let rows: Vec<PointRecord> = spec
            .points()
            .iter()
            .map(|p| PointRecord::new(p, PointOutcome::TimedOut { cycles: 1 }))
            .collect();
        let text = render_groups(&SweepResult { spec, rows });
        assert_eq!(text.matches("miss 20").count(), 1, "{text}");
        assert_eq!(text.matches("miss 100").count(), 1, "{text}");
    }
}
