//! The sharded executor.
//!
//! Points are claimed from a shared atomic cursor by `jobs` scoped worker
//! threads and executed independently; each point's record lands in its
//! own pre-allocated slot, indexed by spec expansion order. Because a
//! point's computation depends only on the point itself (config, programs
//! and seed are all derived from the spec), the assembled rows are
//! bit-identical no matter how many workers ran them or how the scheduler
//! interleaved their claims — parallelism affects only wall-clock time.
//!
//! Failure isolation: a point that exhausts its cycle budget, fails a
//! guard check, or panics (e.g. a generator rejecting its parameters) is
//! recorded as a failed cell ([`PointOutcome::TimedOut`] /
//! [`PointOutcome::Failed`] / [`PointOutcome::Panicked`]) and the
//! remaining points keep running.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mcsim_core::{Machine, RunTelemetry};
use mcsim_trace::TraceFilter;

use crate::progress::ProgressState;
use crate::result::{PointMetrics, PointOutcome, PointRecord, SweepResult, SweepRun, SweepTiming};
use crate::spec::{SweepPoint, SweepSpec};

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads (`0` is treated as `1`).
    pub jobs: usize,
    /// Emit periodic progress telemetry to stderr.
    pub progress: bool,
    /// Event-horizon fast-forwarding in the machine loop. Results are
    /// bit-identical either way; off trades wall-clock for a per-cycle
    /// reference run.
    pub fast_forward: bool,
    /// When set, every point runs with event tracing enabled and any
    /// point that does not finish cleanly (timeout, guard failure)
    /// leaves a Chrome trace-event JSON post-mortem at
    /// `<dir>/point-<index>.trace.json`. Rows stay bit-identical: the
    /// trace is a side artifact, never part of the result.
    pub trace_dir: Option<PathBuf>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: 1,
            progress: false,
            fast_forward: true,
            trace_dir: None,
        }
    }
}

/// How often the telemetry thread re-renders, when enabled.
const PROGRESS_PERIOD: Duration = Duration::from_millis(500);

/// Runs every point of `spec` and returns the deterministic result plus
/// wall-clock telemetry.
///
/// # Errors
/// If the spec fails [`SweepSpec::validate`]; individual point failures
/// are recorded in the rows, never returned as errors.
pub fn run_sweep(spec: &SweepSpec, opts: &ExecOptions) -> Result<SweepRun, String> {
    spec.validate()?;
    let points = spec.points();
    let jobs = opts.jobs.max(1).min(points.len().max(1));
    let started = Instant::now();

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(PointRecord, f64, RunTelemetry)>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    let progress = ProgressState::new(points.len());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(idx) else { break };
                let point_started = Instant::now();
                let (record, telemetry) =
                    run_point(point, idx, opts.fast_forward, opts.trace_dir.as_deref());
                let wall = point_started.elapsed().as_secs_f64();
                progress.record(
                    record.outcome.cycles().unwrap_or(0),
                    !record.outcome.is_done(),
                    &telemetry,
                );
                *slots[idx].lock().expect("slot poisoned") = Some((record, wall, telemetry));
            });
        }
        if opts.progress {
            scope.spawn(|| {
                while !progress.done() {
                    std::thread::sleep(PROGRESS_PERIOD);
                    eprintln!("[{}] {}", spec.name, progress.snapshot());
                }
            });
        }
    });

    let mut rows = Vec::with_capacity(points.len());
    let mut point_seconds = Vec::with_capacity(points.len());
    let mut stepped_cycles = 0u64;
    let mut skipped_cycles = 0u64;
    for slot in slots {
        let (record, wall, telemetry) = slot
            .into_inner()
            .expect("slot poisoned")
            .expect("every point ran");
        rows.push(record);
        point_seconds.push(wall);
        stepped_cycles += telemetry.stepped_cycles;
        skipped_cycles += telemetry.skipped_cycles;
    }

    let wall_seconds = started.elapsed().as_secs_f64();
    let sim_cycles: u64 = rows.iter().filter_map(|r| r.outcome.cycles()).sum();
    let timing = SweepTiming {
        jobs,
        wall_seconds,
        point_seconds,
        points_per_second: if wall_seconds > 0.0 {
            rows.len() as f64 / wall_seconds
        } else {
            0.0
        },
        sim_cycles_per_second: if wall_seconds > 0.0 {
            sim_cycles as f64 / wall_seconds
        } else {
            0.0
        },
        stepped_cycles,
        skipped_cycles,
        fast_forward_speedup: if stepped_cycles > 0 {
            (stepped_cycles + skipped_cycles) as f64 / stepped_cycles as f64
        } else {
            1.0
        },
    };
    Ok(SweepRun {
        result: SweepResult {
            spec: spec.clone(),
            rows,
        },
        timing,
    })
}

/// Executes one grid point, converting timeouts and panics into failed
/// outcomes. The returned telemetry is wall-clock bookkeeping only —
/// the record is identical with fast-forwarding on or off.
fn run_point(
    point: &SweepPoint,
    idx: usize,
    fast_forward: bool,
    trace_dir: Option<&std::path::Path>,
) -> (PointRecord, RunTelemetry) {
    let (outcome, telemetry) = catch_unwind(AssertUnwindSafe(|| {
        let mut cfg = point.machine_config();
        cfg.trace |= trace_dir.is_some();
        let mut machine = Machine::new(cfg, point.workload.programs(point.seed));
        machine.set_fast_forward(fast_forward);
        point.workload.setup(&mut machine);
        let (report, telemetry) = machine.run_telemetry();
        if report.failure.is_some() || report.timed_out {
            if let Some(dir) = trace_dir {
                let path = dir.join(format!("point-{idx:04}.trace.json"));
                let json = mcsim_trace::chrome::render(&report.trace, &TraceFilter::default());
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {}: {e}", path.display());
                }
            }
        }
        let outcome = if let Some(error) = report.failure {
            PointOutcome::Failed { error }
        } else if report.timed_out {
            PointOutcome::TimedOut {
                cycles: report.cycles,
            }
        } else {
            PointOutcome::Done(PointMetrics::from_report(&report))
        };
        (outcome, telemetry)
    }))
    .unwrap_or_else(|payload| {
        (
            PointOutcome::Panicked {
                message: panic_message(payload.as_ref()),
            },
            RunTelemetry::default(),
        )
    });
    (PointRecord::new(point, outcome), telemetry)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use mcsim_consistency::Model;
    use mcsim_proc::Techniques;

    fn quick_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("exec-unit", "executor unit tests");
        spec.models = vec![Model::Sc, Model::Rc];
        spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
        spec.workloads = vec![WorkloadSpec::PaperExample1];
        spec
    }

    #[test]
    fn runs_every_point_in_order() {
        let spec = quick_spec();
        let run = run_sweep(&spec, &ExecOptions::default()).expect("valid spec");
        assert_eq!(run.result.rows.len(), 4);
        for (i, row) in run.result.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(row.outcome.is_done(), "row {i} failed: {:?}", row.outcome);
        }
        assert_eq!(run.timing.point_seconds.len(), 4);
        assert_eq!(run.timing.jobs, 1);
        // The paper's headline: techniques close most of SC's gap.
        let rows: Vec<&PointRecord> = run.result.rows.iter().collect();
        let sc_base = SweepResult::cycles_of(&rows, Model::Sc, Techniques::NONE).unwrap();
        let sc_both = SweepResult::cycles_of(&rows, Model::Sc, Techniques::BOTH).unwrap();
        assert!(sc_base > sc_both);
    }

    #[test]
    fn jobs_are_clamped_to_grid_size() {
        let spec = quick_spec();
        let run = run_sweep(
            &spec,
            &ExecOptions {
                jobs: 64,
                ..ExecOptions::default()
            },
        )
        .expect("valid spec");
        assert_eq!(run.timing.jobs, 4);
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        let mut spec = quick_spec();
        spec.models.clear();
        let err = run_sweep(&spec, &ExecOptions::default()).unwrap_err();
        assert!(err.contains("models"));
    }
}
