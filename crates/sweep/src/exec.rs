//! The sharded, crash-safe executor.
//!
//! Points are claimed from a shared atomic cursor by `jobs` scoped worker
//! threads and executed independently; each point's record lands in its
//! own pre-allocated slot, indexed by spec expansion order. Because a
//! point's computation depends only on the point itself (config, programs
//! and seed are all derived from the spec), the assembled rows are
//! bit-identical no matter how many workers ran them, how the scheduler
//! interleaved their claims, whether they ran in worker threads or in
//! isolated child processes, or whether some of them were replayed from
//! a journal — parallelism, isolation, and resume affect only wall-clock
//! time.
//!
//! Crash safety: with a journal attached ([`ExecOptions::journal`]),
//! every completed [`PointOutcome`] is appended and flushed as a JSON
//! line the moment it finishes, so the on-disk artifact is always a
//! valid partial result. [`ExecOptions::resume`] replays a journal,
//! skips its completed points, executes only the remainder, and merges —
//! the result is byte-identical to an uninterrupted run.
//!
//! Failure isolation: a point that exhausts its cycle budget, fails a
//! guard check, or panics is recorded as a failed cell
//! ([`PointOutcome::TimedOut`] / [`PointOutcome::Failed`] /
//! [`PointOutcome::Panicked`]) and the remaining points keep running.
//! Under [`Isolation::Process`], even a worker that aborts, is
//! OOM-killed, or wedges past its wall deadline is contained: the
//! supervisor records [`PointOutcome::Crashed`] / [`PointOutcome::Wedged`]
//! after its bounded transient retry and moves on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mcsim_core::{Machine, RunTelemetry};
use mcsim_guard::FaultKind;
use mcsim_trace::TraceFilter;

use crate::journal::{self, JournalEntry, JournalWriter};
use crate::progress::{fast_forward_speedup, ProgressState};
use crate::result::{PointMetrics, PointOutcome, PointRecord, SweepResult, SweepRun, SweepTiming};
use crate::spec::{SweepPoint, SweepSpec};
use crate::supervise::{Isolation, RetryPolicy, Supervisor};

/// Execution knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads (`0` is treated as `1`).
    pub jobs: usize,
    /// Emit periodic progress telemetry to stderr.
    pub progress: bool,
    /// Event-horizon fast-forwarding in the machine loop. Results are
    /// bit-identical either way; off trades wall-clock for a per-cycle
    /// reference run.
    pub fast_forward: bool,
    /// When set, every point runs with event tracing enabled and any
    /// point that does not finish cleanly (timeout, guard failure)
    /// leaves a Chrome trace-event JSON post-mortem at
    /// `<dir>/point-<index>.trace.json`. Rows stay bit-identical: the
    /// trace is a side artifact, never part of the result.
    pub trace_dir: Option<PathBuf>,
    /// Stream every completed point to this JSON-lines journal the
    /// moment it finishes, making the sweep crash-safe: a killed run
    /// leaves a valid partial result on disk.
    pub journal: Option<PathBuf>,
    /// Replay the journal first: points it completes (matched by
    /// expansion index *and* content hash) are merged without
    /// re-execution, and only the remainder runs. Requires
    /// [`ExecOptions::journal`]; a missing journal file just means a
    /// fresh start.
    pub resume: bool,
    /// Where points execute: worker threads (fast) or supervised child
    /// processes (crash-proof).
    pub isolation: Isolation,
    /// Bounded retry for transient worker losses (process mode only).
    pub retry: RetryPolicy,
    /// Wall-clock budget per point attempt (process mode only); a child
    /// still running at the deadline is killed and the point recorded
    /// as [`PointOutcome::Wedged`] once retries are exhausted.
    pub deadline: Duration,
    /// Deterministic protocol fault injected into every point's guard
    /// config (mutation-testing the robustness layer itself). Changes
    /// what points compute, so it participates in the journal's spec
    /// hash.
    pub inject: Option<FaultKind>,
    /// Worker executable for process isolation. `None` = the current
    /// executable (correct when running as `mcsim-sweep`); tests point
    /// this at the built binary.
    pub worker_exe: Option<PathBuf>,
    /// Extra environment for worker processes — the hook the tests and
    /// CI use to inject *process-level* faults (aborts, hangs) into
    /// workers deterministically.
    pub worker_env: Vec<(String, String)>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: 1,
            progress: false,
            fast_forward: true,
            trace_dir: None,
            journal: None,
            resume: false,
            isolation: Isolation::Thread,
            retry: RetryPolicy::default(),
            deadline: Duration::from_secs(300),
            inject: None,
            worker_exe: None,
            worker_env: Vec::new(),
        }
    }
}

/// How often the telemetry thread re-renders, when enabled.
const PROGRESS_PERIOD: Duration = Duration::from_millis(500);

/// Runs every point of `spec` and returns the deterministic result plus
/// wall-clock telemetry.
///
/// # Errors
/// If the spec fails [`SweepSpec::validate`], the options are
/// inconsistent (`resume` without `journal`), or the journal cannot be
/// read or written; individual point failures are recorded in the rows,
/// never returned as errors.
pub fn run_sweep(spec: &SweepSpec, opts: &ExecOptions) -> Result<SweepRun, String> {
    spec.validate()?;
    let points = spec.points();
    let hashes: Vec<String> = points.iter().map(journal::point_hash).collect();
    let inject_label = opts.inject.map(|f| f.to_string());
    let started = Instant::now();

    // Replay the journal, if resuming.
    if opts.resume && opts.journal.is_none() {
        return Err("resume requires a journal path".to_string());
    }
    let mut preloaded: Vec<Option<JournalEntry>> = (0..points.len()).map(|_| None).collect();
    let mut resuming_existing = false;
    if opts.resume {
        let path = opts.journal.as_deref().expect("checked above");
        if path.exists() {
            let loaded = journal::load(path, spec, inject_label.as_deref(), &hashes)?;
            if opts.progress && loaded.skipped_lines > 0 {
                eprintln!(
                    "[{}] journal: ignoring {} unusable line(s) (torn write or stale point)",
                    spec.name, loaded.skipped_lines
                );
            }
            preloaded = loaded.entries;
            resuming_existing = true;
        }
    }

    // Attach the journal writer: append when continuing an existing
    // file, otherwise start fresh with a header.
    let writer: Option<Mutex<JournalWriter>> = match &opts.journal {
        Some(path) => Some(Mutex::new(if resuming_existing {
            JournalWriter::append_to(path)?
        } else {
            JournalWriter::create(path, spec, inject_label.as_deref())?
        })),
        None => None,
    };

    // Process-isolation context, shared across worker threads.
    let supervisor = match opts.isolation {
        Isolation::Thread => None,
        Isolation::Process => Some(Supervisor::new(
            serde_json::to_string(spec).map_err(|e| e.to_string())?,
            opts.worker_exe.clone(),
            opts.deadline,
            opts.retry,
            opts.fast_forward,
            opts.inject,
            opts.trace_dir.clone(),
            opts.worker_env.clone(),
        )?),
    };

    let pending: Vec<usize> = (0..points.len())
        .filter(|&i| preloaded[i].is_none())
        .collect();
    let jobs = opts.jobs.max(1).min(pending.len().max(1));

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<(PointRecord, f64, RunTelemetry)>>> =
        points.iter().map(|_| Mutex::new(None)).collect();
    let progress = ProgressState::new(points.len());

    // Merge replayed entries first: their slots are final before any
    // worker starts, and they are already on disk — never re-journaled.
    let mut resumed_points = 0usize;
    for (idx, entry) in preloaded.into_iter().enumerate() {
        if let Some(entry) = entry {
            progress.record_resumed(!entry.record.outcome.is_done());
            *slots[idx].lock().expect("slot poisoned") = Some((entry.record, 0.0, entry.telemetry));
            resumed_points += 1;
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let claim = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(claim) else {
                    break;
                };
                let point = &points[idx];
                let point_started = Instant::now();
                let (record, telemetry) = match &supervisor {
                    None => execute_point(
                        point,
                        opts.fast_forward,
                        opts.inject,
                        opts.trace_dir.as_deref(),
                    ),
                    Some(sup) => sup.run_point(point, &hashes[idx]),
                };
                let wall = point_started.elapsed().as_secs_f64();
                if let Some(w) = &writer {
                    let entry = JournalEntry {
                        hash: hashes[idx].clone(),
                        record: record.clone(),
                        telemetry,
                    };
                    if let Err(e) = w.lock().expect("journal poisoned").append(&entry) {
                        eprintln!("[{}] {e}", spec.name);
                    }
                }
                progress.record(
                    record.outcome.cycles().unwrap_or(0),
                    !record.outcome.is_done(),
                    &telemetry,
                );
                *slots[idx].lock().expect("slot poisoned") = Some((record, wall, telemetry));
            });
        }
        if opts.progress {
            scope.spawn(|| {
                while !progress.done() {
                    std::thread::sleep(PROGRESS_PERIOD);
                    eprintln!("[{}] {}", spec.name, progress.snapshot());
                }
            });
        }
    });

    let mut rows = Vec::with_capacity(points.len());
    let mut point_seconds = Vec::with_capacity(points.len());
    let mut stepped_cycles = 0u64;
    let mut skipped_cycles = 0u64;
    for slot in slots {
        let (record, wall, telemetry) = slot
            .into_inner()
            .expect("slot poisoned")
            .expect("every point ran or was resumed");
        rows.push(record);
        point_seconds.push(wall);
        stepped_cycles += telemetry.stepped_cycles;
        skipped_cycles += telemetry.skipped_cycles;
    }

    let wall_seconds = started.elapsed().as_secs_f64();
    let sim_cycles: u64 = rows.iter().filter_map(|r| r.outcome.cycles()).sum();
    let timing = SweepTiming {
        jobs,
        resumed_points,
        wall_seconds,
        point_seconds,
        points_per_second: if wall_seconds > 0.0 {
            rows.len() as f64 / wall_seconds
        } else {
            0.0
        },
        sim_cycles_per_second: if wall_seconds > 0.0 {
            sim_cycles as f64 / wall_seconds
        } else {
            0.0
        },
        stepped_cycles,
        skipped_cycles,
        fast_forward_speedup: fast_forward_speedup(stepped_cycles, skipped_cycles),
    };
    Ok(SweepRun {
        result: SweepResult {
            spec: spec.clone(),
            rows,
        },
        timing,
    })
}

/// Executes one grid point in-process, converting timeouts and panics
/// into failed outcomes. The returned telemetry is wall-clock
/// bookkeeping only — the record is identical with fast-forwarding on
/// or off. This is the single execution path shared by thread-mode
/// workers and the `mcsim-sweep --point` child process.
#[must_use]
pub fn execute_point(
    point: &SweepPoint,
    fast_forward: bool,
    inject: Option<FaultKind>,
    trace_dir: Option<&std::path::Path>,
) -> (PointRecord, RunTelemetry) {
    let idx = point.index;
    let (outcome, telemetry) = catch_unwind(AssertUnwindSafe(|| {
        let mut cfg = point.machine_config();
        cfg.trace |= trace_dir.is_some();
        if inject.is_some() {
            cfg.guard.fault = inject;
        }
        let mut machine = Machine::new(cfg, point.workload.programs(point.seed));
        machine.set_fast_forward(fast_forward);
        point.workload.setup(&mut machine);
        let (report, telemetry) = machine.run_telemetry();
        if report.failure.is_some() || report.timed_out {
            if let Some(dir) = trace_dir {
                let path = dir.join(format!("point-{idx:04}.trace.json"));
                let json = mcsim_trace::chrome::render(&report.trace, &TraceFilter::default());
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("cannot write {}: {e}", path.display());
                }
            }
        }
        let outcome = if let Some(error) = report.failure {
            PointOutcome::Failed { error }
        } else if report.timed_out {
            PointOutcome::TimedOut {
                cycles: report.cycles,
            }
        } else {
            PointOutcome::Done(PointMetrics::from_report(&report))
        };
        (outcome, telemetry)
    }))
    .unwrap_or_else(|payload| {
        (
            PointOutcome::Panicked {
                message: panic_message(payload.as_ref()),
            },
            RunTelemetry::default(),
        )
    });
    (PointRecord::new(point, outcome), telemetry)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use mcsim_consistency::Model;
    use mcsim_proc::Techniques;

    fn quick_spec() -> SweepSpec {
        let mut spec = SweepSpec::new("exec-unit", "executor unit tests");
        spec.models = vec![Model::Sc, Model::Rc];
        spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
        spec.workloads = vec![WorkloadSpec::PaperExample1];
        spec
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcsim-exec-{name}-{}", std::process::id()))
    }

    #[test]
    fn runs_every_point_in_order() {
        let spec = quick_spec();
        let run = run_sweep(&spec, &ExecOptions::default()).expect("valid spec");
        assert_eq!(run.result.rows.len(), 4);
        for (i, row) in run.result.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert_eq!(row.attempts, 1);
            assert!(row.outcome.is_done(), "row {i} failed: {:?}", row.outcome);
        }
        assert_eq!(run.timing.point_seconds.len(), 4);
        assert_eq!(run.timing.jobs, 1);
        assert_eq!(run.timing.resumed_points, 0);
        // The paper's headline: techniques close most of SC's gap.
        let rows: Vec<&PointRecord> = run.result.rows.iter().collect();
        let sc_base = SweepResult::cycles_of(&rows, Model::Sc, Techniques::NONE).unwrap();
        let sc_both = SweepResult::cycles_of(&rows, Model::Sc, Techniques::BOTH).unwrap();
        assert!(sc_base > sc_both);
    }

    #[test]
    fn jobs_are_clamped_to_grid_size() {
        let spec = quick_spec();
        let run = run_sweep(
            &spec,
            &ExecOptions {
                jobs: 64,
                ..ExecOptions::default()
            },
        )
        .expect("valid spec");
        assert_eq!(run.timing.jobs, 4);
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        let mut spec = quick_spec();
        spec.models.clear();
        let err = run_sweep(&spec, &ExecOptions::default()).unwrap_err();
        assert!(err.contains("models"));
    }

    #[test]
    fn resume_without_journal_is_an_error() {
        let spec = quick_spec();
        let err = run_sweep(
            &spec,
            &ExecOptions {
                resume: true,
                ..ExecOptions::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("journal"), "{err}");
    }

    #[test]
    fn journaled_run_is_replayable_without_any_execution() {
        let spec = quick_spec();
        let path = tmp("full-journal");
        let _ = std::fs::remove_file(&path);
        let full = run_sweep(
            &spec,
            &ExecOptions {
                journal: Some(path.clone()),
                ..ExecOptions::default()
            },
        )
        .expect("valid spec");
        // Resume from the complete journal: nothing left to run, and the
        // merged result is identical.
        let resumed = run_sweep(
            &spec,
            &ExecOptions {
                journal: Some(path.clone()),
                resume: true,
                ..ExecOptions::default()
            },
        )
        .expect("valid spec");
        assert_eq!(resumed.timing.resumed_points, 4);
        assert_eq!(resumed.result, full.result);
        assert_eq!(resumed.result.to_json(), full.result.to_json());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_missing_journal_starts_fresh() {
        let spec = quick_spec();
        let path = tmp("fresh-journal");
        let _ = std::fs::remove_file(&path);
        let run = run_sweep(
            &spec,
            &ExecOptions {
                journal: Some(path.clone()),
                resume: true,
                ..ExecOptions::default()
            },
        )
        .expect("valid spec");
        assert_eq!(run.timing.resumed_points, 0);
        assert!(run.result.rows.iter().all(|r| r.outcome.is_done()));
        assert!(path.exists(), "fresh journal must have been written");
        let _ = std::fs::remove_file(&path);
    }
}
