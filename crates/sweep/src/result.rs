//! Structured sweep results.
//!
//! A [`SweepResult`] is the deterministic part of a sweep run: one
//! [`PointRecord`] per grid point, in spec expansion order, with purely
//! simulated quantities (cycles, event counts). Wall-clock measurements
//! live in the separate [`SweepTiming`] so that result rows are
//! bit-identical no matter how many worker threads produced them.

use mcsim_consistency::Model;
use mcsim_core::RunReport;
use mcsim_guard::{FailureClass, SimError};
use mcsim_mem::Protocol;
use mcsim_proc::Techniques;
use serde::{Deserialize, Serialize};

use crate::spec::{SweepPoint, SweepSpec, Window};

/// Simulated-quantity summary of one completed run. Every field is an
/// exact event count — no floats — so records compare exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointMetrics {
    /// Execution time in simulated cycles.
    pub cycles: u64,
    /// Instructions committed (all processors).
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Loads that retired from a speculative issue.
    pub speculative_loads: u64,
    /// Speculative-load-buffer rollbacks (detected violations).
    pub rollbacks: u64,
    /// Loads reissued after a hazard hit their buffered value.
    pub reissues: u64,
    /// Instructions squashed by speculation rollbacks.
    pub squashed_by_spec: u64,
    /// Prefetches issued by the hardware prefetch unit.
    pub prefetches_issued: u64,
    /// Prefetched lines later referenced by a demand access.
    pub prefetches_useful: u64,
    /// Demand accesses merged into an outstanding (prefetch) miss.
    pub demand_merges: u64,
    /// Demand misses.
    pub demand_misses: u64,
    /// Cycles transactions spent queued at the directory.
    pub dir_queue_cycles: u64,
    /// Breakdown: cycles with a retirement (or the ROB head executing) —
    /// busy time, summed over processors.
    pub busy_cycles: u64,
    /// Breakdown: cycles stalled on an ordinary read at the ROB head.
    pub read_stall_cycles: u64,
    /// Breakdown: cycles stalled on a write / draining the store buffer.
    pub write_stall_cycles: u64,
    /// Breakdown: cycles stalled on an acquire access at the ROB head.
    pub acquire_stall_cycles: u64,
    /// Breakdown: cycles spent refetching after a squash.
    pub rollback_stall_cycles: u64,
    /// Breakdown: cycles with an empty ROB and nothing to refetch.
    pub fetch_stall_cycles: u64,
}

impl PointMetrics {
    /// Extracts the summary from a full run report.
    #[must_use]
    pub fn from_report(report: &RunReport) -> Self {
        PointMetrics {
            cycles: report.cycles,
            committed: report.total.committed,
            loads: report.total.loads,
            stores: report.total.stores,
            speculative_loads: report.total.speculative_loads,
            rollbacks: report.total.rollbacks,
            reissues: report.total.reissues,
            squashed_by_spec: report.total.squashed_by_spec,
            prefetches_issued: report.mem.prefetches_issued,
            prefetches_useful: report.mem.prefetches_useful,
            demand_merges: report.mem.demand_merges,
            demand_misses: report.mem.demand_misses,
            dir_queue_cycles: report.mem.dir_queue_cycles,
            busy_cycles: report.total.breakdown.busy,
            read_stall_cycles: report.total.breakdown.read_stall,
            write_stall_cycles: report.total.breakdown.write_stall,
            acquire_stall_cycles: report.total.breakdown.acquire_stall,
            rollback_stall_cycles: report.total.breakdown.rollback_stall,
            fetch_stall_cycles: report.total.breakdown.fetch_stall,
        }
    }

    /// Fraction of speculative loads that were rolled back.
    #[must_use]
    pub fn rollback_rate(&self) -> f64 {
        if self.speculative_loads == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.speculative_loads as f64
        }
    }
}

/// How one grid point ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointOutcome {
    /// Run completed within the cycle budget.
    Done(PointMetrics),
    /// Run hit the cycle budget (recorded, not fatal to the sweep).
    TimedOut {
        /// The budget it was cut off at.
        cycles: u64,
    },
    /// The guard layer stopped the run with a structured diagnostic — a
    /// protocol fault, an invariant violation, or the forward-progress
    /// watchdog (recorded, not fatal to the sweep).
    Failed {
        /// The structured failure.
        error: SimError,
    },
    /// Point panicked while building or running (recorded, not fatal).
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An isolated worker *process* died without reporting a record —
    /// killed by a signal (abort, OOM killer), a spawn failure, or
    /// garbled output. Only possible under `--isolate process`, and only
    /// recorded once the bounded transient retry is exhausted.
    Crashed {
        /// What the supervisor observed.
        message: String,
    },
    /// An isolated worker exceeded its wall-clock deadline and was
    /// killed by the supervisor. Carries the *configured* deadline (not
    /// a measurement) so records stay deterministic.
    Wedged {
        /// The per-point wall deadline, in milliseconds.
        deadline_ms: u64,
    },
}

impl PointOutcome {
    /// Cycles if the point completed.
    #[must_use]
    pub fn cycles(&self) -> Option<u64> {
        match self {
            PointOutcome::Done(m) => Some(m.cycles),
            _ => None,
        }
    }

    /// Metrics if the point completed.
    #[must_use]
    pub fn metrics(&self) -> Option<&PointMetrics> {
        match self {
            PointOutcome::Done(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the point completed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self, PointOutcome::Done(_))
    }

    /// The short `outcome` tag used in CSV rows and summaries.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            PointOutcome::Done(_) => "done",
            PointOutcome::TimedOut { .. } => "timeout",
            PointOutcome::Failed { .. } => "failed",
            PointOutcome::Panicked { .. } => "panic",
            PointOutcome::Crashed { .. } => "crash",
            PointOutcome::Wedged { .. } => "wedged",
        }
    }

    /// Retry classification: `None` for a completed point, otherwise
    /// whether the failure is environmental (worth the supervisor's
    /// bounded retry) or a deterministic property of the point itself.
    #[must_use]
    pub fn failure_class(&self) -> Option<FailureClass> {
        match self {
            PointOutcome::Done(_) => None,
            // Simulated failures reproduce from the spec + seed alone.
            PointOutcome::TimedOut { .. } | PointOutcome::Panicked { .. } => {
                Some(FailureClass::Deterministic)
            }
            PointOutcome::Failed { error } => Some(error.class()),
            // Process-level failures are environmental.
            PointOutcome::Crashed { .. } | PointOutcome::Wedged { .. } => {
                Some(FailureClass::Transient)
            }
        }
    }
}

/// One grid point's coordinates and outcome — a self-describing result
/// row, independent of the spec that produced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointRecord {
    /// Position in spec expansion order.
    pub index: usize,
    /// The seed the point's workload was generated with.
    pub seed: u64,
    /// Workload label.
    pub workload: String,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Clean-miss latency (cycles).
    pub miss_latency: u64,
    /// Instruction-window setting.
    pub window: Window,
    /// Consistency model.
    pub model: Model,
    /// Technique combination.
    pub techniques: Techniques,
    /// Executions this record took: 1 for a first-try outcome (always,
    /// outside `--isolate process`), more when the supervisor's bounded
    /// retry re-ran the point after a transient worker failure. Retries
    /// always re-run the *identical* point — same seed, same config.
    pub attempts: u32,
    /// How the run ended.
    pub outcome: PointOutcome,
}

impl PointRecord {
    /// Builds the row for a point and its outcome (first attempt).
    #[must_use]
    pub fn new(point: &SweepPoint, outcome: PointOutcome) -> Self {
        PointRecord {
            index: point.index,
            seed: point.seed,
            workload: point.workload.label(),
            protocol: point.protocol,
            miss_latency: point.miss_latency,
            window: point.window,
            model: point.model,
            techniques: point.techniques,
            attempts: 1,
            outcome,
        }
    }

    /// The machine-parameter part of the row, used to group rows that
    /// belong in one model × technique table.
    #[must_use]
    pub fn group_key(&self) -> (String, Protocol, u64, Window) {
        (
            self.workload.clone(),
            self.protocol,
            self.miss_latency,
            self.window,
        )
    }
}

/// The deterministic product of a sweep: the spec plus one record per
/// point, in expansion order. Two runs of the same spec must produce
/// equal `SweepResult`s regardless of worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The spec that was run.
    pub spec: SweepSpec,
    /// One record per grid point, in expansion order.
    pub rows: Vec<PointRecord>,
}

impl SweepResult {
    /// Rows that did not complete.
    #[must_use]
    pub fn failures(&self) -> Vec<&PointRecord> {
        self.rows.iter().filter(|r| !r.outcome.is_done()).collect()
    }

    /// Cycles for the row matching a model/technique pair within the
    /// rows slice given (typically one [`PointRecord::group_key`] group).
    #[must_use]
    pub fn cycles_of(rows: &[&PointRecord], model: Model, techniques: Techniques) -> Option<u64> {
        rows.iter()
            .find(|r| r.model == model && r.techniques == techniques)
            .and_then(|r| r.outcome.cycles())
    }

    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepResult serializes")
    }

    /// Parses a result back from JSON.
    ///
    /// # Errors
    /// If the JSON is malformed or does not match the schema.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// CSV columns that identify the point (everything before the
    /// outcome tag).
    pub const CSV_KEY_COLUMNS: &'static str =
        "index,workload,protocol,miss_latency,window,model,techniques,seed,attempts,outcome";

    /// CSV columns carrying [`PointMetrics`], empty on failed rows. The
    /// failure-row pad is *derived* from this list, so adding a metric
    /// column can never leave failed rows ragged.
    pub const CSV_METRIC_COLUMNS: &'static str =
        "cycles,committed,loads,stores,speculative_loads,rollbacks,reissues,\
         squashed_by_spec,prefetches_issued,prefetches_useful,demand_merges,\
         demand_misses,dir_queue_cycles,busy_cycles,read_stall_cycles,\
         write_stall_cycles,acquire_stall_cycles,rollback_stall_cycles,\
         fetch_stall_cycles";

    /// Renders rows as CSV: one line per point, stable flat columns,
    /// empty metric cells for failed points plus a textual `outcome`
    /// column (`done` / `timeout` / `failed` / `panic` / `crash` /
    /// `wedged`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let metric_columns = Self::CSV_METRIC_COLUMNS.split(',').count();
        let mut out = format!("{},{}\n", Self::CSV_KEY_COLUMNS, Self::CSV_METRIC_COLUMNS);
        for r in &self.rows {
            let _ = write!(
                out,
                "{},{},{:?},{},{},{},{},{},{},{}",
                r.index,
                csv_field(&r.workload),
                r.protocol,
                r.miss_latency,
                r.window,
                r.model.name(),
                r.techniques.label(),
                r.seed,
                r.attempts,
                r.outcome.tag(),
            );
            if let PointOutcome::Done(m) = &r.outcome {
                let _ = writeln!(
                    out,
                    ",{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    m.cycles,
                    m.committed,
                    m.loads,
                    m.stores,
                    m.speculative_loads,
                    m.rollbacks,
                    m.reissues,
                    m.squashed_by_spec,
                    m.prefetches_issued,
                    m.prefetches_useful,
                    m.demand_merges,
                    m.demand_misses,
                    m.dir_queue_cycles,
                    m.busy_cycles,
                    m.read_stall_cycles,
                    m.write_stall_cycles,
                    m.acquire_stall_cycles,
                    m.rollback_stall_cycles,
                    m.fetch_stall_cycles,
                );
            } else {
                let _ = writeln!(out, "{}", ",".repeat(metric_columns));
            }
        }
        out
    }
}

/// Quotes a CSV field when needed (labels may contain commas/spaces).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Wall-clock measurements of one sweep execution. Kept apart from
/// [`SweepResult`] because they vary run to run and across `--jobs`
/// settings while the result rows must not.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepTiming {
    /// Worker threads used.
    pub jobs: usize,
    /// Points replayed from a journal instead of executed (0 outside
    /// `--resume`).
    pub resumed_points: usize,
    /// End-to-end wall time in seconds.
    pub wall_seconds: f64,
    /// Per-point wall time in seconds, in expansion order.
    pub point_seconds: Vec<f64>,
    /// Points completed per wall-second.
    pub points_per_second: f64,
    /// Simulated cycles per wall-second (completed points only).
    pub sim_cycles_per_second: f64,
    /// Cycles the machine loops actually stepped, summed over points.
    pub stepped_cycles: u64,
    /// Cycles covered by event-horizon fast-forwarding, summed over
    /// points (zero when skipping is disabled).
    pub skipped_cycles: u64,
    /// Wall-clock leverage of fast-forwarding:
    /// `(stepped + skipped) / stepped` — how many simulated cycles each
    /// stepped cycle paid for (1.0 when skipping is off or never engaged).
    pub fast_forward_speedup: f64,
}

/// Everything a sweep execution produces: the deterministic result and
/// the run's wall-clock telemetry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRun {
    /// Deterministic rows (compare these across runs).
    pub result: SweepResult,
    /// Non-deterministic wall-clock measurements.
    pub timing: SweepTiming,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn demo_result() -> SweepResult {
        let mut spec = SweepSpec::new("demo", "result unit tests");
        spec.workloads = vec![crate::spec::WorkloadSpec::PaperExample1];
        let points = spec.points();
        let rows = vec![PointRecord::new(
            &points[0],
            PointOutcome::Done(PointMetrics {
                cycles: 123,
                committed: 10,
                loads: 2,
                stores: 0,
                speculative_loads: 1,
                rollbacks: 0,
                reissues: 0,
                squashed_by_spec: 0,
                prefetches_issued: 2,
                prefetches_useful: 2,
                demand_merges: 0,
                demand_misses: 2,
                dir_queue_cycles: 0,
                busy_cycles: 10,
                read_stall_cycles: 100,
                write_stall_cycles: 10,
                acquire_stall_cycles: 0,
                rollback_stall_cycles: 0,
                fetch_stall_cycles: 3,
            }),
        )];
        SweepResult { spec, rows }
    }

    #[test]
    fn csv_has_one_line_per_row_plus_header() {
        let r = demo_result();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.rows.len());
        assert!(csv.lines().nth(1).unwrap().contains(",done,123,"));
        // Header and rows agree on column count.
        let cols = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), cols, "ragged CSV line: {line}");
        }
    }

    #[test]
    fn csv_failure_pad_tracks_header_schema_for_every_outcome() {
        // The failure-row pad is derived from CSV_METRIC_COLUMNS, so the
        // header and every non-done row must agree on column count by
        // construction — this pins it against schema drift.
        let header_cols = 1
            + SweepResult::CSV_KEY_COLUMNS.matches(',').count()
            + 1
            + SweepResult::CSV_METRIC_COLUMNS.matches(',').count();
        let mut r = demo_result();
        let outcomes = [
            PointOutcome::TimedOut { cycles: 7 },
            PointOutcome::Failed {
                error: SimError::protocol(1, None, None, "x"),
            },
            PointOutcome::Panicked {
                message: "boom".into(),
            },
            PointOutcome::Crashed {
                message: "signal: 6".into(),
            },
            PointOutcome::Wedged { deadline_ms: 500 },
        ];
        for outcome in outcomes {
            let tag = outcome.tag();
            r.rows[0].outcome = outcome;
            let csv = r.to_csv();
            let header = csv.lines().next().unwrap();
            assert_eq!(header.split(',').count(), header_cols);
            let row = csv.lines().nth(1).unwrap();
            assert_eq!(
                row.split(',').count(),
                header_cols,
                "{tag} row out of sync with header: {row}"
            );
            assert!(row.contains(&format!(",{tag},")), "{row}");
        }
    }

    #[test]
    fn failure_class_separates_environmental_from_simulated() {
        use mcsim_guard::FailureClass;
        assert_eq!(demo_result().rows[0].outcome.failure_class(), None);
        assert_eq!(
            PointOutcome::TimedOut { cycles: 1 }.failure_class(),
            Some(FailureClass::Deterministic)
        );
        assert_eq!(
            PointOutcome::Failed {
                error: SimError::protocol(1, None, None, "x")
            }
            .failure_class(),
            Some(FailureClass::Deterministic)
        );
        assert_eq!(
            PointOutcome::Panicked {
                message: "p".into()
            }
            .failure_class(),
            Some(FailureClass::Deterministic)
        );
        assert_eq!(
            PointOutcome::Crashed {
                message: "c".into()
            }
            .failure_class(),
            Some(FailureClass::Transient)
        );
        assert_eq!(
            PointOutcome::Wedged { deadline_ms: 1 }.failure_class(),
            Some(FailureClass::Transient)
        );
    }

    #[test]
    fn process_failure_outcomes_round_trip_and_record_attempts() {
        let mut r = demo_result();
        r.rows[0].attempts = 3;
        r.rows[0].outcome = PointOutcome::Wedged { deadline_ms: 250 };
        let back = SweepResult::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.rows[0].attempts, 3);
        let csv = r.to_csv();
        assert!(csv.lines().nth(1).unwrap().contains(",3,wedged,"), "{csv}");
    }

    #[test]
    fn csv_quotes_labels_with_commas() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn json_round_trip_preserves_rows() {
        let r = demo_result();
        let back = SweepResult::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn failures_lists_only_incomplete_rows() {
        let mut r = demo_result();
        assert!(r.failures().is_empty());
        r.rows[0].outcome = PointOutcome::TimedOut { cycles: 7 };
        assert_eq!(r.failures().len(), 1);
    }

    #[test]
    fn guard_failure_renders_as_failed_csv_row_and_round_trips() {
        let mut r = demo_result();
        r.rows[0].outcome = PointOutcome::Failed {
            error: SimError::protocol(42, Some(1), Some(0x40), "dropped ack"),
        };
        let csv = r.to_csv();
        assert!(csv.lines().nth(1).unwrap().contains(",failed,"));
        let cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), cols);
        let back = SweepResult::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(r.failures().len(), 1);
    }
}
