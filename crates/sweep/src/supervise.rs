//! Process-isolated point execution.
//!
//! In `--isolate process` mode the sweep's worker threads do not run
//! points themselves: each point is dispatched to a fresh child process
//! — `mcsim-sweep --point <hash>` — which receives the spec as JSON on
//! stdin, executes exactly the one point whose content hash matches, and
//! writes the completed [`JournalEntry`] as a single JSON line on
//! stdout. The supervisor enforces a wall-clock deadline per point, so a
//! child that aborts, is OOM-killed, or wedges takes down only itself:
//! the supervisor records the loss and the rest of the grid keeps
//! running.
//!
//! Failure handling follows the transient/deterministic split of
//! [`mcsim_guard::FailureClass`]:
//!
//! * A child that **exits 0 with a record** reports a *simulated*
//!   outcome — `Done`, `TimedOut`, `Failed`, or `Panicked`. These are
//!   deterministic (pure functions of the point), so they are recorded
//!   immediately; retrying would reproduce them byte for byte.
//! * A child that **dies without a record** (signal, spawn error,
//!   garbled pipe) or **exceeds its deadline** is an *environmental*
//!   loss. The supervisor retries the identical point — same seed, same
//!   config, never re-derived — with deterministic exponential backoff,
//!   up to the bounded attempt budget; exhaustion records
//!   [`PointOutcome::Crashed`] / [`PointOutcome::Wedged`] with the
//!   attempt count.

use std::io::Read as _;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::str::FromStr;
use std::time::{Duration, Instant};

use mcsim_core::RunTelemetry;
use mcsim_guard::FaultKind;

use crate::journal::JournalLine;
use crate::result::{PointOutcome, PointRecord};
use crate::spec::SweepPoint;

/// Where a point's simulation actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Isolation {
    /// In the sweep process itself, on a worker thread, with panics
    /// caught by `catch_unwind`. Fast (no spawn cost), but an abort or
    /// OOM anywhere takes the whole sweep with it.
    #[default]
    Thread,
    /// In a child `mcsim-sweep --point <hash>` process per point. A
    /// point that aborts, OOMs, or wedges past its deadline is killed
    /// and recorded; every other point completes.
    Process,
}

impl FromStr for Isolation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "thread" => Ok(Isolation::Thread),
            "process" => Ok(Isolation::Process),
            other => Err(format!(
                "unknown isolation `{other}` (want thread | process)"
            )),
        }
    }
}

/// Bounded retry for transient worker failures. Deterministic: the
/// backoff schedule is a pure function of the attempt number (no
/// jitter), and a retried point always re-runs with its original seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total executions allowed per point, including the first (so `1`
    /// disables retrying). Only transient failures consume extra
    /// attempts; deterministic failures record on attempt 1.
    pub max_attempts: u32,
    /// Base backoff before attempt 2; doubles per further attempt.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before re-running attempt `next_attempt`
    /// (2-based): `backoff_ms << (next_attempt - 2)`.
    #[must_use]
    pub fn backoff(&self, next_attempt: u32) -> Duration {
        Duration::from_millis(self.backoff_ms << next_attempt.saturating_sub(2).min(16))
    }
}

/// Why a worker process produced no record. All variants are transient
/// (environmental) by construction — simulated failures come back *as
/// records* with exit status 0.
#[derive(Debug)]
enum WorkerLoss {
    /// The child could not be spawned or its pipes failed.
    Spawn(String),
    /// The child exited without a usable record (signal, abort, OOM
    /// kill, nonzero exit, garbled stdout).
    Crashed(String),
    /// The child exceeded the wall deadline and was killed.
    Wedged,
}

/// One sweep's process-isolation context, shared by all worker threads.
#[derive(Debug)]
pub struct Supervisor {
    spec_json: String,
    worker_exe: PathBuf,
    /// Wall-clock budget per point attempt.
    pub deadline: Duration,
    /// Bounded transient retry.
    pub retry: RetryPolicy,
    fast_forward: bool,
    inject: Option<FaultKind>,
    trace_dir: Option<PathBuf>,
    worker_env: Vec<(String, String)>,
}

/// How often the supervisor polls a running child against its deadline.
const POLL: Duration = Duration::from_millis(5);

impl Supervisor {
    /// Builds the context for one sweep execution.
    ///
    /// `worker_exe` defaults to the current executable — correct when
    /// the supervisor *is* `mcsim-sweep`; tests point it at the built
    /// binary explicitly.
    ///
    /// # Errors
    /// If no worker executable can be determined.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec_json: String,
        worker_exe: Option<PathBuf>,
        deadline: Duration,
        retry: RetryPolicy,
        fast_forward: bool,
        inject: Option<FaultKind>,
        trace_dir: Option<PathBuf>,
        worker_env: Vec<(String, String)>,
    ) -> Result<Self, String> {
        let worker_exe = match worker_exe {
            Some(exe) => exe,
            None => std::env::current_exe()
                .map_err(|e| format!("cannot locate worker executable: {e}"))?,
        };
        Ok(Supervisor {
            spec_json,
            worker_exe,
            deadline,
            retry,
            fast_forward,
            inject,
            trace_dir,
            worker_env,
        })
    }

    /// Runs one point to a final record, retrying transient worker
    /// losses within the bounded budget. Always returns a record — the
    /// sweep never dies because a worker did.
    pub fn run_point(&self, point: &SweepPoint, hash: &str) -> (PointRecord, RunTelemetry) {
        let mut attempt = 1u32;
        loop {
            match self.run_attempt(hash, attempt) {
                Ok((mut record, telemetry)) => {
                    record.attempts = attempt;
                    return (record, telemetry);
                }
                Err(loss) => {
                    if attempt < self.retry.max_attempts.max(1) {
                        attempt += 1;
                        std::thread::sleep(self.retry.backoff(attempt));
                        continue;
                    }
                    let outcome = match loss {
                        WorkerLoss::Wedged => PointOutcome::Wedged {
                            deadline_ms: self.deadline.as_millis() as u64,
                        },
                        WorkerLoss::Spawn(m) | WorkerLoss::Crashed(m) => {
                            PointOutcome::Crashed { message: m }
                        }
                    };
                    let mut record = PointRecord::new(point, outcome);
                    record.attempts = attempt;
                    return (record, RunTelemetry::default());
                }
            }
        }
    }

    /// One spawn → feed spec → await-with-deadline → parse cycle.
    fn run_attempt(
        &self,
        hash: &str,
        attempt: u32,
    ) -> Result<(PointRecord, RunTelemetry), WorkerLoss> {
        let mut cmd = Command::new(&self.worker_exe);
        cmd.arg("--point")
            .arg(hash)
            .arg("--attempt")
            .arg(attempt.to_string());
        if !self.fast_forward {
            cmd.arg("--no-fast-forward");
        }
        if let Some(fault) = self.inject {
            cmd.arg("--inject").arg(fault.to_string());
        }
        if let Some(dir) = &self.trace_dir {
            cmd.arg("--trace").arg(dir);
        }
        for (k, v) in &self.worker_env {
            cmd.env(k, v);
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd
            .spawn()
            .map_err(|e| WorkerLoss::Spawn(format!("spawn {}: {e}", self.worker_exe.display())))?;

        // Feed the spec and close stdin so the child sees EOF. A write
        // error just means the child already died; the wait below will
        // classify that.
        if let Some(mut stdin) = child.stdin.take() {
            use std::io::Write as _;
            let _ = stdin.write_all(self.spec_json.as_bytes());
        }

        let status = self.await_deadline(&mut child)?;
        let mut stdout = String::new();
        if let Some(mut out) = child.stdout.take() {
            let _ = out.read_to_string(&mut stdout);
        }
        if !status.success() {
            return Err(WorkerLoss::Crashed(format!(
                "worker for point {hash} died: {status}"
            )));
        }
        match serde_json::from_str::<JournalLine>(stdout.trim()) {
            Ok(JournalLine::Point(entry)) if entry.hash == hash => {
                Ok((entry.record, entry.telemetry))
            }
            _ => Err(WorkerLoss::Crashed(format!(
                "worker for point {hash} exited 0 but wrote no usable record"
            ))),
        }
    }

    /// Waits for the child within the wall deadline; kills it (and
    /// reports a wedge) when the deadline passes.
    fn await_deadline(&self, child: &mut Child) -> Result<std::process::ExitStatus, WorkerLoss> {
        let started = Instant::now();
        loop {
            match child.try_wait() {
                Ok(Some(status)) => return Ok(status),
                Ok(None) => {
                    if started.elapsed() >= self.deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(WorkerLoss::Wedged);
                    }
                    std::thread::sleep(POLL);
                }
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(WorkerLoss::Crashed(format!("wait failed: {e}")));
                }
            }
        }
    }

    /// The per-point trace directory, if post-mortems are enabled.
    #[must_use]
    pub fn trace_dir(&self) -> Option<&Path> {
        self.trace_dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_parses_both_modes() {
        assert_eq!("thread".parse::<Isolation>(), Ok(Isolation::Thread));
        assert_eq!("process".parse::<Isolation>(), Ok(Isolation::Process));
        assert!("container".parse::<Isolation>().is_err());
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_ms: 10,
        };
        assert_eq!(r.backoff(2), Duration::from_millis(10));
        assert_eq!(r.backoff(3), Duration::from_millis(20));
        assert_eq!(r.backoff(4), Duration::from_millis(40));
        // Shift is capped: no overflow panic at absurd attempt counts.
        assert_eq!(r.backoff(100), Duration::from_millis(10 << 16));
    }
}
