//! `mcsim-sweep` — run a declarative experiment sweep.
//!
//! ```text
//! mcsim-sweep --builtin e6-equalization --jobs 4 --json out.json
//! mcsim-sweep --spec my-sweep.json --csv out.csv --quiet
//! mcsim-sweep --builtin e6-equalization --journal run.jsonl  # crash-safe
//! mcsim-sweep --builtin e6-equalization --resume run.jsonl   # continue
//! mcsim-sweep --builtin e6-equalization --isolate process    # crash-proof
//! mcsim-sweep --list
//! mcsim-sweep --builtin e12-latency --print-spec   # emit the spec JSON
//! ```
//!
//! Exit status is non-zero on usage errors, unreadable/invalid specs, or
//! I/O failures; individual failed grid points are *reported*, not fatal.
//!
//! The binary doubles as its own isolation worker: `--point <hash>` reads
//! a spec from stdin, executes exactly the one point whose content hash
//! matches, and writes the completed journal line to stdout. The
//! supervisor in `--isolate process` mode spawns these per point.

use std::process::ExitCode;
use std::time::Duration;

use mcsim_guard::FaultKind;
use mcsim_sweep::{
    builtin, execute_point, journal, render_groups, run_sweep, ExecOptions, Isolation, RetryPolicy,
    SweepSpec, BUILTIN_NAMES,
};

const USAGE: &str = "usage: mcsim-sweep [options]
  --builtin NAME     run a named built-in sweep (see --list)
  --spec FILE        run a SweepSpec from a JSON file
  --list             list built-in sweeps and exit
  --print-spec       print the selected spec as JSON and exit (no run)
  --jobs N           worker threads (default 1)
  --json FILE        write the result (spec + rows) as JSON; deterministic,
                     bit-identical at any --jobs value
  --timing-json FILE write wall-clock timing telemetry as JSON (not
                     deterministic: varies run to run)
  --csv FILE         write the result rows as CSV
  --journal FILE     stream each completed point to FILE as a JSON line the
                     moment it finishes (crash-safe partial results)
  --resume FILE      replay FILE, skip its completed points, run the rest,
                     and keep journaling to it; the merged result is
                     byte-identical to an uninterrupted run (a missing FILE
                     just starts fresh)
  --isolate MODE     thread (default) or process: run each point in a
                     supervised child process so an abort, OOM kill, or
                     wedge costs one cell, not the sweep
  --retries N        process mode: total attempts per point for transient
                     worker losses (default 3; deterministic failures
                     never retry)
  --deadline SECS    process mode: wall-clock budget per point attempt
                     (default 300); a wedged worker is killed and recorded
  --inject FAULT     inject a deterministic protocol fault into every
                     point (drop-inv[:N] | corrupt[:N] | stuck-mshr[:N])
  --no-fast-forward  step every cycle instead of skipping quiescent spans
                     (slower; results are bit-identical either way)
  --trace DIR        run with event tracing and leave a Chrome trace-event
                     JSON post-mortem (point-NNNN.trace.json) in DIR for
                     every point that fails or times out
  --quiet            suppress tables and progress telemetry
worker mode (spawned by --isolate process; not for interactive use):
  --point HASH       read a spec from stdin, run the one point whose
                     content hash is HASH, write its journal line to stdout
  --attempt N        which attempt this execution is (bookkeeping)";

struct Args {
    spec: Option<SweepSpec>,
    list: bool,
    print_spec: bool,
    jobs: usize,
    json: Option<String>,
    timing_json: Option<String>,
    csv: Option<String>,
    journal: Option<String>,
    resume: Option<String>,
    isolate: Isolation,
    retries: u32,
    deadline_secs: u64,
    inject: Option<FaultKind>,
    no_fast_forward: bool,
    trace_dir: Option<String>,
    quiet: bool,
    point: Option<String>,
    attempt: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: None,
        list: false,
        print_spec: false,
        jobs: 1,
        json: None,
        timing_json: None,
        csv: None,
        journal: None,
        resume: None,
        isolate: Isolation::Thread,
        retries: RetryPolicy::default().max_attempts,
        deadline_secs: 300,
        inject: None,
        no_fast_forward: false,
        trace_dir: None,
        quiet: false,
        point: None,
        attempt: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--builtin" => {
                let name = value("--builtin")?;
                args.spec = Some(builtin(&name).ok_or_else(|| {
                    format!(
                        "unknown built-in '{name}'; try: {}",
                        BUILTIN_NAMES.join(", ")
                    )
                })?);
            }
            "--spec" => {
                let path = value("--spec")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                args.spec = Some(
                    serde_json::from_str(&text).map_err(|e| format!("invalid spec {path}: {e}"))?,
                );
            }
            "--list" => args.list = true,
            "--print-spec" => args.print_spec = true,
            "--jobs" => {
                let n = value("--jobs")?;
                args.jobs = n
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got '{n}'"))?;
            }
            "--json" => args.json = Some(value("--json")?),
            "--timing-json" => args.timing_json = Some(value("--timing-json")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--journal" => args.journal = Some(value("--journal")?),
            "--resume" => args.resume = Some(value("--resume")?),
            "--isolate" => args.isolate = value("--isolate")?.parse()?,
            "--retries" => {
                let n = value("--retries")?;
                args.retries = n
                    .parse()
                    .map_err(|_| format!("--retries expects a number, got '{n}'"))?;
            }
            "--deadline" => {
                let n = value("--deadline")?;
                args.deadline_secs = n
                    .parse()
                    .map_err(|_| format!("--deadline expects seconds, got '{n}'"))?;
            }
            "--inject" => args.inject = Some(value("--inject")?.parse()?),
            "--no-fast-forward" => args.no_fast_forward = true,
            "--trace" => args.trace_dir = Some(value("--trace")?),
            "--quiet" => args.quiet = true,
            "--point" => args.point = Some(value("--point")?),
            "--attempt" => {
                let n = value("--attempt")?;
                args.attempt = n
                    .parse()
                    .map_err(|_| format!("--attempt expects a number, got '{n}'"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

/// Worker mode: execute exactly one point of the spec arriving on stdin
/// and emit its journal line on stdout. Process-level faults here —
/// abort, OOM, wedging — are the supervisor's problem, by design.
fn run_worker(args: &Args) -> Result<(), String> {
    let hash = args.point.as_deref().expect("checked by caller");
    let mut input = String::new();
    use std::io::Read as _;
    std::io::stdin()
        .read_to_string(&mut input)
        .map_err(|e| format!("cannot read spec from stdin: {e}"))?;
    let spec: SweepSpec =
        serde_json::from_str(input.trim()).map_err(|e| format!("invalid spec on stdin: {e}"))?;
    spec.validate()?;
    let point = spec
        .points()
        .into_iter()
        .find(|p| journal::point_hash(p) == hash)
        .ok_or_else(|| format!("no point with hash {hash} in this spec"))?;

    // Deterministic process-fault hooks for tests and CI. They simulate
    // environmental failures (a crash, a wedge) that cannot be produced
    // from a spec alone.
    if let Ok(k) = std::env::var("MCSIM_SWEEP_TEST_ABORT") {
        if let Ok(until) = k.parse::<u32>() {
            if args.attempt < until {
                std::process::abort();
            }
        }
    }
    if let Ok(which) = std::env::var("MCSIM_SWEEP_TEST_HANG") {
        if which == "all" || which == hash {
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }

    let trace_dir = args.trace_dir.as_ref().map(std::path::PathBuf::from);
    let (mut record, telemetry) = execute_point(
        &point,
        !args.no_fast_forward,
        args.inject,
        trace_dir.as_deref(),
    );
    record.attempts = args.attempt;
    let line = journal::JournalLine::Point(journal::JournalEntry {
        hash: hash.to_string(),
        record,
        telemetry,
    });
    println!("{}", line.render());
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.point.is_some() {
        return run_worker(&args);
    }
    if args.list {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).expect("listed builtins exist");
            println!("{name:<18} {:>4} points  {}", spec.len(), spec.description);
        }
        return Ok(());
    }
    let spec = args
        .spec
        .ok_or_else(|| format!("pick a sweep with --builtin or --spec\n{USAGE}"))?;
    if args.print_spec {
        println!(
            "{}",
            serde_json::to_string_pretty(&spec).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    let trace_dir = match &args.trace_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            Some(std::path::PathBuf::from(dir))
        }
        None => None,
    };
    let (journal_path, resume) = match (&args.journal, &args.resume) {
        (Some(j), Some(r)) if j != r => {
            return Err(format!(
                "--journal {j} conflicts with --resume {r}: resume continues journaling to the \
                 file it replays"
            ));
        }
        (_, Some(r)) => (Some(std::path::PathBuf::from(r)), true),
        (Some(j), None) => (Some(std::path::PathBuf::from(j)), false),
        (None, None) => (None, false),
    };
    let opts = ExecOptions {
        jobs: args.jobs,
        progress: !args.quiet,
        fast_forward: !args.no_fast_forward,
        trace_dir,
        journal: journal_path,
        resume,
        isolation: args.isolate,
        retry: RetryPolicy {
            max_attempts: args.retries.max(1),
            ..RetryPolicy::default()
        },
        deadline: Duration::from_secs(args.deadline_secs),
        inject: args.inject,
        worker_exe: None,
        worker_env: Vec::new(),
    };
    let run = run_sweep(&spec, &opts)?;

    if !args.quiet {
        print!("{}", render_groups(&run.result));
        let failures = run.result.failures();
        if !failures.is_empty() {
            println!("failed cells ({}):", failures.len());
            for f in failures {
                println!(
                    "  #{} {} {} {} [{} attempt(s)]: {:?}",
                    f.index,
                    f.workload,
                    f.model.name(),
                    f.techniques.label(),
                    f.attempts,
                    f.outcome
                );
            }
        }
        println!(
            "{} points ({} resumed), {} jobs, {:.2}s wall ({:.1} pts/s, {:.2}M sim-cycles/s, {:.1}x fast-forward)",
            run.result.rows.len(),
            run.timing.resumed_points,
            run.timing.jobs,
            run.timing.wall_seconds,
            run.timing.points_per_second,
            run.timing.sim_cycles_per_second / 1e6,
            run.timing.fast_forward_speedup,
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, run.result.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.timing_json {
        let text = serde_json::to_string_pretty(&run.timing).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, run.result.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
