//! `mcsim-sweep` — run a declarative experiment sweep.
//!
//! ```text
//! mcsim-sweep --builtin e6-equalization --jobs 4 --json out.json
//! mcsim-sweep --spec my-sweep.json --csv out.csv --quiet
//! mcsim-sweep --list
//! mcsim-sweep --builtin e12-latency --print-spec   # emit the spec JSON
//! ```
//!
//! Exit status is non-zero on usage errors, unreadable/invalid specs, or
//! I/O failures; individual failed grid points are *reported*, not fatal.

use std::process::ExitCode;

use mcsim_sweep::{builtin, render_groups, run_sweep, ExecOptions, SweepSpec, BUILTIN_NAMES};

const USAGE: &str = "usage: mcsim-sweep [options]
  --builtin NAME     run a named built-in sweep (see --list)
  --spec FILE        run a SweepSpec from a JSON file
  --list             list built-in sweeps and exit
  --print-spec       print the selected spec as JSON and exit (no run)
  --jobs N           worker threads (default 1)
  --json FILE        write the result (spec + rows) as JSON; deterministic,
                     bit-identical at any --jobs value
  --timing-json FILE write wall-clock timing telemetry as JSON (not
                     deterministic: varies run to run)
  --csv FILE         write the result rows as CSV
  --no-fast-forward  step every cycle instead of skipping quiescent spans
                     (slower; results are bit-identical either way)
  --trace DIR        run with event tracing and leave a Chrome trace-event
                     JSON post-mortem (point-NNNN.trace.json) in DIR for
                     every point that fails or times out
  --quiet            suppress tables and progress telemetry";

struct Args {
    spec: Option<SweepSpec>,
    list: bool,
    print_spec: bool,
    jobs: usize,
    json: Option<String>,
    timing_json: Option<String>,
    csv: Option<String>,
    no_fast_forward: bool,
    trace_dir: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        spec: None,
        list: false,
        print_spec: false,
        jobs: 1,
        json: None,
        timing_json: None,
        csv: None,
        no_fast_forward: false,
        trace_dir: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--builtin" => {
                let name = value("--builtin")?;
                args.spec = Some(builtin(&name).ok_or_else(|| {
                    format!(
                        "unknown built-in '{name}'; try: {}",
                        BUILTIN_NAMES.join(", ")
                    )
                })?);
            }
            "--spec" => {
                let path = value("--spec")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                args.spec = Some(
                    serde_json::from_str(&text).map_err(|e| format!("invalid spec {path}: {e}"))?,
                );
            }
            "--list" => args.list = true,
            "--print-spec" => args.print_spec = true,
            "--jobs" => {
                let n = value("--jobs")?;
                args.jobs = n
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got '{n}'"))?;
            }
            "--json" => args.json = Some(value("--json")?),
            "--timing-json" => args.timing_json = Some(value("--timing-json")?),
            "--csv" => args.csv = Some(value("--csv")?),
            "--no-fast-forward" => args.no_fast_forward = true,
            "--trace" => args.trace_dir = Some(value("--trace")?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.list {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).expect("listed builtins exist");
            println!("{name:<18} {:>4} points  {}", spec.len(), spec.description);
        }
        return Ok(());
    }
    let spec = args
        .spec
        .ok_or_else(|| format!("pick a sweep with --builtin or --spec\n{USAGE}"))?;
    if args.print_spec {
        println!(
            "{}",
            serde_json::to_string_pretty(&spec).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    let trace_dir = match &args.trace_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            Some(std::path::PathBuf::from(dir))
        }
        None => None,
    };
    let opts = ExecOptions {
        jobs: args.jobs,
        progress: !args.quiet,
        fast_forward: !args.no_fast_forward,
        trace_dir,
    };
    let run = run_sweep(&spec, &opts)?;

    if !args.quiet {
        print!("{}", render_groups(&run.result));
        let failures = run.result.failures();
        if !failures.is_empty() {
            println!("failed cells ({}):", failures.len());
            for f in failures {
                println!(
                    "  #{} {} {} {}: {:?}",
                    f.index,
                    f.workload,
                    f.model.name(),
                    f.techniques.label(),
                    f.outcome
                );
            }
        }
        println!(
            "{} points, {} jobs, {:.2}s wall ({:.1} pts/s, {:.2}M sim-cycles/s, {:.1}x fast-forward)",
            run.result.rows.len(),
            run.timing.jobs,
            run.timing.wall_seconds,
            run.timing.points_per_second,
            run.timing.sim_cycles_per_second / 1e6,
            run.timing.fast_forward_speedup,
        );
    }

    if let Some(path) = &args.json {
        std::fs::write(path, run.result.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.timing_json {
        let text = serde_json::to_string_pretty(&run.timing).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, run.result.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.quiet {
            println!("wrote {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
