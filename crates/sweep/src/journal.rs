//! Crash-safe execution journals.
//!
//! A journal is a JSON-lines file that makes a running sweep's artifact
//! on disk *always a valid partial result*: the first line identifies
//! the spec (a content hash over its canonical JSON), and every
//! subsequent line is one completed [`PointRecord`], appended and
//! flushed the moment the point finishes. Kill the process at any
//! instant — SIGKILL, OOM, power loss — and the journal holds every
//! point that completed, with at most one torn trailing line (which the
//! loader tolerates).
//!
//! Points are **content-addressed**: [`point_hash`] is a stable FNV-1a
//! hash of the point's canonical JSON — its workload parameters, machine
//! axes, model, techniques, cycle budget, expansion index, and the seed
//! derived from that index. Resume matches journal entries against the
//! freshly expanded grid by *both* index and hash, so a journal can
//! never smuggle a stale row into a changed spec: edit any axis and the
//! affected points simply re-execute.
//!
//! Determinism under resume: a [`PointRecord`] is a pure function of its
//! [`SweepPoint`], and the journal stores records verbatim (integers,
//! enums and strings only — nothing lossy). Replaying a journal and
//! re-executing the remainder therefore reassembles a row vector equal,
//! field for field, to an uninterrupted run's — which is what lets the
//! JSON/CSV artifacts stay byte-identical across kills and resumes.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::Path;

use mcsim_core::RunTelemetry;
use serde::{Deserialize, Serialize};

use crate::result::PointRecord;
use crate::spec::{SweepPoint, SweepSpec};

/// Journal schema version; bumped on any incompatible line change.
pub const JOURNAL_VERSION: u32 = 1;

/// FNV-1a 64-bit over a byte string — stable across platforms and
/// builds, cheap, and collision-safe at grid scale (thousands of
/// points, not billions).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Content address of one grid point: the hash of its canonical JSON
/// (every axis value, the expansion index, the derived seed, and the
/// cycle budget). 16 lowercase hex digits.
#[must_use]
pub fn point_hash(point: &SweepPoint) -> String {
    let canonical = serde_json::to_string(point).expect("SweepPoint serializes");
    format!("{:016x}", fnv1a(canonical.as_bytes()))
}

/// Content address of a whole spec, plus the execution settings that
/// change what a point *computes* (fault injection). Settings that only
/// change how fast a point runs (`--jobs`, fast-forward, isolation) are
/// deliberately excluded: results are bit-identical across them, so a
/// journal written under any of those settings resumes under any other.
#[must_use]
pub fn spec_hash(spec: &SweepSpec, inject: Option<&str>) -> String {
    let canonical = serde_json::to_string(spec).expect("SweepSpec serializes");
    let mut h = fnv1a(canonical.as_bytes());
    if let Some(fault) = inject {
        h ^= fnv1a(fault.as_bytes()).rotate_left(17);
    }
    format!("{:016x}", h)
}

/// The journal's first line: which computation this file belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Schema version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Sweep name, for humans reading the file.
    pub sweep: String,
    /// [`spec_hash`] of the spec (+ fault injection) being executed.
    pub spec_hash: String,
    /// Grid size the spec expands to.
    pub points: usize,
}

/// One completed point: its content address, its record, and the
/// machine-loop telemetry that produced it (telemetry is itself
/// deterministic — stepped/skipped cycle counts are simulated
/// quantities — so restoring it on resume keeps aggregate timing
/// truthful).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// [`point_hash`] of the point this record belongs to.
    pub hash: String,
    /// The completed row, exactly as an uninterrupted run would hold it.
    pub record: PointRecord,
    /// Machine-loop telemetry for the run that produced the record.
    pub telemetry: RunTelemetry,
}

/// One line of the journal file. Externally tagged, one compact JSON
/// object per line. Lines are parsed and consumed one at a time, never
/// held in bulk, so the variant size spread is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalLine {
    /// First line of every journal.
    Header(JournalHeader),
    /// One completed point.
    Point(JournalEntry),
}

impl JournalLine {
    /// Renders the line as compact single-line JSON (no trailing
    /// newline).
    #[must_use]
    pub fn render(&self) -> String {
        serde_json::to_string(self).expect("journal lines serialize")
    }
}

/// Append-side of a journal: writes the header on creation and flushes
/// every entry as it lands, so the on-disk file is complete up to the
/// last finished point at all times.
#[derive(Debug)]
pub struct JournalWriter {
    out: BufWriter<File>,
}

impl JournalWriter {
    /// Starts a fresh journal at `path` (truncating any previous file)
    /// and writes its header.
    ///
    /// # Errors
    /// On I/O failure, with the path in the message.
    pub fn create(path: &Path, spec: &SweepSpec, inject: Option<&str>) -> Result<Self, String> {
        let file = File::create(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        let mut w = JournalWriter {
            out: BufWriter::new(file),
        };
        w.write_line(&JournalLine::Header(JournalHeader {
            version: JOURNAL_VERSION,
            sweep: spec.name.clone(),
            spec_hash: spec_hash(spec, inject),
            points: spec.len(),
        }))?;
        Ok(w)
    }

    /// Reopens an existing journal for appending (resume): the header is
    /// already on disk — and must have been verified by [`load`] first.
    ///
    /// # Errors
    /// On I/O failure, with the path in the message.
    pub fn append_to(path: &Path) -> Result<Self, String> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot append to journal {}: {e}", path.display()))?;
        Ok(JournalWriter {
            out: BufWriter::new(file),
        })
    }

    /// Appends one completed point and flushes it to the OS, so a
    /// subsequent kill cannot lose it.
    ///
    /// # Errors
    /// On I/O failure.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), String> {
        self.write_line(&JournalLine::Point(entry.clone()))
    }

    fn write_line(&mut self, line: &JournalLine) -> Result<(), String> {
        self.out
            .write_all(line.render().as_bytes())
            .and_then(|()| self.out.write_all(b"\n"))
            .and_then(|()| self.out.flush())
            .map_err(|e| format!("journal write failed: {e}"))
    }
}

/// What [`load`] recovered from a journal.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Per expansion index: the completed entry, if the journal holds a
    /// record whose index *and* content hash match the current grid.
    pub entries: Vec<Option<JournalEntry>>,
    /// Lines that did not parse (a torn tail from a kill mid-write) or
    /// parsed but matched no current point (spec drift on a point the
    /// hash check rejected). Informational; never fatal.
    pub skipped_lines: usize,
}

impl LoadedJournal {
    /// Number of points the journal completes.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Replays a journal against a freshly expanded grid.
///
/// The header must match `spec` (same [`spec_hash`], including the
/// fault-injection setting) — resuming a journal into a *different*
/// computation is refused loudly rather than merged wrongly. Point
/// lines are accepted only where both the expansion index and the
/// content hash agree with `hashes` (the current grid's [`point_hash`]
/// values, in expansion order); anything else — torn trailing line,
/// duplicate, stale point — is counted in
/// [`LoadedJournal::skipped_lines`]. Duplicates keep the first
/// occurrence: entries are deterministic, so any duplicate is equal
/// anyway.
///
/// # Errors
/// If the file is unreadable, empty, missing its header, or written for
/// a different spec / journal version.
pub fn load(
    path: &Path,
    spec: &SweepSpec,
    inject: Option<&str>,
    hashes: &[String],
) -> Result<LoadedJournal, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| format!("journal {} is empty", path.display()))?;
    let header = match serde_json::from_str::<JournalLine>(header_line) {
        Ok(JournalLine::Header(h)) => h,
        _ => {
            return Err(format!(
                "journal {} does not start with a header line",
                path.display()
            ))
        }
    };
    if header.version != JOURNAL_VERSION {
        return Err(format!(
            "journal {} is version {}, this build reads {JOURNAL_VERSION}",
            path.display(),
            header.version
        ));
    }
    let want = spec_hash(spec, inject);
    if header.spec_hash != want {
        return Err(format!(
            "journal {} was written for spec '{}' ({}), not the requested \
             spec '{}' ({}) — refusing to merge different computations",
            path.display(),
            header.sweep,
            header.spec_hash,
            spec.name,
            want
        ));
    }

    let mut entries: Vec<Option<JournalEntry>> = vec![None; hashes.len()];
    let mut skipped_lines = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<JournalLine>(line) {
            Ok(JournalLine::Point(entry)) => {
                let idx = entry.record.index;
                let matches_grid = hashes.get(idx).is_some_and(|h| *h == entry.hash);
                if matches_grid && entries[idx].is_none() {
                    entries[idx] = Some(entry);
                } else {
                    skipped_lines += 1;
                }
            }
            // A second header (or a torn/garbled line) — tolerate.
            _ => skipped_lines += 1,
        }
    }
    Ok(LoadedJournal {
        entries,
        skipped_lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::{PointOutcome, PointRecord};
    use crate::spec::WorkloadSpec;

    fn spec() -> SweepSpec {
        let mut s = SweepSpec::new("journal-unit", "journal unit tests");
        s.workloads = vec![
            WorkloadSpec::PaperExample1,
            WorkloadSpec::ArraySweep { n: 2, stores: true },
        ];
        s
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mcsim-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn point_hashes_are_stable_distinct_and_axis_sensitive() {
        let s = spec();
        let points = s.points();
        let hashes: Vec<String> = points.iter().map(point_hash).collect();
        assert_eq!(hashes, points.iter().map(point_hash).collect::<Vec<_>>());
        let mut uniq = hashes.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), hashes.len(), "hashes must be distinct");
        // Any axis change moves the hash.
        let mut moved = points[0].clone();
        moved.miss_latency += 2;
        assert_ne!(point_hash(&moved), hashes[0]);
        // So does the seed alone.
        let mut reseeded = points[0].clone();
        reseeded.seed ^= 1;
        assert_ne!(point_hash(&reseeded), hashes[0]);
        assert_eq!(hashes[0].len(), 16);
    }

    #[test]
    fn spec_hash_depends_on_injection() {
        let s = spec();
        assert_ne!(spec_hash(&s, None), spec_hash(&s, Some("drop-inv:1")));
        assert_eq!(spec_hash(&s, None), spec_hash(&s, None));
    }

    #[test]
    fn journal_round_trips_and_replays() {
        let s = spec();
        let points = s.points();
        let hashes: Vec<String> = points.iter().map(point_hash).collect();
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path, &s, None).unwrap();
        let entry = JournalEntry {
            hash: hashes[1].clone(),
            record: PointRecord::new(&points[1], PointOutcome::TimedOut { cycles: 9 }),
            telemetry: RunTelemetry::default(),
        };
        w.append(&entry).unwrap();
        drop(w);
        let loaded = load(&path, &s, None, &hashes).unwrap();
        assert_eq!(loaded.completed(), 1);
        assert_eq!(loaded.skipped_lines, 0);
        assert_eq!(loaded.entries[1].as_ref().unwrap(), &entry);
        assert!(loaded.entries[0].is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_line_is_tolerated() {
        let s = spec();
        let points = s.points();
        let hashes: Vec<String> = points.iter().map(point_hash).collect();
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path, &s, None).unwrap();
        w.append(&JournalEntry {
            hash: hashes[0].clone(),
            record: PointRecord::new(&points[0], PointOutcome::TimedOut { cycles: 1 }),
            telemetry: RunTelemetry::default(),
        })
        .unwrap();
        drop(w);
        // Simulate a kill mid-write: append half a line.
        use std::io::Write as _;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"Point\":{{\"hash\":\"dead").unwrap();
        drop(f);
        let loaded = load(&path, &s, None, &hashes).unwrap();
        assert_eq!(loaded.completed(), 1);
        assert_eq!(loaded.skipped_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_spec_is_refused() {
        let s = spec();
        let points = s.points();
        let hashes: Vec<String> = points.iter().map(point_hash).collect();
        let path = tmp("mismatch");
        drop(JournalWriter::create(&path, &s, None).unwrap());
        let mut other = spec();
        other.seed = 77;
        let other_hashes: Vec<String> = other.points().iter().map(point_hash).collect();
        let err = load(&path, &other, None, &other_hashes).unwrap_err();
        assert!(err.contains("different computation"), "{err}");
        // Same spec but different injection is a different computation too.
        let err = load(&path, &s, Some("corrupt:1"), &hashes).unwrap_err();
        assert!(err.contains("different computation"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_point_lines_are_skipped_not_merged() {
        let s = spec();
        let points = s.points();
        let hashes: Vec<String> = points.iter().map(point_hash).collect();
        let path = tmp("stale");
        let mut w = JournalWriter::create(&path, &s, None).unwrap();
        // An entry whose index exists but whose hash does not match the
        // grid (as if the workload axis changed under the journal).
        w.append(&JournalEntry {
            hash: "0123456789abcdef".to_string(),
            record: PointRecord::new(&points[0], PointOutcome::TimedOut { cycles: 1 }),
            telemetry: RunTelemetry::default(),
        })
        .unwrap();
        drop(w);
        let loaded = load(&path, &s, None, &hashes).unwrap();
        assert_eq!(loaded.completed(), 0);
        assert_eq!(loaded.skipped_lines, 1);
        let _ = std::fs::remove_file(&path);
    }
}
