//! The crash-safety guarantees, tested end to end:
//!
//! 1. **Kill-and-resume determinism** — replaying a journal holding any
//!    subset of completed points and executing the remainder reassembles
//!    JSON/CSV artifacts *byte-identical* to an uninterrupted run, at any
//!    `--jobs` value and under either isolation mode.
//! 2. **Process isolation** — points run in supervised child
//!    `mcsim-sweep --point <hash>` processes produce the same bytes as
//!    in-process threads; a worker that aborts or wedges costs one cell
//!    (with its attempt count recorded), never the sweep.
//! 3. **Bounded transient retry** — a worker lost to an environmental
//!    fault is re-run deterministically (same seed) within the attempt
//!    budget; exhaustion records `Crashed`/`Wedged`, and simulated
//!    failures never retry.

use std::path::PathBuf;
use std::time::Duration;

use mcsim_consistency::Model;
use mcsim_proc::Techniques;
use mcsim_sweep::{
    journal, run_sweep, ExecOptions, Isolation, PointOutcome, RetryPolicy, SweepSpec, WorkloadSpec,
};
use proptest::prelude::*;

/// The worker binary the supervisor spawns in these tests.
fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_mcsim-sweep"))
}

/// A 4-point grid: small enough that every completed-subset (2^4) is
/// enumerable by the property test, wide enough to cross models and
/// techniques.
fn small_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("resume-test", "kill-and-resume comparison grid");
    spec.seed = 7;
    spec.models = vec![Model::Sc, Model::Rc];
    spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
    spec.workloads = vec![WorkloadSpec::PaperExample1];
    spec
}

/// A 2-point grid for the (slower) process-spawning tests.
fn tiny_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("isolation-test", "process-isolation grid");
    spec.seed = 7;
    spec.models = vec![Model::Sc];
    spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
    spec.workloads = vec![WorkloadSpec::PaperExample1];
    spec
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mcsim-resume-{name}-{}", std::process::id()))
}

/// Simulates a kill: keeps the journal's header plus only the point
/// lines whose expansion index is in `keep_mask`, as if the process died
/// with exactly that subset completed. (Any subset is reachable in a
/// real parallel run — workers finish out of order.)
fn truncate_journal(path: &PathBuf, keep_mask: u32) {
    let text = std::fs::read_to_string(path).expect("journal readable");
    let mut kept = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 {
            kept.push(line.to_string());
            continue;
        }
        if let Ok(journal::JournalLine::Point(entry)) = serde_json::from_str(line) {
            if keep_mask & (1 << entry.record.index) != 0 {
                kept.push(line.to_string());
            }
        }
    }
    std::fs::write(path, kept.join("\n") + "\n").expect("journal writable");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The tentpole guarantee: kill at any completed-subset boundary,
    /// resume at any parallelism, get the same bytes.
    #[test]
    fn resume_from_any_subset_is_byte_identical(keep_mask in 0u32..16, jobs in 1usize..5) {
        let spec = small_spec();
        let reference = run_sweep(&spec, &ExecOptions::default()).expect("valid spec");

        let path = tmp(&format!("prop-{keep_mask}-{jobs}"));
        let _ = std::fs::remove_file(&path);
        // Full journaled run, then cut it down to the surviving subset.
        run_sweep(
            &spec,
            &ExecOptions { journal: Some(path.clone()), ..ExecOptions::default() },
        )
        .expect("valid spec");
        truncate_journal(&path, keep_mask);

        let resumed = run_sweep(
            &spec,
            &ExecOptions {
                jobs,
                journal: Some(path.clone()),
                resume: true,
                ..ExecOptions::default()
            },
        )
        .expect("valid spec");
        let _ = std::fs::remove_file(&path);

        prop_assert_eq!(resumed.timing.resumed_points, keep_mask.count_ones() as usize);
        // Byte-identical artifacts, not just equal structures.
        prop_assert_eq!(resumed.result.to_json(), reference.result.to_json());
        prop_assert_eq!(resumed.result.to_csv(), reference.result.to_csv());
    }
}

#[test]
fn process_isolation_is_byte_identical_to_threads() {
    let spec = tiny_spec();
    let threads = run_sweep(&spec, &ExecOptions::default()).expect("valid spec");
    let processes = run_sweep(
        &spec,
        &ExecOptions {
            jobs: 2,
            isolation: Isolation::Process,
            worker_exe: Some(worker_exe()),
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    assert!(processes.result.rows.iter().all(|r| r.attempts == 1));
    assert_eq!(processes.result.to_json(), threads.result.to_json());
    assert_eq!(processes.result.to_csv(), threads.result.to_csv());
}

#[test]
fn resume_finishes_a_journal_under_process_isolation() {
    // Journal written by a thread-mode run, killed with one point done,
    // resumed under process isolation: same bytes again.
    let spec = small_spec();
    let reference = run_sweep(&spec, &ExecOptions::default()).expect("valid spec");
    let path = tmp("cross-isolation");
    let _ = std::fs::remove_file(&path);
    run_sweep(
        &spec,
        &ExecOptions {
            journal: Some(path.clone()),
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    truncate_journal(&path, 0b0101);
    let resumed = run_sweep(
        &spec,
        &ExecOptions {
            jobs: 2,
            journal: Some(path.clone()),
            resume: true,
            isolation: Isolation::Process,
            worker_exe: Some(worker_exe()),
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    let _ = std::fs::remove_file(&path);
    assert_eq!(resumed.timing.resumed_points, 2);
    assert_eq!(resumed.result.to_json(), reference.result.to_json());
}

#[test]
fn aborting_worker_is_retried_and_recovers() {
    // The worker aborts on attempt 1 (a transient, environmental loss)
    // and succeeds on attempt 2: every point recovers, the retry is
    // recorded, and the *rows' simulated content* matches a clean run.
    let spec = tiny_spec();
    let clean = run_sweep(&spec, &ExecOptions::default()).expect("valid spec");
    let run = run_sweep(
        &spec,
        &ExecOptions {
            isolation: Isolation::Process,
            worker_exe: Some(worker_exe()),
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_ms: 1,
            },
            worker_env: vec![("MCSIM_SWEEP_TEST_ABORT".to_string(), "2".to_string())],
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    for (row, clean_row) in run.result.rows.iter().zip(&clean.result.rows) {
        assert_eq!(row.attempts, 2, "point {} should retry once", row.index);
        assert_eq!(
            row.outcome, clean_row.outcome,
            "retry must not change content"
        );
    }
}

#[test]
fn retry_budget_exhaustion_records_crashed_not_fatal() {
    // The worker aborts on every attempt; the sweep still completes,
    // recording the loss with its attempt count.
    let spec = tiny_spec();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            isolation: Isolation::Process,
            worker_exe: Some(worker_exe()),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_ms: 1,
            },
            worker_env: vec![("MCSIM_SWEEP_TEST_ABORT".to_string(), "99".to_string())],
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    assert_eq!(run.result.rows.len(), 2);
    for row in &run.result.rows {
        assert_eq!(row.attempts, 2);
        assert!(
            matches!(row.outcome, PointOutcome::Crashed { .. }),
            "got {:?}",
            row.outcome
        );
        assert_eq!(
            row.outcome.failure_class(),
            Some(mcsim_guard::FailureClass::Transient)
        );
    }
}

#[test]
fn wedged_worker_is_killed_at_the_deadline_and_isolated() {
    // One point's worker hangs forever; the supervisor kills it at the
    // deadline (twice — the loss is transient, so it gets its retry) and
    // the other point still completes.
    let spec = tiny_spec();
    let hashes: Vec<String> = spec.points().iter().map(journal::point_hash).collect();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            jobs: 2,
            isolation: Isolation::Process,
            worker_exe: Some(worker_exe()),
            deadline: Duration::from_millis(300),
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_ms: 1,
            },
            worker_env: vec![("MCSIM_SWEEP_TEST_HANG".to_string(), hashes[0].clone())],
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    assert_eq!(
        run.result.rows[0].outcome,
        PointOutcome::Wedged { deadline_ms: 300 }
    );
    assert_eq!(run.result.rows[0].attempts, 2);
    assert!(
        run.result.rows[1].outcome.is_done(),
        "healthy point must finish"
    );
    assert_eq!(run.result.rows[1].attempts, 1);
}

#[test]
fn resuming_into_a_different_spec_is_refused() {
    let spec = small_spec();
    let path = tmp("spec-drift");
    let _ = std::fs::remove_file(&path);
    run_sweep(
        &spec,
        &ExecOptions {
            journal: Some(path.clone()),
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    let mut other = spec.clone();
    other.seed = 8; // every derived point seed moves
    let err = run_sweep(
        &other,
        &ExecOptions {
            journal: Some(path.clone()),
            resume: true,
            ..ExecOptions::default()
        },
    )
    .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(err.contains("different computation"), "{err}");
}

#[test]
fn simulated_failures_do_not_consume_retries() {
    // A timeout is a deterministic property of the point: under process
    // isolation with retries available, it must be recorded on attempt 1.
    let mut spec = tiny_spec();
    spec.max_cycles = 10;
    let run = run_sweep(
        &spec,
        &ExecOptions {
            isolation: Isolation::Process,
            worker_exe: Some(worker_exe()),
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_ms: 1,
            },
            ..ExecOptions::default()
        },
    )
    .expect("valid spec");
    for row in &run.result.rows {
        assert!(
            matches!(row.outcome, PointOutcome::TimedOut { .. }),
            "got {:?}",
            row.outcome
        );
        assert_eq!(row.attempts, 1, "deterministic failures never retry");
    }
}
