//! The engine's central guarantees, tested end to end:
//!
//! 1. **Determinism** — the rows a sweep produces are bit-identical
//!    whatever the worker count (`--jobs 1` vs `--jobs 4`).
//! 2. **Round-tripping** — specs and results survive JSON serialization,
//!    and a round-tripped spec expands to the same seeded points.
//! 3. **Failure isolation** — a point that times out or panics becomes a
//!    failed cell; the rest of the grid still completes.

use mcsim_consistency::Model;
use mcsim_proc::Techniques;
use mcsim_sweep::{run_sweep, ExecOptions, PointOutcome, SweepResult, SweepSpec, WorkloadSpec};

/// A grid small enough for debug-mode tests but wide enough to exercise
/// several workloads, models and techniques across threads.
fn test_spec() -> SweepSpec {
    let mut spec = SweepSpec::new("determinism-test", "jobs=1 vs jobs=4 comparison grid");
    spec.seed = 42;
    spec.models = vec![Model::Sc, Model::Wc];
    spec.techniques = vec![Techniques::NONE, Techniques::BOTH];
    spec.workloads = vec![
        WorkloadSpec::PaperExample1,
        WorkloadSpec::CriticalSections {
            label: "small contended".to_string(),
            procs: 2,
            sections: 2,
            reads: 2,
            writes: 2,
            locks: 1,
            lines_per_region: 4,
            think: 0,
            private_regions: false,
        },
        WorkloadSpec::ArraySweep { n: 4, stores: true },
    ];
    spec
}

fn rows_with_jobs(spec: &SweepSpec, jobs: usize) -> SweepResult {
    run_sweep(
        spec,
        &ExecOptions {
            jobs,
            ..ExecOptions::default()
        },
    )
    .expect("valid spec")
    .result
}

#[test]
fn parallel_rows_are_bit_identical_to_serial() {
    let spec = test_spec();
    let serial = rows_with_jobs(&spec, 1);
    let parallel = rows_with_jobs(&spec, 4);
    assert_eq!(serial.rows.len(), spec.len());
    // PointRecord derives Eq: this compares every field of every row,
    // including the full metric counts — not just cycles.
    assert_eq!(serial, parallel);
    assert!(serial.rows.iter().all(|r| r.outcome.is_done()));
}

#[test]
fn repeated_runs_are_reproducible() {
    let spec = test_spec();
    assert_eq!(rows_with_jobs(&spec, 2), rows_with_jobs(&spec, 2));
}

#[test]
fn spec_round_trips_through_json_with_identical_points() {
    let spec = test_spec();
    let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
    let back: SweepSpec = serde_json::from_str(&json).expect("spec parses");
    assert_eq!(back, spec);
    assert_eq!(back.points(), spec.points());
}

#[test]
fn result_round_trips_through_json() {
    let result = rows_with_jobs(&test_spec(), 2);
    let back = SweepResult::from_json(&result.to_json()).expect("result parses");
    assert_eq!(back, result);
}

#[test]
fn timeout_is_recorded_as_failed_cell_not_abort() {
    let mut spec = test_spec();
    spec.max_cycles = 10; // far below any real completion
    let result = rows_with_jobs(&spec, 2);
    assert_eq!(result.rows.len(), spec.len());
    for row in &result.rows {
        assert!(
            matches!(row.outcome, PointOutcome::TimedOut { .. }),
            "row {} should time out, got {:?}",
            row.index,
            row.outcome
        );
    }
}

#[test]
fn failure_traces_are_bit_identical_across_jobs() {
    // `--trace DIR` leaves a Chrome JSON post-mortem for every failed
    // point. The dumps must be byte-identical whatever the worker count,
    // exactly like the rows themselves.
    let mut spec = test_spec();
    spec.max_cycles = 50; // low enough that points time out and dump
    let dump = |jobs: usize| {
        let dir = std::env::temp_dir().join(format!("mcsim-sweep-trace-j{jobs}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let opts = ExecOptions {
            jobs,
            trace_dir: Some(dir.clone()),
            ..ExecOptions::default()
        };
        run_sweep(&spec, &opts).expect("valid spec");
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let contents: Vec<(String, Vec<u8>)> = files
            .iter()
            .map(|p| {
                (
                    p.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(p).unwrap(),
                )
            })
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        contents
    };
    let serial = dump(1);
    assert!(!serial.is_empty(), "some points must time out and dump");
    assert_eq!(serial, dump(4));
}

#[test]
fn panicking_point_is_isolated_from_healthy_points() {
    let mut spec = SweepSpec::new("panic-isolation", "one bad workload among good ones");
    spec.models = vec![Model::Sc];
    spec.techniques = vec![Techniques::NONE];
    spec.workloads = vec![
        WorkloadSpec::PaperExample1,
        // locks = 0 violates the generator's contract and panics inside
        // the worker; the executor must contain it.
        WorkloadSpec::CriticalSections {
            label: "invalid (0 locks)".to_string(),
            procs: 2,
            sections: 1,
            reads: 1,
            writes: 1,
            locks: 0,
            lines_per_region: 4,
            think: 0,
            private_regions: false,
        },
        WorkloadSpec::ArraySweep {
            n: 2,
            stores: false,
        },
    ];
    let result = rows_with_jobs(&spec, 2);
    assert_eq!(result.rows.len(), 3);
    assert!(result.rows[0].outcome.is_done());
    assert!(
        matches!(&result.rows[1].outcome, PointOutcome::Panicked { .. }),
        "got {:?}",
        result.rows[1].outcome
    );
    assert!(result.rows[2].outcome.is_done());
    assert_eq!(result.failures().len(), 1);
}
