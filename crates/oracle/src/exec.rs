//! The abstract machine behind the oracle: canonical states, the greedy
//! fetch closure, the per-model perform rule, and the memoized search.

use crate::{OracleConfig, OracleResult, Outcome};
use mcsim_consistency::{AccessClass, Model};
use mcsim_isa::{AddrExpr, AluOp, Instr, Operand, Program, RmwKind, NUM_REGS};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// A register or operand value: concrete, or the tag of a pending entry
/// in the same processor's queue. Tags are the entry's *current queue
/// position*, renumbered whenever an earlier entry retires — that keeps
/// states canonical, so a spin loop's second iteration hashes equal to
/// its first and the visited set prunes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    C(u64),
    T(u8),
}

impl Val {
    fn concrete(self) -> Option<u64> {
        match self {
            Val::C(v) => Some(v),
            Val::T(_) => None,
        }
    }

    fn subst(&mut self, tag: u8, v: u64) {
        if *self == Val::T(tag) {
            *self = Val::C(v);
        }
    }

    fn shift_down(&mut self, removed: u8) {
        if let Val::T(t) = *self {
            debug_assert_ne!(t, removed, "dangling tag after retirement");
            if t > removed {
                *self = Val::T(t - 1);
            }
        }
    }
}

/// One not-yet-performed operation. `Alu` entries are pure dataflow —
/// they resolve automatically once their inputs do and never constrain
/// memory ordering.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Entry {
    Load {
        addr: u64,
        class: AccessClass,
    },
    Store {
        addr: u64,
        class: AccessClass,
        data: Val,
    },
    Rmw {
        addr: u64,
        class: AccessClass,
        kind: RmwKind,
        src: Val,
    },
    Alu {
        op: AluOp,
        lhs: Val,
        rhs: Val,
    },
}

impl Entry {
    /// Class and address if this is a memory access.
    fn mem(&self) -> Option<(AccessClass, u64)> {
        match *self {
            Entry::Load { addr, class } => Some((class, addr)),
            Entry::Store { addr, class, .. } | Entry::Rmw { addr, class, .. } => {
                Some((class, addr))
            }
            Entry::Alu { .. } => None,
        }
    }

    fn subst(&mut self, tag: u8, v: u64) {
        match self {
            Entry::Load { .. } => {}
            Entry::Store { data, .. } => data.subst(tag, v),
            Entry::Rmw { src, .. } => src.subst(tag, v),
            Entry::Alu { lhs, rhs, .. } => {
                lhs.subst(tag, v);
                rhs.subst(tag, v);
            }
        }
    }

    fn shift_down(&mut self, removed: u8) {
        match self {
            Entry::Load { .. } => {}
            Entry::Store { data, .. } => data.shift_down(removed),
            Entry::Rmw { src, .. } => src.shift_down(removed),
            Entry::Alu { lhs, rhs, .. } => {
                lhs.shift_down(removed);
                rhs.shift_down(removed);
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProcState {
    pc: u32,
    regs: Vec<Val>,
    pending: Vec<Entry>,
}

impl ProcState {
    fn new() -> Self {
        ProcState {
            pc: 0,
            regs: vec![Val::C(0); NUM_REGS],
            pending: Vec::new(),
        }
    }

    fn operand(&self, o: &Operand) -> Val {
        match o {
            Operand::Imm(v) => Val::C(*v),
            Operand::Reg(r) => self.regs[r.index()],
        }
    }

    /// Evaluates an address expression; `None` while its index register
    /// is still a pending tag.
    fn addr(&self, a: &AddrExpr) -> Option<u64> {
        if let Some(r) = a.dep() {
            self.regs[r.index()].concrete()?;
        }
        Some(
            a.eval(|r| self.regs[r.index()].concrete().expect("checked above"))
                .0,
        )
    }

    fn push(&mut self, e: Entry) -> u8 {
        let tag = u8::try_from(self.pending.len()).expect("pending queue exceeds 255 entries");
        self.pending.push(e);
        tag
    }

    /// Retires entry `i`: substitutes its produced value (if any) into
    /// every register and queue operand, removes it, and renumbers the
    /// tags of everything younger.
    fn retire(&mut self, i: usize, produced: Option<u64>) {
        let tag = i as u8;
        if let Some(v) = produced {
            for r in &mut self.regs {
                r.subst(tag, v);
            }
            for e in &mut self.pending {
                e.subst(tag, v);
            }
        }
        self.pending.remove(i);
        for r in &mut self.regs {
            r.shift_down(tag);
        }
        for e in &mut self.pending {
            e.shift_down(tag);
        }
    }

    /// Resolves every deferred ALU entry whose inputs have become
    /// concrete (cascading: one resolution may unblock the next).
    fn cascade(&mut self) {
        loop {
            let ready = self.pending.iter().position(|e| {
                matches!(e, Entry::Alu { lhs, rhs, .. }
                    if lhs.concrete().is_some() && rhs.concrete().is_some())
            });
            let Some(i) = ready else { return };
            let Entry::Alu { op, lhs, rhs } = self.pending[i].clone() else {
                unreachable!("position matched an Alu entry");
            };
            let v = op.apply(
                lhs.concrete().expect("ready"),
                rhs.concrete().expect("ready"),
            );
            self.retire(i, Some(v));
        }
    }

    /// Greedy instantaneous fetch: executes/enqueues instructions in
    /// program order until a halt, a branch on a pending value, or an
    /// address that depends on a pending value.
    fn fetch_closure(&mut self, prog: &Program) {
        loop {
            let Some(instr) = prog.fetch(self.pc as usize) else {
                return;
            };
            match instr {
                Instr::Halt => return,
                Instr::Nop | Instr::Prefetch { .. } => self.pc += 1,
                Instr::Jump { target } => self.pc = *target,
                Instr::Alu {
                    dst, op, lhs, rhs, ..
                } => {
                    let (l, r) = (self.operand(lhs), self.operand(rhs));
                    self.regs[dst.index()] = match (l.concrete(), r.concrete()) {
                        (Some(a), Some(b)) => Val::C(op.apply(a, b)),
                        _ => Val::T(self.push(Entry::Alu {
                            op: *op,
                            lhs: l,
                            rhs: r,
                        })),
                    };
                    self.pc += 1;
                }
                Instr::Branch {
                    cond,
                    lhs,
                    rhs,
                    target,
                    ..
                } => {
                    let (Some(a), Some(b)) =
                        (self.operand(lhs).concrete(), self.operand(rhs).concrete())
                    else {
                        return; // blocked on a pending condition
                    };
                    self.pc = if cond.apply(a, b) {
                        *target
                    } else {
                        self.pc + 1
                    };
                }
                Instr::Load { dst, addr, .. } => {
                    let Some(a) = self.addr(addr) else { return };
                    let class = AccessClass::of_instr(instr).expect("load is a memory access");
                    let tag = self.push(Entry::Load { addr: a, class });
                    self.regs[dst.index()] = Val::T(tag);
                    self.pc += 1;
                }
                Instr::Store { addr, src, .. } => {
                    let Some(a) = self.addr(addr) else { return };
                    let class = AccessClass::of_instr(instr).expect("store is a memory access");
                    let data = self.operand(src);
                    self.push(Entry::Store {
                        addr: a,
                        class,
                        data,
                    });
                    self.pc += 1;
                }
                Instr::Rmw {
                    dst,
                    addr,
                    kind,
                    src,
                    ..
                } => {
                    let Some(a) = self.addr(addr) else { return };
                    let class = AccessClass::of_instr(instr).expect("rmw is a memory access");
                    let src = self.operand(src);
                    let tag = self.push(Entry::Rmw {
                        addr: a,
                        class,
                        kind: *kind,
                        src,
                    });
                    self.regs[dst.index()] = Val::T(tag);
                    self.pc += 1;
                }
            }
        }
    }

    fn halted(&self, prog: &Program) -> bool {
        matches!(prog.fetch(self.pc as usize), Some(Instr::Halt) | None)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    procs: Vec<ProcState>,
    mem: Vec<(u64, u64)>, // sorted — hashable form of the map
}

impl State {
    fn read(&self, addr: u64) -> u64 {
        match self.mem.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.mem[i].1,
            Err(_) => 0,
        }
    }

    fn write(&mut self, addr: u64, v: u64) {
        match self.mem.binary_search_by_key(&addr, |&(a, _)| a) {
            Ok(i) => self.mem[i].1 = v,
            Err(i) => self.mem.insert(i, (addr, v)),
        }
    }
}

/// Whether pending entry `i` of queue `q` may perform now under `model`.
fn may_perform(model: Model, q: &[Entry], i: usize) -> bool {
    let Some((class, addr)) = q[i].mem() else {
        return false; // ALU entries resolve by cascade, not by choice
    };
    let data_ready = match &q[i] {
        Entry::Store { data, .. } => data.concrete().is_some(),
        Entry::Rmw { src, .. } => src.concrete().is_some(),
        _ => true,
    };
    if !data_ready {
        return false;
    }
    q[..i].iter().all(|e| match e.mem() {
        None => true,
        // Earlier same-address accesses order unconditionally (per-location
        // program order); otherwise only the model's delay arcs constrain.
        Some((ec, ea)) => ea != addr && !model.must_delay(ec, class),
    })
}

/// Performs pending entry `i` of processor `p`, producing the successor
/// state (atomic read/write of the single shared memory, tag resolution,
/// ALU cascade, then resumed fetch).
fn perform(st: &State, programs: &[Program], p: usize, i: usize) -> State {
    let mut next = st.clone();
    let entry = next.procs[p].pending[i].clone();
    match entry {
        Entry::Load { addr, .. } => {
            let v = next.read(addr);
            next.procs[p].retire(i, Some(v));
        }
        Entry::Store { addr, data, .. } => {
            let v = data.concrete().expect("checked by may_perform");
            next.write(addr, v);
            next.procs[p].retire(i, None);
        }
        Entry::Rmw {
            addr, kind, src, ..
        } => {
            let old = next.read(addr);
            let operand = src.concrete().expect("checked by may_perform");
            next.write(addr, kind.new_value(old, operand));
            next.procs[p].retire(i, Some(old));
        }
        Entry::Alu { .. } => unreachable!("ALU entries are never chosen to perform"),
    }
    next.procs[p].cascade();
    next.procs[p].fetch_closure(&programs[p]);
    next
}

/// Exhaustive memoized DFS over the abstract machine's state graph.
pub(crate) fn enumerate(
    model: Model,
    programs: &[Program],
    init_mem: &BTreeMap<u64, u64>,
    cfg: OracleConfig,
) -> OracleResult {
    let mut start = State {
        procs: (0..programs.len()).map(|_| ProcState::new()).collect(),
        mem: init_mem.iter().map(|(&a, &v)| (a, v)).collect(),
    };
    for (p, prog) in programs.iter().enumerate() {
        start.procs[p].fetch_closure(prog);
    }
    let mut visited: HashSet<State> = HashSet::new();
    let mut outcomes = BTreeSet::new();
    let mut stack = vec![start.clone()];
    visited.insert(start);
    let mut complete = true;
    while let Some(st) = stack.pop() {
        if visited.len() > cfg.max_states {
            complete = false;
            break;
        }
        let mut terminal = true;
        for p in 0..programs.len() {
            for i in 0..st.procs[p].pending.len() {
                if may_perform(model, &st.procs[p].pending, i) {
                    terminal = false;
                    let next = perform(&st, programs, p, i);
                    if visited.insert(next.clone()) {
                        stack.push(next);
                    }
                }
            }
        }
        if terminal {
            // With empty queues a fetch-closed processor is necessarily
            // halted; a non-empty queue always has a performable entry
            // (its oldest access has no earlier constraints), so this
            // state is a genuine end state.
            debug_assert!(st
                .procs
                .iter()
                .zip(programs)
                .all(|(ps, prog)| ps.pending.is_empty() && ps.halted(prog)));
            outcomes.insert(Outcome {
                regs: st
                    .procs
                    .iter()
                    .map(|ps| {
                        ps.regs
                            .iter()
                            .map(|v| v.concrete().expect("terminal registers are concrete"))
                            .collect()
                    })
                    .collect(),
                memory: st.mem.iter().copied().collect(),
            });
        }
    }
    OracleResult { outcomes, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{outcomes as enumerate_model, sc_outcomes, OracleConfig};
    use mcsim_isa::reg::{R1, R2};
    use mcsim_isa::ProgramBuilder;

    fn mem0() -> BTreeMap<u64, u64> {
        BTreeMap::new()
    }

    fn sb() -> Vec<Program> {
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 1u64)
            .load(R1, 0x200u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .store(0x200u64, 1u64)
            .load(R1, 0x100u64)
            .halt()
            .build()
            .unwrap();
        vec![p0, p1]
    }

    #[test]
    fn store_buffering_outcomes_per_model() {
        let progs = sb();
        let zero_zero = |r: &OracleResult| {
            r.outcomes
                .iter()
                .any(|o| o.reg(0, R1) == 0 && o.reg(1, R1) == 0)
        };
        let sc = sc_outcomes(&progs, &mem0(), OracleConfig::default());
        assert!(sc.complete);
        assert!(!zero_zero(&sc), "SC forbids both loads reading 0");
        // The three other combinations are all SC-reachable.
        for want in [(0, 1), (1, 0), (1, 1)] {
            assert!(sc
                .outcomes
                .iter()
                .any(|o| (o.reg(0, R1), o.reg(1, R1)) == want));
        }
        // Every relaxed model allows (0, 0): the store -> load arc is gone.
        for model in [Model::Tso, Model::Pc, Model::Pso, Model::Wc, Model::Rc] {
            let r = enumerate_model(model, &progs, &mem0(), OracleConfig::default());
            assert!(r.complete);
            assert!(zero_zero(&r), "{model} allows (0, 0)");
            assert!(sc.outcomes.is_subset(&r.outcomes), "SC ⊆ {model}");
        }
    }

    #[test]
    fn load_buffering_forbidden_under_store_buffer_models() {
        // LB: P0: r1=x; y=1.  P1: r1=y; x=1.  (1,1) needs a load to pass
        // an earlier... later store to pass an earlier load — kept by SC,
        // TSO, PSO, and PC (the load -> store arc), dropped by WC/RC.
        let p0 = ProgramBuilder::new("p0")
            .load(R1, 0x100u64)
            .store(0x200u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .load(R1, 0x200u64)
            .store(0x100u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let progs = vec![p0, p1];
        let one_one = |r: &OracleResult| {
            r.outcomes
                .iter()
                .any(|o| o.reg(0, R1) == 1 && o.reg(1, R1) == 1)
        };
        for model in [Model::Sc, Model::Tso, Model::Pc, Model::Pso] {
            let r = enumerate_model(model, &progs, &mem0(), OracleConfig::default());
            assert!(!one_one(&r), "{model} forbids (1, 1)");
        }
        for model in [Model::Wc, Model::RcSc, Model::Rc] {
            let r = enumerate_model(model, &progs, &mem0(), OracleConfig::default());
            assert!(one_one(&r), "{model} allows (1, 1)");
        }
    }

    #[test]
    fn pso_reorders_plain_stores_but_not_releases() {
        // MP with an ordinary flag store: PSO lets the flag pass the data
        // (stale read possible); with a release flag store it cannot.
        let racy_p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 42u64)
            .store(0x200u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let rel_p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 42u64)
            .store_release(0x200u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .load(R1, 0x200u64)
            .load(R2, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let stale = |r: &OracleResult| {
            r.outcomes
                .iter()
                .any(|o| o.reg(1, R1) == 1 && o.reg(1, R2) == 0)
        };
        let racy = enumerate_model(
            Model::Pso,
            &[racy_p0, p1.clone()],
            &mem0(),
            OracleConfig::default(),
        );
        assert!(stale(&racy), "PSO reorders the two plain stores");
        let rel = enumerate_model(Model::Pso, &[rel_p0, p1], &mem0(), OracleConfig::default());
        assert!(!stale(&rel), "release store keeps the data ahead");
    }

    #[test]
    fn tso_keeps_stores_in_order() {
        // Same racy MP: TSO's store -> store arc forbids the stale read.
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 42u64)
            .store(0x200u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .load(R1, 0x200u64)
            .load(R2, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let r = enumerate_model(Model::Tso, &[p0, p1], &mem0(), OracleConfig::default());
        assert!(!r
            .outcomes
            .iter()
            .any(|o| o.reg(1, R1) == 1 && o.reg(1, R2) == 0));
    }

    #[test]
    fn coherence_rr_never_goes_backwards() {
        // Per-location program order holds under every model.
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .load(R1, 0x100u64)
            .load(R2, 0x100u64)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL_EXTENDED {
            let r = enumerate_model(
                model,
                &[p0.clone(), p1.clone()],
                &mem0(),
                OracleConfig::default(),
            );
            assert!(
                !r.outcomes
                    .iter()
                    .any(|o| o.reg(1, R1) == 1 && o.reg(1, R2) == 0),
                "{model}: reads of one location went backwards"
            );
        }
    }

    #[test]
    fn message_passing_with_spin_converges() {
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 42u64)
            .store_release(0x200u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .spin_until(0x200, 1, R1)
            .load(R2, 0x100u64)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL_EXTENDED {
            let r = enumerate_model(
                model,
                &[p0.clone(), p1.clone()],
                &mem0(),
                OracleConfig::default(),
            );
            assert!(r.complete, "{model}: spin loop pruned by visited set");
            assert!(!r.outcomes.is_empty());
            for o in &r.outcomes {
                assert_eq!(o.reg(1, R2), 42, "{model}: DRF hand-off must deliver");
            }
        }
    }

    #[test]
    fn lock_counter_has_unique_outcome_under_every_model() {
        let worker = || {
            ProgramBuilder::new("w")
                .lock(0x40, R1)
                .load(R2, 0x1000u64)
                .alu(R2, mcsim_isa::AluOp::Add, R2, 1u64)
                .store(0x1000u64, R2)
                .unlock(0x40)
                .halt()
                .build()
                .unwrap()
        };
        for model in Model::ALL_EXTENDED {
            let r = enumerate_model(
                model,
                &[worker(), worker()],
                &mem0(),
                OracleConfig::default(),
            );
            assert!(r.complete, "{model}");
            for o in &r.outcomes {
                assert_eq!(o.mem(0x1000), 2, "{model}: critical sections interleaved");
            }
        }
    }

    #[test]
    fn store_data_dependence_does_not_block_later_accesses() {
        // P0: r1 = A; store B = r1+1; store C = 7.  Under WC the
        // independent store to C may perform before the load of A — the
        // symbolic store data must not serialize the queue.
        let p0 = ProgramBuilder::new("p0")
            .load(R1, 0x100u64)
            .alu(R2, mcsim_isa::AluOp::Add, R1, 1u64)
            .store(0x200u64, R2)
            .store(0x300u64, 7u64)
            .halt()
            .build()
            .unwrap();
        // P1 observes C then writes A: if it sees C == 7 and then sets A,
        // P0's load may still return the new A only if the load performed
        // after — under WC both r1 values must be reachable with C seen.
        let p1 = ProgramBuilder::new("p1")
            .load(R1, 0x300u64)
            .store(0x100u64, 9u64)
            .halt()
            .build()
            .unwrap();
        let r = enumerate_model(Model::Wc, &[p0, p1], &mem0(), OracleConfig::default());
        assert!(r.complete);
        // The interesting interleaving: P1 saw C=7 (store C passed the
        // load of A), then wrote A, and P0's load still read the new 9.
        assert!(
            r.outcomes
                .iter()
                .any(|o| o.reg(1, R1) == 7 && o.reg(0, R1) == 9),
            "store C must be able to perform before the load of A"
        );
    }

    #[test]
    fn rmw_is_atomic_under_every_model() {
        // Two racing fetch-adds: a lost update (both read 0, final 1) must
        // be impossible; the two old values are always {0, 1}.
        let adder = |n: &'static str| {
            ProgramBuilder::new(n)
                .rmw(
                    R1,
                    0x100u64,
                    mcsim_isa::RmwKind::FetchAdd,
                    1u64,
                    mcsim_isa::MemFlavor::Ordinary,
                )
                .halt()
                .build()
                .unwrap()
        };
        for model in Model::ALL_EXTENDED {
            let r = enumerate_model(
                model,
                &[adder("a"), adder("b")],
                &mem0(),
                OracleConfig::default(),
            );
            assert!(r.complete && !r.outcomes.is_empty(), "{model}");
            for o in &r.outcomes {
                assert_eq!(o.mem(0x100), 2, "{model}: lost update");
                assert_eq!(o.reg(0, R1) + o.reg(1, R1), 1, "{model}: old values");
            }
        }
    }

    #[test]
    fn sc_agrees_with_atomic_interleaving_on_alu_heavy_programs() {
        // The deferred-ALU machinery must not change SC outcomes.
        let p0 = ProgramBuilder::new("p0")
            .load(R1, 0x100u64)
            .alu(R2, mcsim_isa::AluOp::Mul, R1, 3u64)
            .store(0x200u64, R2)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .store(0x100u64, 2u64)
            .load(R1, 0x200u64)
            .halt()
            .build()
            .unwrap();
        let r = sc_outcomes(&[p0, p1], &mem0(), OracleConfig::default());
        assert!(r.complete);
        // P0 writes either 0 or 6 to 0x200; P1 reads 0 or that value.
        for o in &r.outcomes {
            assert!(o.mem(0x200) == 0 || o.mem(0x200) == 6);
            assert!(o.reg(1, R1) == 0 || o.reg(1, R1) == o.mem(0x200));
        }
    }
}
