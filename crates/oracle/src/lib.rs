//! # mcsim-oracle — the per-model execution-enumeration oracle
//!
//! An exhaustive abstract-machine enumerator: for litmus-sized programs
//! it computes the *complete* set of allowed final states under each
//! consistency model, in the style of operational "instantaneous
//! instruction execution" (I2E) frameworks.
//!
//! ## The abstract machine
//!
//! Each processor holds a program counter, a register file whose slots
//! are either concrete values or *tags* of not-yet-performed accesses,
//! and an in-program-order queue of pending memory accesses. Two kinds
//! of transition interleave:
//!
//! * **Fetch** is instantaneous and greedy: ALU ops with concrete inputs
//!   execute on the spot, loads/stores/RMWs append to the pending queue
//!   (the destination register receives the entry's tag), ALU ops with
//!   pending inputs are deferred as dataflow entries, and prefetches are
//!   non-binding no-ops. Fetch blocks only where the abstract machine
//!   has no other choice: a branch whose condition is still a tag, or an
//!   address that depends on a pending value.
//! * **Perform** is the nondeterministic choice the search explores: any
//!   pending access may atomically read/write the single shared memory
//!   provided (a) no earlier pending access in the same queue is related
//!   to it by the model's delay arcs ([`Model::must_delay`]), (b) no
//!   earlier pending access targets the same address (uniprocessor
//!   program order per location), and (c) its operands are concrete.
//!
//! Store data may stay symbolic in the queue, so accesses later in
//! program order can legally perform around a store that still waits on
//! a load — the reordering the relaxed models (and the simulator's
//! out-of-order core) actually exhibit.
//!
//! The search memoizes visited states (tags are canonicalized as queue
//! positions), so spin loops reach a repeated state and terminate, and
//! IRIW-sized programs finish in milliseconds.
//!
//! ## What the oracle claims
//!
//! The enumerated set is the *conventional* delayed semantics of the
//! model: every access performs at a time consistent with the delay
//! arcs. The paper's §4.2 argument is that speculation + rollback never
//! commits a value that differs from the value at the access's earliest
//! legal perform time (any intervening coherence action triggers a
//! rollback), so simulator outcomes must be members of this set — that
//! membership is what the conformance harness checks. Two deliberate
//! conservatisms: the shared memory is a single atomic store (writes are
//! seen by all processors at once, so IRIW's non-store-atomic outcome is
//! forbidden under every model, and PC coincides with TSO), and branch
//! outcomes resolve before post-branch accesses perform (the machine's
//! branch speculation never commits a wrong-path access, and a
//! correct-path speculative load that raced a write is rolled back).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;

use mcsim_consistency::Model;
use mcsim_isa::Program;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Bounds for the exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleConfig {
    /// Maximum distinct machine states to explore before giving up.
    pub max_states: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_states: 2_000_000,
        }
    }
}

/// A final machine state: registers per processor plus touched memory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Outcome {
    /// Final register values, `regs[proc][reg]`.
    pub regs: Vec<Vec<u64>>,
    /// Final values of every address any execution wrote (reads do not
    /// appear), plus the initial image.
    pub memory: BTreeMap<u64, u64>,
}

impl Outcome {
    /// Register value accessor.
    #[must_use]
    pub fn reg(&self, proc: usize, r: mcsim_isa::RegId) -> u64 {
        self.regs[proc][r.index()]
    }

    /// Memory value (0 if untouched).
    #[must_use]
    pub fn mem(&self, addr: u64) -> u64 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }
}

/// The enumeration result.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// Reachable final states.
    pub outcomes: BTreeSet<Outcome>,
    /// Whether the state space was exhausted (false = `max_states` hit;
    /// the outcome set is a subset).
    pub complete: bool,
}

/// Enumerates every final state of `programs` allowed under `model`,
/// starting from the given initial memory image.
#[must_use]
pub fn outcomes(
    model: Model,
    programs: &[Program],
    init_mem: &BTreeMap<u64, u64>,
    cfg: OracleConfig,
) -> OracleResult {
    exec::enumerate(model, programs, init_mem, cfg)
}

/// Enumerates every *sequentially consistent* final state — the SC
/// specialization of [`outcomes`], kept as a named entry point because
/// SC membership is the paper's §4.2 correctness statement.
#[must_use]
pub fn sc_outcomes(
    programs: &[Program],
    init_mem: &BTreeMap<u64, u64>,
    cfg: OracleConfig,
) -> OracleResult {
    outcomes(Model::Sc, programs, init_mem, cfg)
}

/// Executes a single program sequentially to completion (the
/// single-processor special case — handy as a reference semantics).
#[must_use]
pub fn run_sequential(program: &Program, init_mem: &BTreeMap<u64, u64>) -> Outcome {
    let r = sc_outcomes(
        std::slice::from_ref(program),
        init_mem,
        OracleConfig::default(),
    );
    assert!(r.complete, "single program exceeded oracle bounds");
    assert_eq!(
        r.outcomes.len(),
        1,
        "a deterministic single program has exactly one outcome"
    );
    r.outcomes.into_iter().next().expect("checked")
}

/// Renders an outcome set as stable, diff-friendly text: one line per
/// outcome listing every register that is nonzero in *any* outcome of
/// the set and every memory address any outcome mentions. Used for the
/// golden allowed-set files and `mcsim oracle` output.
#[must_use]
pub fn format_outcomes<'a>(set: impl IntoIterator<Item = &'a Outcome>) -> String {
    let set: Vec<&Outcome> = set.into_iter().collect();
    if set.is_empty() {
        return "  (no outcomes)\n".to_string();
    }
    let mut reg_cols: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut mem_cols: BTreeSet<u64> = BTreeSet::new();
    for o in &set {
        for (p, regs) in o.regs.iter().enumerate() {
            for (r, &v) in regs.iter().enumerate() {
                if v != 0 {
                    reg_cols.insert((p, r));
                }
            }
        }
        mem_cols.extend(o.memory.keys().copied());
    }
    let mut out = String::new();
    for o in &set {
        let mut parts: Vec<String> = reg_cols
            .iter()
            .map(|&(p, r)| format!("p{p}.r{r}={}", o.regs[p][r]))
            .collect();
        if parts.is_empty() {
            parts.push("(regs all 0)".to_string());
        }
        let mems: Vec<String> = mem_cols
            .iter()
            .map(|&a| format!("[{a:#x}]={}", o.mem(a)))
            .collect();
        out.push_str("  ");
        out.push_str(&parts.join(" "));
        if !mems.is_empty() {
            out.push_str(" | ");
            out.push_str(&mems.join(" "));
        }
        out.push('\n');
    }
    out
}

/// Whether every outcome of `subset` appears in `superset` — the
/// monotonicity check (a stricter model's allowed set is contained in
/// every more relaxed model's).
#[must_use]
pub fn is_subset(subset: &OracleResult, superset: &OracleResult) -> bool {
    subset.outcomes.is_subset(&superset.outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::reg::{R1, R2};
    use mcsim_isa::ProgramBuilder;

    fn mem0() -> BTreeMap<u64, u64> {
        BTreeMap::new()
    }

    #[test]
    fn sequential_execution() {
        let p = ProgramBuilder::new("t")
            .store(0x10u64, 4u64)
            .load(R1, 0x10u64)
            .alu(R2, mcsim_isa::AluOp::Mul, R1, 3u64)
            .halt()
            .build()
            .unwrap();
        let o = run_sequential(&p, &mem0());
        assert_eq!(o.reg(0, R2), 12);
        assert_eq!(o.mem(0x10), 4);
    }

    #[test]
    fn incomplete_flag_on_tiny_budget() {
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 1u64)
            .store(0x108u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .store(0x110u64, 1u64)
            .store(0x118u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let r = sc_outcomes(&[p0, p1], &mem0(), OracleConfig { max_states: 3 });
        assert!(!r.complete);
    }

    #[test]
    fn format_is_stable_and_mentions_columns() {
        let p0 = ProgramBuilder::new("p0")
            .store(0x100u64, 1u64)
            .load(R1, 0x200u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("p1")
            .store(0x200u64, 1u64)
            .load(R1, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let r = sc_outcomes(&[p0, p1], &mem0(), OracleConfig::default());
        let text = format_outcomes(&r.outcomes);
        assert_eq!(text, format_outcomes(&r.outcomes), "deterministic");
        assert!(text.contains("p0.r1="));
        assert!(text.contains("[0x100]=1"));
        assert_eq!(text.lines().count(), r.outcomes.len());
    }
}
