//! mcsim-trace: the structured event-capture subsystem.
//!
//! The paper's evaluation is built on cycle-level walk-throughs — the
//! Figure 2 code-segment timings and the Figure 5 load / store /
//! speculative-buffer trace. This crate captures an execution as a typed
//! event stream (the observable artifact those figures are drawn from):
//!
//! * [`TraceEvent`] / [`TraceKind`] — the taxonomy: instruction
//!   fetch/issue/retire/rollback, buffer enter/exit for the load queue,
//!   store buffer and speculative-load buffer, cache transactions (miss
//!   issue, prefetch issue, MSHR allocate, deliver) and coherence
//!   traffic (invalidation, update, ownership transfer), each stamped
//!   with cycle, processor, address and instruction id.
//! * [`TraceBuffer`] — a bounded ring sink. Components hold an
//!   `Option<TraceBuffer>`; with tracing disabled the only cost is a
//!   branch on `None`. The monotone [`TraceBuffer::emitted`] counter is
//!   folded into the machine's quiescence fingerprints, so a cycle that
//!   records any event can never look quiescent: fast-forwarded spans
//!   emit no events *by construction* and traces are bit-identical with
//!   skipping on or off.
//! * [`merge_traces`] — the deterministic global ordering: memory ticks
//!   before the cores each cycle and cores tick in index order, so
//!   concatenating (mem, proc 0, proc 1, …) and stable-sorting by cycle
//!   reproduces exact emission order.
//! * Exporters: [`chrome`] (trace-event JSON, loadable in Perfetto),
//!   [`fig5`] (the paper's Figure-5-style plaintext buffer timeline)
//!   and [`csv`], all over the same filtered stream ([`TraceFilter`]).

mod event;
mod sink;

pub mod chrome;
pub mod csv;
pub mod fig5;

pub use event::{BufferKind, IssueOutcome, TraceEvent, TraceKind};
pub use sink::{TraceBuffer, DEFAULT_CAPACITY};

use serde::{Deserialize, Serialize};

/// Export-time filter: an inclusive cycle window and/or a single
/// processor. Memory-system events carry the *requesting* processor, so
/// a proc filter keeps the coherence traffic caused by that core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFilter {
    /// Keep events with `lo <= cycle <= hi` only.
    pub cycles: Option<(u64, u64)>,
    /// Keep events for this processor only.
    pub proc: Option<usize>,
}

impl TraceFilter {
    /// Does `e` pass the filter?
    pub fn matches(&self, e: &TraceEvent) -> bool {
        if let Some((lo, hi)) = self.cycles {
            if e.cycle < lo || e.cycle > hi {
                return false;
            }
        }
        if let Some(p) = self.proc {
            if e.proc != p {
                return false;
            }
        }
        true
    }

    /// The events of `events` that pass the filter, in order.
    pub fn apply<'a>(&self, events: &'a [TraceEvent]) -> Vec<&'a TraceEvent> {
        events.iter().filter(|e| self.matches(e)).collect()
    }
}

/// Merges the memory system's event stream with each core's into the
/// exact global emission order. Within a cycle the machine ticks memory
/// first, then cores in index order; each input stream is already in
/// emission order, so a stable sort by cycle over the concatenation
/// (mem first, then proc 0, proc 1, …) reproduces the global order.
pub fn merge_traces(mem: Vec<TraceEvent>, procs: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all = mem;
    for t in procs {
        all.extend(t);
    }
    all.sort_by_key(|e| e.cycle);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::Addr;

    fn ev(cycle: u64, proc: usize, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            proc,
            seq: None,
            pc: None,
            kind,
        }
    }

    #[test]
    fn merge_orders_mem_before_procs_within_a_cycle() {
        let mem = vec![ev(
            2,
            1,
            TraceKind::Invalidation {
                line: mcsim_isa::LineAddr(0x40),
            },
        )];
        let p0 = vec![
            ev(1, 0, TraceKind::Fetched),
            ev(2, 0, TraceKind::Performed { addr: Addr(0x40) }),
        ];
        let p1 = vec![ev(2, 1, TraceKind::Fetched)];
        let merged = merge_traces(mem, vec![p0, p1]);
        assert_eq!(merged.len(), 4);
        assert_eq!(merged[0].cycle, 1);
        // Cycle 2: mem event first, then proc 0, then proc 1.
        assert!(matches!(merged[1].kind, TraceKind::Invalidation { .. }));
        assert!(matches!(merged[2].kind, TraceKind::Performed { .. }));
        assert!(matches!(merged[3].kind, TraceKind::Fetched));
    }

    #[test]
    fn filter_windows_cycles_and_procs() {
        let events: Vec<TraceEvent> = (0..10)
            .map(|c| ev(c, (c % 2) as usize, TraceKind::Fetched))
            .collect();
        let f = TraceFilter {
            cycles: Some((2, 5)),
            proc: Some(0),
        };
        let kept = f.apply(&events);
        let cycles: Vec<u64> = kept.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 4]);
        assert!(TraceFilter::default().matches(&events[9]));
    }
}
