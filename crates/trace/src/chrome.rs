//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! Layout: pid 0 holds one track per processor core, pid 1 the memory
//! system's transaction/coherence traffic (tid = requesting core).
//! Demand accesses become `"X"` complete spans from issue to perform
//! (matched by processor + sequence number), memory transactions spans
//! from issue to deliver (matched by transaction id); everything else is
//! an `"i"` instant. Per-core buffer occupancy is exported as `"C"`
//! counter tracks, so the Figure 5 picture is visible as a stacked area.
//!
//! The JSON is formatted by hand (every name is generated ASCII); the
//! crate deliberately has no serde_json dependency.

use crate::{BufferKind, TraceEvent, TraceFilter, TraceKind};
use std::collections::HashMap;
use std::fmt::Write;

/// Renders the filtered events as a Chrome trace-event JSON document.
pub fn render(events: &[TraceEvent], filter: &TraceFilter) -> String {
    let kept = filter.apply(events);
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    // Metadata: name the process and thread tracks that will appear.
    let mut procs: Vec<usize> = kept.iter().map(|e| e.proc).collect();
    procs.sort_unstable();
    procs.dedup();
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"cores\"}}".into(),
        &mut out,
        &mut first,
    );
    push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"memory\"}}".into(),
        &mut out,
        &mut first,
    );
    for &p in &procs {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\
                 \"args\":{{\"name\":\"proc {p}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{p},\
                 \"args\":{{\"name\":\"mem (proc {p})\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }

    // Pass 1: spans. Demand accesses pair issue -> perform on
    // (proc, seq); memory transactions pair issue -> deliver on txn id.
    // Each open entry carries its index in `kept` so that leftovers can
    // be restored to emission order — HashMap iteration order must never
    // leak into the output (it varies between runs and threads).
    let mut open_access: HashMap<(usize, u64), (usize, &TraceEvent, String)> = HashMap::new();
    let mut open_txn: HashMap<u64, (usize, &TraceEvent, String)> = HashMap::new();
    let mut instants: Vec<(usize, &TraceEvent)> = Vec::new();
    for (i, e) in kept.iter().enumerate() {
        match &e.kind {
            TraceKind::LoadIssue { .. } | TraceKind::StoreIssue { .. } => {
                if let Some(seq) = e.seq {
                    // A rolled-back load re-issues under the same seq;
                    // emit the superseded attempt as an instant.
                    if let Some((pi, prev, _)) =
                        open_access.insert((e.proc, seq), (i, e, e.kind.to_string()))
                    {
                        instants.push((pi, prev));
                    }
                } else {
                    instants.push((i, e));
                }
            }
            TraceKind::Performed { .. } => {
                match e.seq.and_then(|seq| open_access.remove(&(e.proc, seq))) {
                    Some((_, start, name)) => {
                        push(span_json(start, e.cycle, &name), &mut out, &mut first)
                    }
                    None => instants.push((i, e)),
                }
            }
            TraceKind::MissIssue { txn, .. } | TraceKind::PrefetchTxn { txn, .. } => {
                if let Some((pi, prev, _)) = open_txn.insert(*txn, (i, e, e.kind.to_string())) {
                    instants.push((pi, prev));
                }
            }
            TraceKind::Deliver { txn, .. } => match open_txn.remove(txn) {
                Some((_, start, name)) => {
                    push(span_json(start, e.cycle, &name), &mut out, &mut first)
                }
                None => instants.push((i, e)),
            },
            _ => instants.push((i, e)),
        }
    }
    // Issues that never performed (squashed, or past the filter window).
    let mut unmatched: Vec<(usize, &TraceEvent)> = open_access
        .into_values()
        .chain(open_txn.into_values())
        .map(|(i, e, _)| (i, e))
        .collect();
    instants.append(&mut unmatched);
    instants.sort_by_key(|&(i, e)| (e.cycle, i));
    for (_, e) in instants {
        push(instant_json(e), &mut out, &mut first);
    }

    // Pass 2: per-core buffer-occupancy counters.
    let mut occupancy: HashMap<usize, [i64; 3]> = HashMap::new();
    for e in &kept {
        let delta: Option<(usize, i64)> = match &e.kind {
            TraceKind::BufferEnter { buffer, .. } => Some((buffer_index(*buffer), 1)),
            TraceKind::BufferExit { buffer, .. } => Some((buffer_index(*buffer), -1)),
            TraceKind::SpecRetired => Some((buffer_index(BufferKind::Spec), -1)),
            _ => None,
        };
        if let Some((idx, d)) = delta {
            let counts = occupancy.entry(e.proc).or_default();
            counts[idx] = (counts[idx] + d).max(0);
            push(
                format!(
                    "{{\"name\":\"proc {} buffers\",\"ph\":\"C\",\"pid\":0,\"tid\":{},\
                     \"ts\":{},\"args\":{{\"load\":{},\"store\":{},\"spec\":{}}}}}",
                    e.proc, e.proc, e.cycle, counts[0], counts[1], counts[2]
                ),
                &mut out,
                &mut first,
            );
        }
    }

    out.push_str("\n]}\n");
    out
}

fn buffer_index(b: BufferKind) -> usize {
    match b {
        BufferKind::Load => 0,
        BufferKind::Store => 1,
        BufferKind::Spec => 2,
    }
}

fn span_json(start: &TraceEvent, end_cycle: u64, name: &str) -> String {
    let dur = end_cycle.saturating_sub(start.cycle).max(1);
    let mut s = format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
        escape(name),
        start.kind.name(),
        pid(start),
        start.proc,
        start.cycle,
        dur
    );
    write_args(&mut s, start);
    s.push('}');
    s
}

fn instant_json(e: &TraceEvent) -> String {
    let mut s = format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{}",
        escape(&e.kind.to_string()),
        e.kind.name(),
        pid(e),
        e.proc,
        e.cycle
    );
    write_args(&mut s, e);
    s.push('}');
    s
}

fn pid(e: &TraceEvent) -> usize {
    usize::from(e.kind.is_mem())
}

fn write_args(s: &mut String, e: &TraceEvent) {
    match (e.seq, e.pc) {
        (None, None) => {}
        (seq, pc) => {
            s.push_str(",\"args\":{");
            let mut first = true;
            if let Some(seq) = seq {
                let _ = write!(s, "\"seq\":{seq}");
                first = false;
            }
            if let Some(pc) = pc {
                if !first {
                    s.push(',');
                }
                let _ = write!(s, "\"pc\":{pc}");
            }
            s.push('}');
        }
    }
}

/// JSON string escaping. Generated names are plain ASCII, but the
/// exporter must never produce an invalid document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IssueOutcome;
    use mcsim_isa::{Addr, LineAddr};

    fn ev(cycle: u64, seq: Option<u64>, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            proc: 0,
            seq,
            pc: seq.map(|s| s as u32),
            kind,
        }
    }

    #[test]
    fn issue_perform_pairs_become_spans() {
        let events = vec![
            ev(
                3,
                Some(0),
                TraceKind::LoadIssue {
                    addr: Addr(0x1000),
                    outcome: IssueOutcome::Miss,
                    speculative: false,
                },
            ),
            ev(103, Some(0), TraceKind::Performed { addr: Addr(0x1000) }),
            ev(
                50,
                None,
                TraceKind::Invalidation {
                    line: LineAddr(0x1180),
                },
            ),
        ];
        let json = render(&events, &TraceFilter::default());
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":100"), "{json}");
        assert!(json.contains("INVALIDATE L0x1180"), "{json}");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Crude balance check; real parsing is pinned at the core layer.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
    }

    #[test]
    fn buffer_flow_emits_counter_samples() {
        let events = vec![
            ev(
                1,
                Some(0),
                TraceKind::BufferEnter {
                    buffer: BufferKind::Load,
                    addr: Addr(0x40),
                },
            ),
            ev(
                5,
                Some(0),
                TraceKind::BufferExit {
                    buffer: BufferKind::Load,
                    addr: Addr(0x40),
                },
            ),
        ];
        let json = render(&events, &TraceFilter::default());
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"load\":1"));
        assert!(json.contains("\"load\":0"));
    }
}
