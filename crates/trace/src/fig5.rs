//! The paper's Figure-5-style plaintext buffer timeline.
//!
//! One section per processor; one row per cycle on which anything
//! happened. The three occupancy columns replay the buffer enter/exit
//! events and show the load queue, store buffer and speculative-load
//! buffer contents *after* that cycle's events, as short hex word
//! addresses; the events column lists everything else that cycle
//! (issues, performs, rollbacks, coherence traffic for this core).
//!
//! This renderer is shared between the CLI (`--trace-format fig5`), the
//! `fig5_trace` demo binary and the golden-file test, so the checked-in
//! artifact under `tests/golden/` is exactly what users see.

use crate::{BufferKind, TraceEvent, TraceFilter, TraceKind};
use std::fmt::Write;

const BUF_WIDTH: usize = 16;

/// Renders the filtered events as per-processor buffer timelines.
pub fn render(events: &[TraceEvent], filter: &TraceFilter) -> String {
    let kept = filter.apply(events);
    if kept.is_empty() {
        return "(no events)\n".to_string();
    }
    let mut procs: Vec<usize> = kept.iter().map(|e| e.proc).collect();
    procs.sort_unstable();
    procs.dedup();
    let mut out = String::new();
    for (i, &p) in procs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        render_proc(&kept, p, &mut out);
    }
    out
}

fn render_proc(kept: &[&TraceEvent], proc: usize, out: &mut String) {
    let _ = writeln!(out, "proc {proc}");
    let _ = writeln!(
        out,
        "{:>6} | {:<w$} | {:<w$} | {:<w$} | events",
        "cycle",
        "load buffer",
        "store buffer",
        "spec buffer",
        w = BUF_WIDTH
    );
    let _ = writeln!(
        out,
        "{}-+-{}-+-{}-+-{}-+-------",
        "-".repeat(6),
        "-".repeat(BUF_WIDTH),
        "-".repeat(BUF_WIDTH),
        "-".repeat(BUF_WIDTH)
    );

    // Replayed buffer contents (word addresses, oldest first).
    let mut bufs: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let events: Vec<&&TraceEvent> = kept.iter().filter(|e| e.proc == proc).collect();
    let mut i = 0;
    while i < events.len() {
        let cycle = events[i].cycle;
        let mut labels: Vec<String> = Vec::new();
        while i < events.len() && events[i].cycle == cycle {
            let e = events[i];
            match &e.kind {
                TraceKind::BufferEnter { buffer, addr } => {
                    bufs[index(*buffer)].push(addr.0);
                }
                TraceKind::BufferExit { buffer, addr } => {
                    let b = &mut bufs[index(*buffer)];
                    if let Some(pos) = b.iter().position(|a| *a == addr.0) {
                        b.remove(pos);
                    }
                }
                TraceKind::SpecRetired => {
                    // The speculative buffer retires in order; the
                    // retire event carries no address, so drop the
                    // oldest entry.
                    if !bufs[index(BufferKind::Spec)].is_empty() {
                        bufs[index(BufferKind::Spec)].remove(0);
                    }
                    labels.push(e.kind.to_string());
                }
                kind => labels.push(kind.to_string()),
            }
            i += 1;
        }
        let _ = writeln!(
            out,
            "{:>6} | {} | {} | {} | {}",
            cycle,
            cell(&bufs[0]),
            cell(&bufs[1]),
            cell(&bufs[2]),
            labels.join("; ")
        );
    }
}

fn index(b: BufferKind) -> usize {
    match b {
        BufferKind::Load => 0,
        BufferKind::Store => 1,
        BufferKind::Spec => 2,
    }
}

/// One occupancy cell: short hex addresses, oldest first, clipped to
/// the column width with a trailing `+` when entries do not fit.
fn cell(addrs: &[u64]) -> String {
    let mut s = String::new();
    for (i, a) in addrs.iter().enumerate() {
        let piece = format!("{}{a:x}", if i > 0 { " " } else { "" });
        if s.len() + piece.len() > BUF_WIDTH {
            s.truncate(BUF_WIDTH - 1);
            s.push('+');
            break;
        }
        s.push_str(&piece);
    }
    format!("{s:<BUF_WIDTH$}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IssueOutcome;
    use mcsim_isa::Addr;

    fn ev(cycle: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            proc: 0,
            seq: Some(0),
            pc: Some(0),
            kind,
        }
    }

    #[test]
    fn rows_show_occupancy_after_each_cycles_events() {
        let events = vec![
            ev(
                3,
                TraceKind::BufferEnter {
                    buffer: BufferKind::Load,
                    addr: Addr(0x1000),
                },
            ),
            ev(
                3,
                TraceKind::LoadIssue {
                    addr: Addr(0x1000),
                    outcome: IssueOutcome::Miss,
                    speculative: false,
                },
            ),
            ev(
                103,
                TraceKind::BufferExit {
                    buffer: BufferKind::Load,
                    addr: Addr(0x1000),
                },
            ),
            ev(103, TraceKind::Performed { addr: Addr(0x1000) }),
        ];
        let text = render(&events, &TraceFilter::default());
        assert!(text.starts_with("proc 0\n"), "{text}");
        let row3 = text.lines().find(|l| l.starts_with("     3")).unwrap();
        assert!(row3.contains("1000"), "{row3}");
        assert!(row3.contains("ld 0x1000 miss"), "{row3}");
        let row103 = text.lines().find(|l| l.starts_with("   103")).unwrap();
        assert!(!row103.contains("1000 "), "{row103}");
        assert!(row103.contains("perform 0x1000"), "{row103}");
    }

    #[test]
    fn empty_stream_renders_placeholder() {
        assert_eq!(render(&[], &TraceFilter::default()), "(no events)\n");
    }
}
