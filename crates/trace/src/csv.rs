//! Flat CSV export: one row per event, for spreadsheet / pandas work.

use crate::{TraceEvent, TraceFilter, TraceKind};
use std::fmt::Write;

/// Column header (written as the first row).
pub const HEADER: &str = "cycle,proc,seq,pc,kind,addr,line,txn,detail";

/// Renders the filtered events as CSV with [`HEADER`] columns. Optional
/// fields are left empty; `detail` packs the kind-specific flags
/// (outcome, speculative/exclusive, buffer name, squash count).
pub fn render(events: &[TraceEvent], filter: &TraceFilter) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for e in filter.apply(events) {
        let (addr, line, txn, detail) = fields(&e.kind);
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            e.cycle,
            e.proc,
            opt(e.seq.map(|s| s.to_string())),
            opt(e.pc.map(|p| p.to_string())),
            e.kind.name(),
            addr,
            line,
            txn,
            detail
        );
    }
    out
}

fn opt(v: Option<String>) -> String {
    v.unwrap_or_default()
}

/// `(addr, line, txn, detail)` columns for one event kind.
fn fields(kind: &TraceKind) -> (String, String, String, String) {
    let hex = |a: u64| format!("{a:#x}");
    let none = String::new();
    match kind {
        TraceKind::Fetched
        | TraceKind::Retired
        | TraceKind::HaltCommitted
        | TraceKind::BranchMispredicted
        | TraceKind::StoreReleased
        | TraceKind::SpecRetired => (none.clone(), none.clone(), none.clone(), none),
        TraceKind::LoadIssue {
            addr,
            outcome,
            speculative,
        } => (
            hex(addr.0),
            none.clone(),
            none,
            if *speculative {
                format!("{};spec", outcome.label())
            } else {
                outcome.label().to_string()
            },
        ),
        TraceKind::StoreIssue { addr, outcome } => {
            (hex(addr.0), none.clone(), none, outcome.label().to_string())
        }
        TraceKind::PrefetchIssue { addr, exclusive } => {
            (hex(addr.0), none.clone(), none, excl_detail(*exclusive))
        }
        TraceKind::Performed { addr } => (hex(addr.0), none.clone(), none.clone(), none),
        TraceKind::BufferEnter { buffer, addr } | TraceKind::BufferExit { buffer, addr } => (
            hex(addr.0),
            none.clone(),
            none,
            format!("{buffer:?}").to_lowercase(),
        ),
        TraceKind::Rollback { line, squashed } => (
            none.clone(),
            hex(line.0),
            none,
            format!("squashed={squashed}"),
        ),
        TraceKind::Reissue { line } | TraceKind::RmwPartialRollback { line } => {
            (none.clone(), hex(line.0), none.clone(), none)
        }
        TraceKind::MissIssue {
            line,
            txn,
            exclusive,
        }
        | TraceKind::PrefetchTxn {
            line,
            txn,
            exclusive,
        }
        | TraceKind::Deliver {
            line,
            txn,
            exclusive,
        } => (
            none.clone(),
            hex(line.0),
            txn.to_string(),
            excl_detail(*exclusive),
        ),
        TraceKind::MshrAllocate { line, txn } => (none.clone(), hex(line.0), txn.to_string(), none),
        TraceKind::Invalidation { line } | TraceKind::OwnershipTransfer { line } => {
            (none.clone(), hex(line.0), none.clone(), none)
        }
        TraceKind::Update { line, addr } => (hex(addr.0), hex(line.0), none.clone(), none),
    }
}

fn excl_detail(exclusive: bool) -> String {
    if exclusive { "excl" } else { "shared" }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IssueOutcome;
    use mcsim_isa::Addr;

    #[test]
    fn rows_have_the_header_arity() {
        let events = vec![TraceEvent {
            cycle: 3,
            proc: 1,
            seq: Some(2),
            pc: Some(1),
            kind: TraceKind::LoadIssue {
                addr: Addr(0x1000),
                outcome: IssueOutcome::Merged,
                speculative: true,
            },
        }];
        let text = render(&events, &TraceFilter::default());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some(HEADER));
        let row = lines.next().unwrap();
        assert_eq!(row, "3,1,2,1,load_issue,0x1000,,,merged;spec");
        let cols = HEADER.split(',').count();
        assert!(text.lines().all(|l| l.split(',').count() == cols));
    }
}
