//! The bounded ring sink events are recorded into.

use crate::TraceEvent;
use std::collections::VecDeque;

/// Default ring capacity (events) when a component enables tracing.
/// Large enough for the paper workloads and every failure snapshot the
/// CLI takes; long sweeps keep the tail.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// A bounded ring of trace events.
///
/// Recording never fails and never grows past `capacity`: once full, the
/// oldest event is dropped (and counted). The `emitted` counter is
/// monotone over the *attempted* recordings, which makes it a component
/// of the machine's quiescence fingerprint — a cycle that records any
/// event changes the fingerprint and therefore can never be skipped by
/// fast-forwarding.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            emitted: 0,
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, event: TraceEvent) {
        self.emitted += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Total events ever recorded (monotone; includes dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the retained events in emission order, leaving the ring
    /// empty (counters keep running).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceKind;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            proc: 0,
            seq: None,
            pc: None,
            kind: TraceKind::Fetched,
        }
    }

    #[test]
    fn ring_keeps_the_newest_events_and_counts_drops() {
        let mut b = TraceBuffer::new(3);
        for c in 0..5 {
            b.record(ev(c));
        }
        assert_eq!(b.emitted(), 5);
        assert_eq!(b.dropped(), 2);
        assert_eq!(b.len(), 3);
        let cycles: Vec<u64> = b.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(b.is_empty());
        // Counters are monotone across a drain.
        b.record(ev(9));
        assert_eq!(b.emitted(), 6);
    }
}
