//! The typed trace-event taxonomy.
//!
//! Processor-side events are stamped with the instruction's sequence
//! number and program counter; memory-side events carry the id of the
//! transaction they concern (as a raw `u64` — this crate sits below
//! `mcsim-mem` in the dependency graph) and the *requesting* processor.

use mcsim_isa::{Addr, LineAddr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a demand access was satisfied at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueOutcome {
    /// Cache hit.
    Hit,
    /// New transaction launched.
    Miss,
    /// Merged with an outstanding transaction (usually a prefetch).
    Merged,
    /// Value forwarded from the store buffer.
    Forwarded,
}

impl IssueOutcome {
    /// Short lower-case label for renderers (`hit`, `miss`, …).
    pub fn label(self) -> &'static str {
        match self {
            IssueOutcome::Hit => "hit",
            IssueOutcome::Miss => "miss",
            IssueOutcome::Merged => "merged",
            IssueOutcome::Forwarded => "fwd",
        }
    }
}

/// Which per-core buffer an entry moved through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BufferKind {
    /// The pending-load queue.
    Load,
    /// The store buffer.
    Store,
    /// The speculative-load buffer.
    Spec,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle it happened.
    pub cycle: u64,
    /// Processor it concerns (for memory-side events: the requester).
    pub proc: usize,
    /// Instruction sequence number (processor-side events only).
    pub seq: Option<u64>,
    /// That instruction's program counter (processor-side events only).
    pub pc: Option<u32>,
    /// What happened.
    pub kind: TraceKind,
}

/// Every kind of event the simulator can record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceKind {
    // ---- processor-side: instruction lifetime ----
    /// An instruction entered the reorder buffer.
    Fetched,
    /// An instruction committed from the ROB head.
    Retired,
    /// The halt instruction committed; the core is done.
    HaltCommitted,
    /// A mispredicted branch resolved (the wrong path is squashed).
    BranchMispredicted,

    // ---- processor-side: memory operations ----
    /// A demand load (or RMW read half) was issued.
    LoadIssue {
        /// Target address.
        addr: Addr,
        /// How it was satisfied.
        outcome: IssueOutcome,
        /// True when issued speculatively (past an incomplete access).
        speculative: bool,
    },
    /// A store (or RMW write half) was issued to memory.
    StoreIssue {
        /// Target address.
        addr: Addr,
        /// How it was satisfied.
        outcome: IssueOutcome,
    },
    /// A non-binding prefetch left the core.
    PrefetchIssue {
        /// Target address.
        addr: Addr,
        /// Read-exclusive (for stores) or shared (for loads).
        exclusive: bool,
    },
    /// A memory access completed (performed globally).
    Performed {
        /// Target address.
        addr: Addr,
    },
    /// A committed store was handed to the store buffer for issue.
    StoreReleased,

    // ---- processor-side: buffer occupancy ----
    /// An entry was inserted into a per-core buffer.
    BufferEnter {
        /// Which buffer.
        buffer: BufferKind,
        /// The entry's address.
        addr: Addr,
    },
    /// An entry left a per-core buffer (completed, drained or squashed).
    BufferExit {
        /// Which buffer.
        buffer: BufferKind,
        /// The entry's address.
        addr: Addr,
    },
    /// A speculative load became safe and left the speculative-load
    /// buffer (its speculation window closed without violation).
    SpecRetired,

    // ---- processor-side: speculation repair ----
    /// A speculative load was invalidated and the core rolled back.
    Rollback {
        /// The conflicting cache line.
        line: LineAddr,
        /// Instructions squashed (the faulting load and younger).
        squashed: usize,
    },
    /// The rolled-back load was fetched again.
    Reissue {
        /// The conflicting cache line.
        line: LineAddr,
    },
    /// An RMW's read half was invalidated before the write half
    /// completed; only the RMW itself re-executes.
    RmwPartialRollback {
        /// The conflicting cache line.
        line: LineAddr,
    },

    // ---- memory-side: transactions ----
    /// A miss transaction left for the directory.
    MissIssue {
        /// The requested line.
        line: LineAddr,
        /// Transaction id.
        txn: u64,
        /// Read-exclusive (ownership) rather than shared.
        exclusive: bool,
    },
    /// A prefetch transaction left for the directory.
    PrefetchTxn {
        /// The requested line.
        line: LineAddr,
        /// Transaction id.
        txn: u64,
        /// Read-exclusive (ownership) rather than shared.
        exclusive: bool,
    },
    /// A miss-status holding register was allocated for a line.
    MshrAllocate {
        /// The line the MSHR tracks.
        line: LineAddr,
        /// Transaction id it will carry.
        txn: u64,
    },
    /// A transaction's reply reached the requesting cache.
    Deliver {
        /// The filled line.
        line: LineAddr,
        /// Transaction id.
        txn: u64,
        /// Whether the line arrived exclusive.
        exclusive: bool,
    },

    // ---- memory-side: coherence traffic ----
    /// A cached copy was invalidated by the protocol.
    Invalidation {
        /// The invalidated line.
        line: LineAddr,
    },
    /// An update-protocol write updated a cached copy in place.
    Update {
        /// The updated line.
        line: LineAddr,
        /// The updated word.
        addr: Addr,
    },
    /// The directory granted a processor ownership of a line.
    OwnershipTransfer {
        /// The line changing owners.
        line: LineAddr,
    },
}

impl TraceKind {
    /// True for events recorded by the memory system (stamped with the
    /// requesting processor but no instruction id).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            TraceKind::MissIssue { .. }
                | TraceKind::PrefetchTxn { .. }
                | TraceKind::MshrAllocate { .. }
                | TraceKind::Deliver { .. }
                | TraceKind::Invalidation { .. }
                | TraceKind::Update { .. }
                | TraceKind::OwnershipTransfer { .. }
        )
    }

    /// Stable machine-readable name (CSV `kind` column, Chrome event
    /// names).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Fetched => "fetch",
            TraceKind::Retired => "retire",
            TraceKind::HaltCommitted => "halt",
            TraceKind::BranchMispredicted => "branch_mispredict",
            TraceKind::LoadIssue { .. } => "load_issue",
            TraceKind::StoreIssue { .. } => "store_issue",
            TraceKind::PrefetchIssue { .. } => "prefetch_issue",
            TraceKind::Performed { .. } => "performed",
            TraceKind::StoreReleased => "store_release",
            TraceKind::BufferEnter { .. } => "buffer_enter",
            TraceKind::BufferExit { .. } => "buffer_exit",
            TraceKind::SpecRetired => "spec_retire",
            TraceKind::Rollback { .. } => "rollback",
            TraceKind::Reissue { .. } => "reissue",
            TraceKind::RmwPartialRollback { .. } => "rmw_partial_rollback",
            TraceKind::MissIssue { .. } => "miss_issue",
            TraceKind::PrefetchTxn { .. } => "prefetch_txn",
            TraceKind::MshrAllocate { .. } => "mshr_allocate",
            TraceKind::Deliver { .. } => "deliver",
            TraceKind::Invalidation { .. } => "invalidation",
            TraceKind::Update { .. } => "update",
            TraceKind::OwnershipTransfer { .. } => "ownership_transfer",
        }
    }
}

impl fmt::Display for TraceKind {
    /// Compact human-readable label (the fig5 renderer's events column).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Fetched => write!(f, "fetch"),
            TraceKind::Retired => write!(f, "retire"),
            TraceKind::HaltCommitted => write!(f, "halt"),
            TraceKind::BranchMispredicted => write!(f, "branch-mispredict"),
            TraceKind::LoadIssue {
                addr,
                outcome,
                speculative,
            } => {
                write!(f, "ld {addr} {}", outcome.label())?;
                if *speculative {
                    write!(f, " spec")?;
                }
                Ok(())
            }
            TraceKind::StoreIssue { addr, outcome } => {
                write!(f, "st {addr} {}", outcome.label())
            }
            TraceKind::PrefetchIssue { addr, exclusive } => {
                write!(f, "pf{} {addr}", if *exclusive { "x" } else { " " })
            }
            TraceKind::Performed { addr } => write!(f, "perform {addr}"),
            TraceKind::StoreReleased => write!(f, "release-st"),
            TraceKind::BufferEnter { buffer, addr } => {
                write!(f, "+{} {addr}", buffer_label(*buffer))
            }
            TraceKind::BufferExit { buffer, addr } => {
                write!(f, "-{} {addr}", buffer_label(*buffer))
            }
            TraceKind::SpecRetired => write!(f, "spec-retire"),
            TraceKind::Rollback { line, squashed } => {
                write!(f, "ROLLBACK {line} squashed={squashed}")
            }
            TraceKind::Reissue { line } => write!(f, "reissue {line}"),
            TraceKind::RmwPartialRollback { line } => write!(f, "rmw-rollback {line}"),
            TraceKind::MissIssue {
                line,
                txn,
                exclusive,
            } => {
                write!(f, "miss {line} t{txn}{}", excl(*exclusive))
            }
            TraceKind::PrefetchTxn {
                line,
                txn,
                exclusive,
            } => {
                write!(f, "pf-txn {line} t{txn}{}", excl(*exclusive))
            }
            TraceKind::MshrAllocate { line, txn } => write!(f, "mshr {line} t{txn}"),
            TraceKind::Deliver {
                line,
                txn,
                exclusive,
            } => {
                write!(f, "deliver {line} t{txn}{}", excl(*exclusive))
            }
            TraceKind::Invalidation { line } => write!(f, "INVALIDATE {line}"),
            TraceKind::Update { line, addr } => write!(f, "update {line} {addr}"),
            TraceKind::OwnershipTransfer { line } => write!(f, "own {line}"),
        }
    }
}

fn buffer_label(b: BufferKind) -> &'static str {
    match b {
        BufferKind::Load => "ldbuf",
        BufferKind::Store => "stbuf",
        BufferKind::Spec => "specbuf",
    }
}

fn excl(exclusive: bool) -> &'static str {
    if exclusive {
        " excl"
    } else {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_stable() {
        let k = TraceKind::LoadIssue {
            addr: Addr(0x1000),
            outcome: IssueOutcome::Miss,
            speculative: true,
        };
        assert_eq!(k.to_string(), "ld 0x1000 miss spec");
        assert_eq!(k.name(), "load_issue");
        assert!(!k.is_mem());
        let m = TraceKind::Deliver {
            line: LineAddr(0x1000),
            txn: 7,
            exclusive: true,
        };
        assert_eq!(m.to_string(), "deliver L0x1000 t7 excl");
        assert!(m.is_mem());
    }

    #[test]
    fn events_compare_by_value() {
        // JSON round-tripping is pinned at the core layer (the trace
        // crate itself has no serde_json dependency); here: equality.
        let e = TraceEvent {
            cycle: 42,
            proc: 1,
            seq: Some(3),
            pc: Some(2),
            kind: TraceKind::Rollback {
                line: LineAddr(0x1180),
                squashed: 2,
            },
        };
        assert_eq!(e, e.clone());
    }
}
