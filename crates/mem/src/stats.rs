//! Memory-system statistics.

use mcsim_guard::LatencyHistogram;
use serde::{Deserialize, Serialize};

/// Counters kept by the memory system across a run. All counters are
/// machine-wide; per-processor breakdowns live in the processor stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand accesses that hit in a cache.
    pub demand_hits: u64,
    /// Demand accesses that started a new transaction.
    pub demand_misses: u64,
    /// Demand accesses merged into an outstanding transaction (usually a
    /// prefetch) — §3.2's combining.
    pub demand_merges: u64,
    /// Prefetches issued to the memory system.
    pub prefetches_issued: u64,
    /// Prefetches discarded because the line was already present.
    pub prefetches_already_present: u64,
    /// Prefetches discarded because a transaction was already outstanding.
    pub prefetches_already_pending: u64,
    /// Prefetches dropped for lack of MSHRs / ways.
    pub prefetches_no_resource: u64,
    /// Read-exclusive prefetches rejected by the update protocol (§3.1).
    pub prefetches_unsupported: u64,
    /// Prefetch-filled lines whose first demand touch happened before any
    /// coherence event took them away (useful prefetches), plus demand
    /// merges into prefetch transactions.
    pub prefetches_useful: u64,
    /// Invalidation messages delivered to caches.
    pub invalidations_delivered: u64,
    /// Update messages delivered to caches (update protocol).
    pub updates_delivered: u64,
    /// Dirty-flush exchanges (remote owner supplied data).
    pub flushes: u64,
    /// Writebacks of dirty lines on replacement.
    pub writebacks: u64,
    /// Replacements (clean or dirty).
    pub replacements: u64,
    /// Transactions serviced by the directory.
    pub dir_transactions: u64,
    /// Total cycles requests spent queued at the directory beyond their
    /// arrival cycle (contention measure).
    pub dir_queue_cycles: u64,
    /// Issue-to-completion latency of transactions that carried at least
    /// one demand read (and no write/RMW) — the read-miss side of the
    /// per-cause breakdown.
    pub read_txn_latency: LatencyHistogram,
    /// Issue-to-completion latency of transactions that carried a demand
    /// write (write misses and ownership upgrades).
    pub write_txn_latency: LatencyHistogram,
    /// Issue-to-completion latency of transactions that carried an atomic
    /// read-modify-write (lock acquisition cost).
    pub rmw_txn_latency: LatencyHistogram,
    /// Issue-to-completion latency of transactions that completed with no
    /// demand reference merged in (pure prefetches).
    pub prefetch_txn_latency: LatencyHistogram,
}

impl MemStats {
    /// Demand accesses observed (hits + misses + merges).
    #[must_use]
    pub fn demand_accesses(&self) -> u64 {
        self.demand_hits + self.demand_misses + self.demand_merges
    }

    /// Hit rate over demand accesses; 0 if none.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.demand_accesses();
        if total == 0 {
            0.0
        } else {
            self.demand_hits as f64 / total as f64
        }
    }

    /// Fraction of issued prefetches that proved useful; 0 if none issued.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = MemStats {
            demand_hits: 3,
            demand_misses: 1,
            demand_merges: 0,
            ..Default::default()
        };
        assert_eq!(s.demand_accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(MemStats::default().hit_rate(), 0.0);
        assert_eq!(MemStats::default().prefetch_accuracy(), 0.0);
    }
}
