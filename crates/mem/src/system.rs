//! The [`MemorySystem`]: caches + MSHRs + directory + network timing,
//! behind the port interface the processor's load/store unit drives.
//!
//! ## Cycle discipline
//!
//! The machine calls [`MemorySystem::tick`] once per cycle *before* the
//! processors run. `tick` delivers every message scheduled for the current
//! cycle (fills, invalidations, updates, flushes) in deterministic
//! `(time, sequence)` order, then lets the directory start up to
//! `dir_bandwidth` new transactions. Processors then issue at most one
//! demand access or prefetch per cycle through their port.
//!
//! ## Atomic grant-and-apply
//!
//! Every demand access carries a [`DemandToken`]. Its architectural effect
//! — binding a load value, performing a store, executing an atomic RMW —
//! is applied *atomically with the grant*: on a hit, at issue; on a miss,
//! the instant the fill arrives, before any later coherence message can
//! steal the line (exactly as a real cache controller performs the pending
//! access in the same transaction that grants ownership). Bound values are
//! retrieved with [`MemorySystem::take_bound_value`].
//!
//! ## Timing recap (see [`crate::config::MemTimings`])
//!
//! * request travels `hop` cycles to the directory and is serviced the
//!   cycle it arrives (absent contention);
//! * a clean transaction's response is sent `svc` cycles later and lands
//!   `hop` cycles after that — `hop + svc + hop` end to end;
//! * invalidating sharers or flushing a remote owner inserts one extra
//!   round trip (`2 * hop`) before the response is sent.
//!
//! ## Simplification: synchronous writeback
//!
//! Evicting a dirty line updates the directory's memory image and sharing
//! state in the same cycle (an "atomic writeback"). This removes the
//! writeback/flush race of real protocols — a flush that finds the line
//! already gone simply falls back to the (current) memory copy — without
//! affecting any timing the paper's experiments observe. Documented in
//! DESIGN.md.

use crate::cache::{Cache, CacheFault, Evicted};
use crate::config::{MemConfig, Protocol};
use crate::directory::{DirState, Directory, ReqKind, Request};
use crate::msg::{
    DemandToken, IssueResult, LineState, MemEvent, PrefetchResult, ProbeResult, ProcId, TxnId,
};
use crate::mshr::{Mshr, MshrFault, MshrFile, PendingOp};
use crate::stats::MemStats;
use mcsim_guard::{FaultKind, InvariantKind, SimError};
use mcsim_isa::{Addr, LineAddr, RmwKind};
use mcsim_trace::{TraceBuffer, TraceEvent, TraceKind};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Messages delivered to a processor-side cache controller.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ProcMsg {
    /// Response to a GetShared / GetExclusive: install the line.
    Fill {
        txn: TxnId,
        line: LineAddr,
        exclusive: bool,
        /// `None` for an upgrade acknowledgement (data already cached).
        data: Option<Box<[u64]>>,
    },
    /// Response to an update-protocol write or RMW (no fill).
    WriteDone {
        txn: TxnId,
        line: LineAddr,
        /// For RMWs: the word refreshed in the local copy and its old and
        /// new values.
        rmw: Option<(Addr, u64 /* old */, u64 /* new */)>,
    },
    /// Another processor is gaining exclusive ownership: drop the line.
    Invalidate { line: LineAddr },
    /// The directory needs this (owned) line's data; `share` keeps a
    /// shared copy, otherwise the line is invalidated.
    Flush {
        line: LineAddr,
        share: bool,
        req: Request,
    },
    /// Update protocol: refresh one word in place.
    Update { addr: Addr, value: u64 },
}

/// Internal scheduled actions.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    /// A request reaches the directory.
    DirReceive(Request),
    /// A busy line's window closes; re-admit parked requests.
    LineFree(LineAddr),
    /// Deliver a message to a processor.
    Deliver { proc: ProcId, msg: ProcMsg },
    /// Flushed data (or a not-present nack) returns to the directory.
    FlushBack {
        req: Request,
        data: Option<Box<[u64]>>,
    },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Scheduled {
    at: u64,
    seq: u64,
    action: Action,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop earliest (time, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An armed fault-injection plan: which perturbation, how many matching
/// messages have been seen, and whether it has fired.
#[derive(Debug, Clone, Copy)]
struct FaultInjector {
    kind: FaultKind,
    seen: u64,
    fired: bool,
}

/// A read-only summary of the memory system's mutable state, compared
/// across a tick to detect quiescence (see [`MemorySystem::quiescence`]).
/// Every mutation path either bumps a [`MemStats`] counter, changes a
/// queue length, or allocates a monotone ID, so equality of two summaries
/// implies the tick between them changed nothing observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemQuiescence {
    stats: MemStats,
    next_txn: u64,
    next_seq: u64,
    next_token: u64,
    sched_len: usize,
    dir_queue_len: usize,
    outbox_len: usize,
    bound_values_len: usize,
    fault: bool,
    /// Monotone count of trace events ever recorded (see
    /// `ProcQuiescence::trace_emitted` — same structural guarantee).
    trace_emitted: u64,
}

/// The machine-wide coherent memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    now: u64,
    next_txn: u64,
    next_seq: u64,
    next_token: u64,
    caches: Vec<Cache>,
    mshrs: Vec<MshrFile>,
    dir: Directory,
    sched: BinaryHeap<Scheduled>,
    outbox: Vec<Vec<MemEvent>>,
    bound_values: HashMap<DemandToken, u64>,
    stats: MemStats,
    /// First protocol-contract failure detected this run (formerly panic
    /// sites). Polled by the machine loop via [`Self::take_fault`].
    fault: Option<SimError>,
    injector: Option<FaultInjector>,
    /// Event sink; `None` (the default) makes recording a single branch.
    tracer: Option<TraceBuffer>,
}

impl MemorySystem {
    /// A memory system serving `nprocs` processors.
    #[must_use]
    pub fn new(cfg: MemConfig, nprocs: usize) -> Self {
        cfg.validate();
        assert!(nprocs > 0, "need at least one processor");
        assert!(
            cfg.timings.svc >= 1,
            "directory service latency must be >= 1"
        );
        MemorySystem {
            caches: (0..nprocs).map(|_| Cache::new(cfg.cache)).collect(),
            mshrs: (0..nprocs).map(|_| MshrFile::new(cfg.mshrs)).collect(),
            dir: Directory::new(cfg.cache.block_bits),
            sched: BinaryHeap::new(),
            outbox: vec![Vec::new(); nprocs],
            bound_values: HashMap::new(),
            stats: MemStats::default(),
            next_txn: 0,
            next_seq: 0,
            next_token: 0,
            now: 0,
            fault: None,
            injector: None,
            tracer: None,
            cfg,
        }
    }

    /// Starts recording [`TraceEvent`]s into a ring of `capacity`.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.tracer = Some(TraceBuffer::new(capacity));
    }

    /// Takes the retained events (emission order; the ring keeps running).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer
            .as_mut()
            .map(TraceBuffer::drain)
            .unwrap_or_default()
    }

    /// Total events ever recorded (monotone — a fingerprint component).
    #[must_use]
    pub fn trace_emitted(&self) -> u64 {
        self.tracer.as_ref().map_or(0, TraceBuffer::emitted)
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, TraceBuffer::dropped)
    }

    /// Records an event at the current cycle for the given requester.
    /// Memory-side events carry no instruction id.
    fn emit(&mut self, proc: ProcId, kind: TraceKind) {
        if let Some(t) = &mut self.tracer {
            t.record(TraceEvent {
                cycle: self.now,
                proc,
                seq: None,
                pc: None,
                kind,
            });
        }
    }

    /// Arms a deterministic protocol fault: the `nth` matching message is
    /// perturbed at delivery (see [`FaultKind`]). Used by the
    /// fault-injection harness to mutation-test the invariant checker.
    pub fn arm_fault(&mut self, kind: FaultKind) {
        self.injector = Some(FaultInjector {
            kind,
            seen: 0,
            fired: false,
        });
    }

    /// Whether an armed fault has fired yet.
    #[must_use]
    pub fn fault_fired(&self) -> bool {
        self.injector.is_some_and(|i| i.fired)
    }

    /// Takes the first protocol-contract failure detected so far, if any.
    /// The machine loop polls this each cycle and converts it into a
    /// structured run failure.
    pub fn take_fault(&mut self) -> Option<SimError> {
        self.fault.take()
    }

    /// Records a failure, keeping the first if several occur.
    fn set_fault(&mut self, err: SimError) {
        if self.fault.is_none() {
            self.fault = Some(err);
        }
    }

    fn fault_from_cache(&mut self, proc: ProcId, e: CacheFault) {
        let err = SimError::protocol(self.now, Some(proc), Some(e.line().0), e.to_string());
        self.set_fault(err);
    }

    fn fault_from_mshr(&mut self, proc: ProcId, e: MshrFault) {
        let line = match e {
            MshrFault::Overflow { line } | MshrFault::DuplicateLine { line } => line,
        };
        let err = SimError::protocol(self.now, Some(proc), Some(line.0), e.to_string());
        self.set_fault(err);
    }

    /// Reads a cached word on a path the protocol guarantees present,
    /// recording a fault (and yielding 0) if the guarantee is broken.
    fn cache_read(&mut self, proc: ProcId, addr: Addr) -> u64 {
        match self.caches[proc].read_word(addr) {
            Ok(v) => v,
            Err(e) => {
                self.fault_from_cache(proc, e);
                0
            }
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// The current cycle (last `tick` target).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Cache-line address of `addr` under this configuration's geometry.
    #[must_use]
    pub fn line_of(&self, addr: Addr) -> LineAddr {
        addr.line(self.cfg.cache.block_bits)
    }

    /// Writes the initial memory image (before simulation starts).
    pub fn write_initial(&mut self, addr: Addr, value: u64) {
        self.dir.write_mem_word(addr, value);
    }

    /// Pre-warms `proc`'s cache with the line containing `addr`, outside
    /// simulated time (for workload setup — the paper's examples assume
    /// some locations start cached, e.g. `read D (hit)` in Figure 2).
    ///
    /// # Panics
    /// If the set has no room or another processor already owns the line
    /// exclusively — preloading is for pristine startup states.
    pub fn preload(&mut self, proc: ProcId, addr: Addr, exclusive: bool) {
        let line = self.line_of(addr);
        assert!(
            self.mshrs[proc].get(line).is_none() && self.caches[proc].state(line).is_none(),
            "preload of a line already in flight or cached"
        );
        assert!(
            matches!(self.dir.state(line), DirState::Uncached)
                || (!exclusive && matches!(self.dir.state(line), DirState::Shared(_))),
            "preload conflicts with existing sharing state of {line}"
        );
        let evicted = self.caches[proc]
            .reserve(line)
            .unwrap_or_else(|_| panic!("no room to preload {line}"));
        assert!(
            matches!(evicted, Evicted::None),
            "preload must not evict (set already occupied)"
        );
        let data = self.dir.mem_line(line);
        let state = if exclusive {
            LineState::Exclusive
        } else {
            LineState::Shared
        };
        self.caches[proc]
            .fill(line, state, Some(data), false)
            .unwrap_or_else(|e| panic!("preload: {e}"));
        if exclusive {
            self.dir.set_state(line, DirState::Owned(proc));
        } else {
            self.dir.add_sharer(line, proc);
        }
    }

    /// A coherent snapshot of every word the machine has touched, by byte
    /// address. Used for final-state checks against the SC oracle.
    #[must_use]
    pub fn snapshot_coherent(&self) -> std::collections::BTreeMap<u64, u64> {
        let mut out = std::collections::BTreeMap::new();
        let words = self.dir.block_words();
        for line in self.dir.known_lines() {
            let base = line.base(self.cfg.cache.block_bits);
            for w in 0..words {
                let addr = Addr(base.0 + (w as u64) * 8);
                out.insert(addr.0, self.read_coherent(addr));
            }
        }
        out
    }

    /// The globally coherent value of `addr`: an exclusive cached copy if
    /// one exists, otherwise memory. Used to check final states.
    #[must_use]
    pub fn read_coherent(&self, addr: Addr) -> u64 {
        let line = self.line_of(addr);
        if let DirState::Owned(p) = self.dir.state(line) {
            if self.caches[p].state(line) == Some(LineState::Exclusive) {
                if let Ok(v) = self.caches[p].read_word(addr) {
                    return v;
                }
            }
        }
        self.dir.read_mem_word(addr)
    }

    fn schedule(&mut self, at: u64, action: Action) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sched.push(Scheduled { at, seq, action });
    }

    fn fresh_txn(&mut self) -> TxnId {
        self.next_txn += 1;
        TxnId(self.next_txn)
    }

    fn fresh_token(&mut self) -> DemandToken {
        self.next_token += 1;
        DemandToken(self.next_token)
    }

    /// Advances to cycle `now`: delivers due messages, then lets the
    /// directory start transactions.
    ///
    /// # Panics
    /// If called with a cycle earlier than a previous call.
    pub fn tick(&mut self, now: u64) {
        assert!(now >= self.now, "time went backwards");
        self.now = now;
        while self.sched.peek().is_some_and(|s| s.at <= now) {
            if let Some(s) = self.sched.pop() {
                self.handle(s.action);
            }
        }
        for _ in 0..self.cfg.dir_bandwidth {
            let Some(req) = self.dir.next_serviceable(now) else {
                break;
            };
            self.service(req);
        }
    }

    /// Drains the event stream for `proc` (completions + coherence
    /// hazards, in delivery order).
    pub fn drain_events(&mut self, proc: ProcId) -> Vec<MemEvent> {
        std::mem::take(&mut self.outbox[proc])
    }

    /// Consumes the value bound for a demand operation: the loaded word
    /// for reads, the pre-modification word for RMWs. `None` for writes
    /// or if already taken.
    pub fn take_bound_value(&mut self, token: DemandToken) -> Option<u64> {
        self.bound_values.remove(&token)
    }

    // ------------------------------------------------------------------
    // Port operations (at most one demand issue or prefetch per processor
    // per cycle — enforced by the load/store unit).
    // ------------------------------------------------------------------

    /// A free (port-less) probe of the processor's cache and MSHRs.
    #[must_use]
    pub fn probe(&self, proc: ProcId, line: LineAddr) -> ProbeResult {
        if let Some(m) = self.mshrs[proc].get(line) {
            return ProbeResult::Pending {
                txn: m.txn,
                exclusive: m.exclusive,
                prefetch_only: m.prefetch_only,
            };
        }
        match self.caches[proc].state(line) {
            Some(s) => ProbeResult::Present(s),
            None => ProbeResult::Absent,
        }
    }

    /// Reads a word from the processor's cache (line must be present).
    /// Test/diagnostic helper; demand paths use bound values.
    pub fn read_word(&self, proc: ProcId, addr: Addr) -> Result<u64, CacheFault> {
        self.caches[proc].read_word(addr)
    }

    /// Issues a demand read. On `Hit` the value is bound immediately; on
    /// `Miss`/`Merged` it binds when the fill arrives. Retrieve it with
    /// [`Self::take_bound_value`].
    pub fn issue_demand_read(&mut self, proc: ProcId, addr: Addr) -> IssueResult {
        let line = self.line_of(addr);
        let token = self.fresh_token();
        // Outstanding transaction: merge (reads ride shared or exclusive
        // fills alike).
        if let Some(m) = self.mshrs[proc].get_mut(line) {
            if m.prefetch_only {
                m.prefetch_only = false;
                self.stats.prefetches_useful += 1;
            }
            m.pending.push((token, PendingOp::Read { addr }));
            let txn = m.txn;
            self.stats.demand_merges += 1;
            return IssueResult::Merged { txn, token };
        }
        if self.caches[proc].state(line).is_some() {
            if self.caches[proc].demand_touch(line) {
                self.stats.prefetches_useful += 1;
            }
            let v = self.cache_read(proc, addr);
            self.bound_values.insert(token, v);
            self.stats.demand_hits += 1;
            return IssueResult::Hit { token };
        }
        self.launch_fill(proc, addr, false, Some((token, PendingOp::Read { addr })))
            .unwrap_or_else(|e| e)
    }

    /// Issues a demand write. Under the invalidation protocol this obtains
    /// exclusive ownership and performs the store atomically with the
    /// grant (immediately on a hit). Under the update protocol the value
    /// rides to the directory and the write performs when all copies are
    /// refreshed.
    pub fn issue_demand_write(&mut self, proc: ProcId, addr: Addr, value: u64) -> IssueResult {
        match self.cfg.protocol {
            Protocol::Invalidate => {
                self.issue_owning_op(proc, addr, PendingOp::Write { addr, value })
            }
            Protocol::Update => self.issue_update_txn(proc, addr, None, value),
        }
    }

    /// Issues a *read-exclusive* demand read: brings the line into the
    /// cache in exclusive mode and binds the word's current value, without
    /// writing anything — the speculative first half of a split
    /// read-modify-write (Appendix A of the paper). Invalidation protocol
    /// only; the update protocol has no exclusivity to request.
    ///
    /// # Panics
    /// If called under the update protocol.
    pub fn issue_demand_read_ex(&mut self, proc: ProcId, addr: Addr) -> IssueResult {
        assert_eq!(
            self.cfg.protocol,
            Protocol::Invalidate,
            "read-exclusive demands require the invalidation protocol"
        );
        self.issue_owning_op(proc, addr, PendingOp::Read { addr })
    }

    /// Issues a demand atomic read-modify-write. Invalidation protocol:
    /// ownership is obtained and the atomic executes with the grant; the
    /// old value is bound to the returned token. Update protocol: the
    /// atomic executes at the directory (the serialization point).
    pub fn issue_demand_rmw(
        &mut self,
        proc: ProcId,
        addr: Addr,
        kind: RmwKind,
        operand: u64,
    ) -> IssueResult {
        match self.cfg.protocol {
            Protocol::Invalidate => self.issue_owning_op(
                proc,
                addr,
                PendingOp::Rmw {
                    addr,
                    kind,
                    operand,
                },
            ),
            Protocol::Update => self.issue_update_txn(proc, addr, Some(kind), operand),
        }
    }

    /// Applies a demand op against the local cache (the line must be held
    /// exclusively), binding values as needed.
    fn apply_op(&mut self, proc: ProcId, token: DemandToken, op: PendingOp) {
        match op {
            PendingOp::Read { addr } => {
                let v = self.cache_read(proc, addr);
                self.bound_values.insert(token, v);
            }
            PendingOp::Write { addr, value } => {
                if let Err(e) = self.caches[proc].write_word(addr, value) {
                    self.fault_from_cache(proc, e);
                }
            }
            PendingOp::Rmw {
                addr,
                kind,
                operand,
            } => {
                let old = self.cache_read(proc, addr);
                if let Err(e) = self.caches[proc].write_word(addr, kind.new_value(old, operand)) {
                    self.fault_from_cache(proc, e);
                }
                self.bound_values.insert(token, old);
            }
        }
    }

    /// Write/RMW path under the invalidation protocol: needs exclusive
    /// ownership; the op is applied atomically with the grant.
    fn issue_owning_op(&mut self, proc: ProcId, addr: Addr, op: PendingOp) -> IssueResult {
        let line = self.line_of(addr);
        let token = self.fresh_token();
        if let Some(m) = self.mshrs[proc].get_mut(line) {
            if m.exclusive {
                if m.prefetch_only {
                    m.prefetch_only = false;
                    self.stats.prefetches_useful += 1;
                }
                m.pending.push((token, op));
                let txn = m.txn;
                self.stats.demand_merges += 1;
                return IssueResult::Merged { txn, token };
            }
            // A shared fill is in flight; the write must wait for it and
            // then upgrade.
            return IssueResult::WaitForFill { txn: m.txn };
        }
        match self.caches[proc].state(line) {
            Some(LineState::Exclusive) => {
                if self.caches[proc].demand_touch(line) {
                    self.stats.prefetches_useful += 1;
                }
                self.apply_op(proc, token, op);
                self.stats.demand_hits += 1;
                IssueResult::Hit { token }
            }
            Some(LineState::Shared) => {
                // Upgrade in place: the line keeps its way and is pinned
                // so it cannot be victimized mid-transaction (footnote 3).
                if self.mshrs[proc].is_full() {
                    return IssueResult::NoMshr;
                }
                if let Err(e) = self.caches[proc].pin(line) {
                    self.fault_from_cache(proc, e);
                    return IssueResult::NoMshr;
                }
                let txn = self.fresh_txn();
                if let Err(e) = self.mshrs[proc].allocate(Mshr {
                    txn,
                    line,
                    exclusive: true,
                    prefetch_only: false,
                    is_upgrade: true,
                    issued_at: self.now,
                    pending: vec![(token, op)],
                }) {
                    self.fault_from_mshr(proc, e);
                    return IssueResult::NoMshr;
                }
                self.send_request(proc, line, ReqKind::GetExclusive, txn, false);
                self.stats.demand_misses += 1;
                IssueResult::Miss { txn, token }
            }
            None => self
                .launch_fill(proc, addr, true, Some((token, op)))
                .unwrap_or_else(|e| e),
        }
    }

    /// Update-protocol write/RMW: a directory round trip; `rmw = None`
    /// means a plain write of `value`, otherwise the RMW kind with
    /// `value` as its operand.
    fn issue_update_txn(
        &mut self,
        proc: ProcId,
        addr: Addr,
        rmw: Option<RmwKind>,
        value: u64,
    ) -> IssueResult {
        let line = self.line_of(addr);
        if let Some(m) = self.mshrs[proc].get(line) {
            // Serialize same-line transactions from one processor.
            return IssueResult::WaitForFill { txn: m.txn };
        }
        if self.mshrs[proc].is_full() {
            return IssueResult::NoMshr;
        }
        let token = self.fresh_token();
        let txn = self.fresh_txn();
        let word_idx = (addr.offset(self.cfg.cache.block_bits) / 8) as usize;
        let (kind, op) = match rmw {
            None => {
                // The writer's own copy is refreshed immediately (it is
                // the writer's value); remote copies refresh at the
                // directory's command.
                self.caches[proc].update_word(addr, value);
                (
                    ReqKind::UpdateWrite { word_idx, value },
                    PendingOp::Write { addr, value },
                )
            }
            Some(k) => (
                ReqKind::UpdateRmw {
                    word_idx,
                    kind: k,
                    operand: value,
                },
                PendingOp::Rmw {
                    addr,
                    kind: k,
                    operand: value,
                },
            ),
        };
        if let Err(e) = self.mshrs[proc].allocate(Mshr {
            txn,
            line,
            exclusive: false,
            prefetch_only: false,
            is_upgrade: true, // no reserved way: nothing fills
            issued_at: self.now,
            pending: vec![(token, op)],
        }) {
            self.fault_from_mshr(proc, e);
            return IssueResult::NoMshr;
        }
        self.send_request(proc, line, kind, txn, false);
        self.stats.demand_misses += 1;
        IssueResult::Miss { txn, token }
    }

    /// Launches a fresh fill transaction. `Err` carries the resource
    /// failure to return.
    fn launch_fill(
        &mut self,
        proc: ProcId,
        addr: Addr,
        exclusive: bool,
        pending: Option<(DemandToken, PendingOp)>,
    ) -> Result<IssueResult, IssueResult> {
        let line = self.line_of(addr);
        let is_prefetch = pending.is_none();
        if self.mshrs[proc].is_full() {
            return Err(IssueResult::NoMshr);
        }
        match self.caches[proc].reserve(line) {
            Err(crate::cache::SetFull) => Err(IssueResult::SetFull),
            Ok(evicted) => {
                self.handle_eviction(proc, evicted);
                let txn = self.fresh_txn();
                let token = pending.as_ref().map(|(t, _)| *t);
                if let Err(e) = self.mshrs[proc].allocate(Mshr {
                    txn,
                    line,
                    exclusive,
                    prefetch_only: is_prefetch,
                    is_upgrade: false,
                    issued_at: self.now,
                    pending: pending.into_iter().collect(),
                }) {
                    self.fault_from_mshr(proc, e);
                    return Err(IssueResult::NoMshr);
                }
                let kind = if exclusive {
                    ReqKind::GetExclusive
                } else {
                    ReqKind::GetShared
                };
                self.send_request(proc, line, kind, txn, is_prefetch);
                if !is_prefetch {
                    self.stats.demand_misses += 1;
                }
                Ok(IssueResult::Miss {
                    txn,
                    token: token.unwrap_or(DemandToken(0)),
                })
            }
        }
    }

    /// Issues a non-binding prefetch: read (`exclusive = false`) or
    /// read-exclusive (`exclusive = true`). The prefetch first checks the
    /// cache and outstanding transactions, and is discarded if the line is
    /// already on its way (§3.2).
    pub fn issue_prefetch(&mut self, proc: ProcId, addr: Addr, exclusive: bool) -> PrefetchResult {
        if exclusive && self.cfg.protocol == Protocol::Update {
            self.stats.prefetches_unsupported += 1;
            return PrefetchResult::Unsupported;
        }
        let line = self.line_of(addr);
        if self.mshrs[proc].get(line).is_some() {
            self.stats.prefetches_already_pending += 1;
            return PrefetchResult::AlreadyPending;
        }
        match self.caches[proc].state(line) {
            Some(LineState::Exclusive) => {
                self.stats.prefetches_already_present += 1;
                return PrefetchResult::AlreadyPresent;
            }
            Some(LineState::Shared) if !exclusive => {
                self.stats.prefetches_already_present += 1;
                return PrefetchResult::AlreadyPresent;
            }
            Some(LineState::Shared) => {
                // Read-exclusive prefetch of a shared line: an upgrade.
                // Pin the way for the duration (footnote 3).
                if self.mshrs[proc].is_full() {
                    self.stats.prefetches_no_resource += 1;
                    return PrefetchResult::NoResource;
                }
                if let Err(e) = self.caches[proc].pin(line) {
                    self.fault_from_cache(proc, e);
                    self.stats.prefetches_no_resource += 1;
                    return PrefetchResult::NoResource;
                }
                let txn = self.fresh_txn();
                if let Err(e) = self.mshrs[proc].allocate(Mshr {
                    txn,
                    line,
                    exclusive: true,
                    prefetch_only: true,
                    is_upgrade: true,
                    issued_at: self.now,
                    pending: Vec::new(),
                }) {
                    self.fault_from_mshr(proc, e);
                    self.stats.prefetches_no_resource += 1;
                    return PrefetchResult::NoResource;
                }
                self.send_request(proc, line, ReqKind::GetExclusive, txn, true);
                self.stats.prefetches_issued += 1;
                return PrefetchResult::Issued { txn };
            }
            None => {}
        }
        match self.launch_fill(proc, addr, exclusive, None) {
            Ok(IssueResult::Miss { txn, .. }) => {
                self.stats.prefetches_issued += 1;
                PrefetchResult::Issued { txn }
            }
            Err(IssueResult::NoMshr | IssueResult::SetFull) => {
                self.stats.prefetches_no_resource += 1;
                PrefetchResult::NoResource
            }
            other => {
                self.set_fault(SimError::protocol(
                    self.now,
                    Some(proc),
                    Some(line.0),
                    format!("launch_fill returned {other:?} for a prefetch"),
                ));
                self.stats.prefetches_no_resource += 1;
                PrefetchResult::NoResource
            }
        }
    }

    // ------------------------------------------------------------------
    // Event horizon: fast-forward support.
    // ------------------------------------------------------------------

    /// The earliest future cycle at which the memory system can change
    /// state on its own: the next scheduled delivery. Everything the
    /// system does is driven by the scheduler heap — every busy directory
    /// line has a `LineFree` scheduled at its release cycle, every message
    /// a delivery cycle — so after [`Self::tick`] has drained events due
    /// `<= now`, the heap's minimum is a sound horizon. Directory requests
    /// parked behind a busy line wake at that line's `LineFree`; the armed
    /// fault injector triggers on message *delivery* (it has no timed
    /// component of its own). `None` means nothing is pending: no future
    /// cycle changes anything until a processor issues a new access.
    #[must_use]
    pub fn next_event(&self) -> Option<u64> {
        self.sched.peek().map(|s| s.at)
    }

    /// A cheap, read-only fingerprint of every observable piece of
    /// memory-system state a cycle of servicing could change. Two equal
    /// fingerprints straddling a [`Self::tick`] prove the tick was a pure
    /// no-op, which is what lets the machine fast-forward over it. The
    /// monotone ID counters make balanced changes visible: a scheduler
    /// pop+push keeps `sched` the same length but always bumps `next_seq`,
    /// and a failed (retried) demand issue bumps `next_token` even though
    /// nothing else moved. Directory requests parked into per-line waiter
    /// queues keep `dir.queue_len()` constant, but parking only happens on
    /// the tick that drains `pending` — subsequent ticks see an empty
    /// pending queue and change nothing.
    #[must_use]
    pub fn quiescence(&self) -> MemQuiescence {
        MemQuiescence {
            stats: self.stats,
            next_txn: self.next_txn,
            next_seq: self.next_seq,
            next_token: self.next_token,
            sched_len: self.sched.len(),
            dir_queue_len: self.dir.queue_len(),
            outbox_len: self.outbox.iter().map(Vec::len).sum(),
            bound_values_len: self.bound_values.len(),
            fault: self.fault.is_some(),
            trace_emitted: self.trace_emitted(),
        }
    }

    // ------------------------------------------------------------------
    // Guard layer: invariant checking and watchdog telemetry
    // ------------------------------------------------------------------

    /// Messages and requests currently in flight: scheduled deliveries
    /// plus directory-queued requests. Zero means the network is silent.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.sched.len() + self.dir.queue_len()
    }

    /// A monotone activity counter that increases whenever the memory
    /// system performs coherence work. The watchdog compares samples of it
    /// to detect a silent window.
    #[must_use]
    pub fn activity(&self) -> u64 {
        let s = &self.stats;
        s.demand_hits
            + s.demand_misses
            + s.demand_merges
            + s.prefetches_issued
            + s.invalidations_delivered
            + s.updates_delivered
            + s.flushes
            + s.writebacks
            + s.replacements
            + s.dir_transactions
    }

    /// Verifies the coherence/buffer invariant catalog at the current
    /// cycle (see [`InvariantKind`]). Every checked invariant holds at
    /// cycle boundaries even while transactions are in flight, so an `Err`
    /// is a real protocol bug (or an injected fault). The first violation
    /// found is returned, with a deterministic description.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        // SWMR: collect every present copy, per line, across caches.
        let mut present: BTreeMap<u64, Vec<ProcId>> = BTreeMap::new();
        let mut exclusive: BTreeMap<u64, Vec<ProcId>> = BTreeMap::new();
        for (p, cache) in self.caches.iter().enumerate() {
            for (line, state, _pinned) in cache.present_lines() {
                present.entry(line.0).or_default().push(p);
                if state == LineState::Exclusive {
                    exclusive.entry(line.0).or_default().push(p);
                }
            }
        }
        for (line, owners) in &exclusive {
            if owners.len() > 1 {
                return Err(SimError::invariant(
                    self.now,
                    Some(owners[0]),
                    Some(*line),
                    InvariantKind::SwmrMultipleExclusive,
                    format!("procs {owners:?} all hold line {line:#x} exclusively"),
                ));
            }
            let holders = &present[line];
            if holders.len() > 1 {
                return Err(SimError::invariant(
                    self.now,
                    Some(owners[0]),
                    Some(*line),
                    InvariantKind::SwmrExclusiveWithCopies,
                    format!(
                        "proc {} holds line {line:#x} exclusively while procs {holders:?} hold copies",
                        owners[0]
                    ),
                ));
            }
        }
        // Directory-owner agreement: a recorded owner must hold the line
        // exclusively or have the transaction that will make it so still
        // outstanding (clean grants and flush-and-invalidate both keep the
        // requester's MSHR open until the fill lands).
        for line in self.dir.known_lines() {
            if let DirState::Owned(p) = self.dir.state(line) {
                let ok = self.caches[p].state(line) == Some(LineState::Exclusive)
                    || self.mshrs[p].get(line).is_some();
                if !ok {
                    return Err(SimError::invariant(
                        self.now,
                        Some(p),
                        Some(line.0),
                        InvariantKind::DirOwnerDisagrees,
                        format!(
                            "directory records proc {p} as owner of {line} but its cache neither \
                             holds the line exclusively nor has a transaction outstanding"
                        ),
                    ));
                }
            }
        }
        // MSHR occupancy and way agreement.
        for (p, file) in self.mshrs.iter().enumerate() {
            if file.len() > file.capacity() {
                return Err(SimError::invariant(
                    self.now,
                    Some(p),
                    None,
                    InvariantKind::MshrOverflow,
                    format!(
                        "{} entries in a {}-entry MSHR file",
                        file.len(),
                        file.capacity()
                    ),
                ));
            }
            let mut entries: Vec<&Mshr> = file.iter().collect();
            entries.sort_by_key(|m| m.line.0);
            for m in entries {
                // Update-protocol transactions are wayless by design.
                if m.is_upgrade && self.cfg.protocol == Protocol::Update {
                    continue;
                }
                let has_way = if m.is_upgrade {
                    // Pinned in place, or demoted to a reservation by a
                    // racing invalidation.
                    self.caches[p].state(m.line).is_some() || self.caches[p].is_reserved(m.line)
                } else {
                    self.caches[p].is_reserved(m.line)
                };
                if !has_way {
                    return Err(SimError::invariant(
                        self.now,
                        Some(p),
                        Some(m.line.0),
                        InvariantKind::MshrMissingWay,
                        format!(
                            "outstanding {} MSHR for {} has no cache way to land in",
                            if m.is_upgrade { "upgrade" } else { "fill" },
                            m.line
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn send_request(
        &mut self,
        proc: ProcId,
        line: LineAddr,
        kind: ReqKind,
        txn: TxnId,
        is_prefetch: bool,
    ) {
        let hop = self.cfg.timings.hop;
        // Every request is sent right after its MSHR was allocated, so
        // this is the one place both events are recorded.
        if self.tracer.is_some() {
            let exclusive = matches!(kind, ReqKind::GetExclusive);
            self.emit(proc, TraceKind::MshrAllocate { line, txn: txn.0 });
            let issue = if is_prefetch {
                TraceKind::PrefetchTxn {
                    line,
                    txn: txn.0,
                    exclusive,
                }
            } else {
                TraceKind::MissIssue {
                    line,
                    txn: txn.0,
                    exclusive,
                }
            };
            self.emit(proc, issue);
        }
        let req = Request {
            proc,
            line,
            kind,
            txn,
            is_prefetch,
            issued_at: self.now,
        };
        self.schedule(self.now + hop, Action::DirReceive(req));
    }

    fn handle_eviction(&mut self, proc: ProcId, evicted: Evicted) {
        match evicted {
            Evicted::None => {}
            Evicted::Clean { line } => {
                // Synchronous directory update (atomic writeback — see the
                // module docs).
                self.dir.drop_copy(line, proc);
                self.stats.replacements += 1;
                self.outbox[proc].push(MemEvent::Replaced { line });
            }
            Evicted::Dirty { line, data } => {
                self.dir.write_mem_line(line, data);
                self.dir.drop_copy(line, proc);
                self.stats.replacements += 1;
                self.stats.writebacks += 1;
                self.outbox[proc].push(MemEvent::Replaced { line });
            }
        }
    }

    fn handle(&mut self, action: Action) {
        match action {
            Action::DirReceive(req) => self.dir.push_arrival(req),
            Action::LineFree(line) => self.dir.release_line(line),
            Action::FlushBack { req, data } => self.finish_flush(req, data),
            Action::Deliver { proc, msg } => self.deliver(proc, msg),
        }
    }

    /// Applies the armed fault-injection plan to a message about to be
    /// delivered. Returns `None` when the fault consumes the message.
    fn inject(&mut self, msg: ProcMsg) -> Option<ProcMsg> {
        let Some(inj) = self.injector.as_mut() else {
            return Some(msg);
        };
        if inj.fired {
            return Some(msg);
        }
        match (inj.kind, &msg) {
            (FaultKind::DropInvalidation { nth }, ProcMsg::Invalidate { .. }) => {
                inj.seen += 1;
                if inj.seen == nth {
                    inj.fired = true;
                    return None;
                }
            }
            (
                FaultKind::CorruptLineState { nth },
                ProcMsg::Fill {
                    exclusive: false, ..
                },
            ) => {
                inj.seen += 1;
                if inj.seen == nth {
                    inj.fired = true;
                    if let ProcMsg::Fill {
                        txn, line, data, ..
                    } = msg
                    {
                        return Some(ProcMsg::Fill {
                            txn,
                            line,
                            exclusive: true,
                            data,
                        });
                    }
                }
            }
            (FaultKind::StuckMshr { nth }, ProcMsg::Fill { .. }) => {
                inj.seen += 1;
                if inj.seen == nth {
                    inj.fired = true;
                    return None;
                }
            }
            _ => {}
        }
        Some(msg)
    }

    /// Attributes a completed transaction's issue-to-completion latency to
    /// its most demanding merged operation: RMW > write > read; a
    /// transaction that completed with nothing merged in was a pure
    /// prefetch.
    fn record_txn_latency(&mut self, m: &Mshr) {
        let latency = self.now.saturating_sub(m.issued_at);
        let ops = |f: fn(&PendingOp) -> bool| m.pending.iter().any(|(_, op)| f(op));
        let h = if ops(|op| matches!(op, PendingOp::Rmw { .. })) {
            &mut self.stats.rmw_txn_latency
        } else if ops(|op| matches!(op, PendingOp::Write { .. })) {
            &mut self.stats.write_txn_latency
        } else if !m.pending.is_empty() {
            &mut self.stats.read_txn_latency
        } else {
            &mut self.stats.prefetch_txn_latency
        };
        h.record(latency);
    }

    fn deliver(&mut self, proc: ProcId, msg: ProcMsg) {
        let Some(msg) = self.inject(msg) else {
            return;
        };
        match msg {
            ProcMsg::Fill {
                txn,
                line,
                exclusive,
                data,
            } => {
                let Some(m) = self.mshrs[proc].complete(line) else {
                    self.set_fault(SimError::protocol(
                        self.now,
                        Some(proc),
                        Some(line.0),
                        format!("fill for {line} without an outstanding MSHR"),
                    ));
                    return;
                };
                debug_assert_eq!(m.txn, txn);
                self.record_txn_latency(&m);
                let state = if exclusive {
                    LineState::Exclusive
                } else {
                    LineState::Shared
                };
                if let Err(e) = self.caches[proc].fill(line, state, data, m.prefetch_only) {
                    self.fault_from_cache(proc, e);
                    return;
                }
                // Apply the demand operations atomically with the grant.
                for (token, op) in m.pending {
                    self.apply_op(proc, token, op);
                }
                self.emit(
                    proc,
                    TraceKind::Deliver {
                        line,
                        txn: txn.0,
                        exclusive,
                    },
                );
                self.outbox[proc].push(MemEvent::Done {
                    txn,
                    line,
                    exclusive,
                });
            }
            ProcMsg::WriteDone { txn, line, rmw } => {
                let Some(m) = self.mshrs[proc].complete(line) else {
                    self.set_fault(SimError::protocol(
                        self.now,
                        Some(proc),
                        Some(line.0),
                        format!("write-done for {line} without an outstanding MSHR"),
                    ));
                    return;
                };
                debug_assert_eq!(m.txn, txn);
                self.record_txn_latency(&m);
                if let Some((addr, old, new)) = rmw {
                    // Bind the RMW's old value to its token and refresh
                    // the local copy.
                    for (token, op) in &m.pending {
                        if matches!(op, PendingOp::Rmw { .. }) {
                            self.bound_values.insert(*token, old);
                        }
                    }
                    self.caches[proc].update_word(addr, new);
                }
                self.emit(
                    proc,
                    TraceKind::Deliver {
                        line,
                        txn: txn.0,
                        exclusive: false,
                    },
                );
                self.outbox[proc].push(MemEvent::Done {
                    txn,
                    line,
                    exclusive: false,
                });
            }
            ProcMsg::Invalidate { line } => {
                // An in-flight upgrade keeps its slot: the way becomes a
                // reservation and the directory will answer with data.
                let has_upgrade = self.mshrs[proc]
                    .get(line)
                    .is_some_and(|m| m.is_upgrade && m.exclusive);
                if self.caches[proc].state(line).is_some() {
                    if has_upgrade {
                        if let Err(e) = self.caches[proc].demote_to_reserved(line) {
                            self.fault_from_cache(proc, e);
                            return;
                        }
                    } else {
                        self.caches[proc].invalidate(line);
                    }
                    self.stats.invalidations_delivered += 1;
                    self.emit(proc, TraceKind::Invalidation { line });
                    self.outbox[proc].push(MemEvent::Invalidated { line });
                }
            }
            ProcMsg::Flush { line, share, req } => {
                let hop = self.cfg.timings.hop;
                let data = if share {
                    let d = self.caches[proc].downgrade(line);
                    if d.is_some() {
                        self.emit(proc, TraceKind::Invalidation { line });
                        self.outbox[proc].push(MemEvent::Invalidated { line });
                    }
                    d
                } else {
                    let d = self.caches[proc].invalidate(line);
                    if d.is_some() {
                        self.stats.invalidations_delivered += 1;
                        self.emit(proc, TraceKind::Invalidation { line });
                        self.outbox[proc].push(MemEvent::Invalidated { line });
                    }
                    d
                };
                self.schedule(self.now + hop, Action::FlushBack { req, data });
            }
            ProcMsg::Update { addr, value } => {
                let line = self.line_of(addr);
                if self.caches[proc].update_word(addr, value) {
                    self.stats.updates_delivered += 1;
                    self.emit(proc, TraceKind::Update { line, addr });
                    self.outbox[proc].push(MemEvent::Updated { line, addr, value });
                }
            }
        }
    }

    /// Completes a transaction that needed a remote flush: the owner's
    /// data (or, if the owner had already written the line back, the
    /// current memory image) is installed and the response dispatched.
    fn finish_flush(&mut self, req: Request, data: Option<Box<[u64]>>) {
        let t = self.cfg.timings;
        if let Some(d) = data {
            self.dir.write_mem_line(req.line, d);
            self.stats.flushes += 1;
        }
        let line_data = self.dir.mem_line(req.line);
        let exclusive = matches!(req.kind, ReqKind::GetExclusive);
        self.schedule(
            self.now + t.svc + t.hop,
            Action::Deliver {
                proc: req.proc,
                msg: ProcMsg::Fill {
                    txn: req.txn,
                    line: req.line,
                    exclusive,
                    data: Some(line_data),
                },
            },
        );
    }

    /// Services one directory transaction (the line is not busy).
    fn service(&mut self, req: Request) {
        let t = self.cfg.timings;
        let ts = self.now;
        self.stats.dir_transactions += 1;
        let arrival = req.issued_at + t.hop;
        self.stats.dir_queue_cycles += ts.saturating_sub(arrival);
        let state = self.dir.state(req.line);

        match req.kind {
            ReqKind::GetShared => match state {
                DirState::Owned(owner) if owner != req.proc => {
                    // Remote dirty: flush-and-share. The new sharing state
                    // is set now (the line is busy until the response is
                    // sent, so no other transaction observes it early).
                    self.dir.add_sharer(req.line, req.proc);
                    self.schedule(
                        ts + t.hop,
                        Action::Deliver {
                            proc: owner,
                            msg: ProcMsg::Flush {
                                line: req.line,
                                share: true,
                                req,
                            },
                        },
                    );
                    self.busy_for(req.line, ts + 2 * t.hop + t.svc);
                }
                _ => {
                    self.dir.add_sharer(req.line, req.proc);
                    let data = self.dir.mem_line(req.line);
                    self.respond_fill(req, false, Some(data), ts + t.svc);
                    self.busy_for(req.line, ts + t.svc);
                }
            },
            ReqKind::GetExclusive => {
                let copies = state.copies_excluding(req.proc);
                let was_owner_remote = matches!(state, DirState::Owned(o) if o != req.proc);
                let requester_has_copy = state.is_sharer(req.proc) || state.is_owner(req.proc);
                self.dir.set_state(req.line, DirState::Owned(req.proc));
                self.emit(req.proc, TraceKind::OwnershipTransfer { line: req.line });
                if was_owner_remote {
                    // Flush-and-invalidate the remote owner; its data
                    // rides back and out to the requester.
                    let owner = copies[0];
                    self.schedule(
                        ts + t.hop,
                        Action::Deliver {
                            proc: owner,
                            msg: ProcMsg::Flush {
                                line: req.line,
                                share: false,
                                req,
                            },
                        },
                    );
                    self.busy_for(req.line, ts + 2 * t.hop + t.svc);
                } else if copies.is_empty() {
                    // Clean grant. Upgrade requesters already hold data.
                    let data = if requester_has_copy {
                        None
                    } else {
                        Some(self.dir.mem_line(req.line))
                    };
                    self.respond_fill(req, true, data, ts + t.svc);
                    self.busy_for(req.line, ts + t.svc);
                } else {
                    // Invalidate sharers, then grant after the ack round
                    // trip (acks are implicit: latencies are fixed). With
                    // Adve–Hill early grants the response does not wait
                    // for the acks — their visibility-control mechanism
                    // (not timed here) preserves SC.
                    for p in copies {
                        self.schedule(
                            ts + t.hop,
                            Action::Deliver {
                                proc: p,
                                msg: ProcMsg::Invalidate { line: req.line },
                            },
                        );
                    }
                    let data = if requester_has_copy {
                        None
                    } else {
                        Some(self.dir.mem_line(req.line))
                    };
                    let send = if self.cfg.early_grant_writes {
                        ts + t.svc
                    } else {
                        ts + 2 * t.hop + t.svc
                    };
                    self.respond_fill(req, true, data, send);
                    self.busy_for(req.line, ts + 2 * t.hop + t.svc);
                }
            }
            ReqKind::UpdateWrite { word_idx, value } => {
                let addr = Addr((req.line.0 << self.cfg.cache.block_bits) + (word_idx as u64) * 8);
                self.dir.write_mem_word(addr, value);
                let send = self.fan_out_updates(&req, state, addr, value, ts);
                self.schedule(
                    send + t.hop,
                    Action::Deliver {
                        proc: req.proc,
                        msg: ProcMsg::WriteDone {
                            txn: req.txn,
                            line: req.line,
                            rmw: None,
                        },
                    },
                );
                self.busy_for(req.line, send);
            }
            ReqKind::UpdateRmw {
                word_idx,
                kind,
                operand,
            } => {
                let addr = Addr((req.line.0 << self.cfg.cache.block_bits) + (word_idx as u64) * 8);
                let old = self.dir.read_mem_word(addr);
                let new = kind.new_value(old, operand);
                self.dir.write_mem_word(addr, new);
                let send = self.fan_out_updates(&req, state, addr, new, ts);
                self.schedule(
                    send + t.hop,
                    Action::Deliver {
                        proc: req.proc,
                        msg: ProcMsg::WriteDone {
                            txn: req.txn,
                            line: req.line,
                            rmw: Some((addr, old, new)),
                        },
                    },
                );
                self.busy_for(req.line, send);
            }
        }
    }

    /// Sends update-protocol refreshes to every remote sharer; returns the
    /// cycle the response may be sent (after the implicit ack round trip
    /// when sharers exist).
    fn fan_out_updates(
        &mut self,
        req: &Request,
        state: DirState,
        addr: Addr,
        value: u64,
        ts: u64,
    ) -> u64 {
        let t = self.cfg.timings;
        let sharers = state.copies_excluding(req.proc);
        let had_sharers = !sharers.is_empty();
        for p in sharers {
            self.schedule(
                ts + t.hop,
                Action::Deliver {
                    proc: p,
                    msg: ProcMsg::Update { addr, value },
                },
            );
        }
        if had_sharers {
            ts + 2 * t.hop + t.svc
        } else {
            ts + t.svc
        }
    }

    fn respond_fill(&mut self, req: Request, exclusive: bool, data: Option<Box<[u64]>>, send: u64) {
        let t = self.cfg.timings;
        self.schedule(
            send + t.hop,
            Action::Deliver {
                proc: req.proc,
                msg: ProcMsg::Fill {
                    txn: req.txn,
                    line: req.line,
                    exclusive,
                    data,
                },
            },
        );
    }

    fn busy_for(&mut self, line: LineAddr, until: u64) {
        self.dir.mark_busy(line, until);
        self.schedule(until, Action::LineFree(line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::RmwKind;

    const A: Addr = Addr(0x1000);
    const B: Addr = Addr(0x2000);

    fn sys(nprocs: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::paper(), nprocs)
    }

    /// Ticks until an event arrives for `proc` or `limit` cycles pass.
    fn run_until_event(s: &mut MemorySystem, proc: ProcId, limit: u64) -> (u64, Vec<MemEvent>) {
        let start = s.now();
        for c in start..=start + limit {
            s.tick(c);
            let ev = s.drain_events(proc);
            if !ev.is_empty() {
                return (c, ev);
            }
        }
        panic!("no event within {limit} cycles");
    }

    #[test]
    fn clean_read_miss_takes_exactly_100_cycles() {
        let mut s = sys(1);
        s.write_initial(A, 7);
        s.tick(0);
        let r = s.issue_demand_read(0, A);
        let IssueResult::Miss { txn, token } = r else {
            panic!("expected miss, got {r:?}");
        };
        let (cycle, ev) = run_until_event(&mut s, 0, 200);
        assert_eq!(cycle, 100);
        assert_eq!(
            ev,
            vec![MemEvent::Done {
                txn,
                line: s.line_of(A),
                exclusive: false
            }]
        );
        assert_eq!(s.take_bound_value(token), Some(7));
        assert_eq!(s.take_bound_value(token), None, "bound values are consumed");
    }

    #[test]
    fn read_hit_binds_value_at_issue() {
        let mut s = sys(1);
        s.write_initial(A, 3);
        s.tick(0);
        let IssueResult::Miss { token, .. } = s.issue_demand_read(0, A) else {
            panic!()
        };
        let _ = run_until_event(&mut s, 0, 200);
        assert_eq!(s.take_bound_value(token), Some(3));
        // Now a hit.
        let r = s.issue_demand_read(0, A);
        assert!(matches!(r, IssueResult::Hit { .. }));
        assert_eq!(s.stats().demand_hits, 1);
    }

    #[test]
    fn write_miss_applies_store_at_grant() {
        let mut s = sys(1);
        s.tick(0);
        let r = s.issue_demand_write(0, A, 5);
        assert!(matches!(r, IssueResult::Miss { .. }));
        let (cycle, ev) = run_until_event(&mut s, 0, 200);
        assert_eq!(cycle, 100);
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: true,
                ..
            }
        ));
        assert_eq!(s.read_coherent(A), 5, "store performed with the grant");
    }

    #[test]
    fn rmw_miss_binds_old_value() {
        let mut s = sys(1);
        s.write_initial(A, 0);
        s.tick(0);
        let IssueResult::Miss { token, .. } = s.issue_demand_rmw(0, A, RmwKind::TestAndSet, 0)
        else {
            panic!()
        };
        let _ = run_until_event(&mut s, 0, 200);
        assert_eq!(s.take_bound_value(token), Some(0), "old value bound");
        assert_eq!(s.read_coherent(A), 1, "test-and-set wrote 1");
    }

    #[test]
    fn demand_merges_into_prefetch_and_completes_with_it() {
        let mut s = sys(1);
        s.write_initial(A, 11);
        s.tick(0);
        // Prefetch at cycle 0 (completes at 100), demand read at cycle 40.
        let pf = s.issue_prefetch(0, A, false);
        let PrefetchResult::Issued { txn } = pf else {
            panic!("expected issue, got {pf:?}");
        };
        for c in 1..=40 {
            s.tick(c);
        }
        let r = s.issue_demand_read(0, A);
        let IssueResult::Merged { txn: t2, token } = r else {
            panic!("expected merge, got {r:?}");
        };
        assert_eq!(t2, txn);
        let (cycle, _) = run_until_event(&mut s, 0, 200);
        assert_eq!(cycle, 100, "merged demand completes with the prefetch");
        assert_eq!(s.take_bound_value(token), Some(11));
        assert_eq!(s.stats().prefetches_useful, 1);
        assert_eq!(s.stats().demand_merges, 1);
    }

    #[test]
    fn write_merges_into_exclusive_prefetch() {
        let mut s = sys(1);
        s.tick(0);
        let PrefetchResult::Issued { txn } = s.issue_prefetch(0, A, true) else {
            panic!()
        };
        s.tick(1);
        let r = s.issue_demand_write(0, A, 9);
        assert!(matches!(r, IssueResult::Merged { txn: t, .. } if t == txn));
        let _ = run_until_event(&mut s, 0, 200);
        assert_eq!(s.read_coherent(A), 9);
    }

    #[test]
    fn prefetch_discarded_when_line_present() {
        let mut s = sys(1);
        s.tick(0);
        let _ = s.issue_demand_read(0, A);
        let _ = run_until_event(&mut s, 0, 200);
        assert_eq!(
            s.issue_prefetch(0, A, false),
            PrefetchResult::AlreadyPresent
        );
        let _ = s.issue_prefetch(0, B, false);
        assert_eq!(
            s.issue_prefetch(0, B, false),
            PrefetchResult::AlreadyPending
        );
    }

    #[test]
    fn exclusive_prefetch_upgrades_shared_line() {
        let mut s = sys(1);
        s.tick(0);
        let _ = s.issue_demand_read(0, A); // brings A shared
        let _ = run_until_event(&mut s, 0, 200);
        let r = s.issue_prefetch(0, A, true);
        assert!(
            matches!(r, PrefetchResult::Issued { .. }),
            "upgrade prefetch: {r:?}"
        );
        let (_, ev) = run_until_event(&mut s, 0, 300);
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: true,
                ..
            }
        ));
    }

    #[test]
    fn write_invalidates_remote_sharer() {
        let mut s = sys(2);
        s.write_initial(A, 1);
        s.tick(0);
        let _ = s.issue_demand_read(1, A); // proc 1 caches A shared
        let _ = run_until_event(&mut s, 1, 200);
        // Proc 0 writes A: needs exclusivity, must invalidate proc 1.
        let _ = s.issue_demand_write(0, A, 9);
        let (cycle, ev) = run_until_event(&mut s, 0, 400);
        // Extra invalidation round trip: 198 total after issue at 100.
        assert_eq!(cycle, 100 + 198);
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: true,
                ..
            }
        ));
        // Proc 1 saw the invalidation strictly before the grant.
        let ev1 = s.drain_events(1);
        assert_eq!(ev1, vec![MemEvent::Invalidated { line: s.line_of(A) }]);
        assert_eq!(s.read_coherent(A), 9);
    }

    #[test]
    fn read_of_remote_dirty_line_flushes_owner() {
        let mut s = sys(2);
        s.tick(0);
        let _ = s.issue_demand_write(0, A, 77);
        let _ = run_until_event(&mut s, 0, 200);
        // Proc 1 reads A: dirty at proc 0 → flush.
        let t0 = s.now();
        let IssueResult::Miss { token, .. } = s.issue_demand_read(1, A) else {
            panic!()
        };
        let (cycle, ev) = run_until_event(&mut s, 1, 400);
        assert_eq!(
            cycle - t0,
            198,
            "remote dirty miss costs an extra round trip"
        );
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: false,
                ..
            }
        ));
        assert_eq!(s.take_bound_value(token), Some(77), "flushed data visible");
        // Owner was downgraded and notified.
        let ev0 = s.drain_events(0);
        assert_eq!(ev0, vec![MemEvent::Invalidated { line: s.line_of(A) }]);
        assert_eq!(s.caches[0].state(s.line_of(A)), Some(LineState::Shared));
        assert_eq!(s.stats().flushes, 1);
    }

    #[test]
    fn upgrade_from_shared() {
        let mut s = sys(2);
        s.tick(0);
        let _ = s.issue_demand_read(0, A);
        let _ = run_until_event(&mut s, 0, 200);
        let t0 = s.now();
        let r = s.issue_demand_write(0, A, 1);
        assert!(
            matches!(r, IssueResult::Miss { .. }),
            "upgrade is a transaction"
        );
        let (cycle, ev) = run_until_event(&mut s, 0, 300);
        assert_eq!(
            cycle - t0,
            100,
            "uncontended upgrade costs a clean round trip"
        );
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: true,
                ..
            }
        ));
        assert_eq!(s.read_coherent(A), 1);
    }

    #[test]
    fn write_to_line_with_shared_fill_in_flight_waits() {
        let mut s = sys(1);
        s.tick(0);
        let IssueResult::Miss { txn, .. } = s.issue_demand_read(0, A) else {
            panic!()
        };
        let r = s.issue_demand_write(0, A, 1);
        assert_eq!(r, IssueResult::WaitForFill { txn });
    }

    #[test]
    fn mshr_exhaustion_reported() {
        let mut cfg = MemConfig::paper();
        cfg.mshrs = 1;
        let mut s = MemorySystem::new(cfg, 1);
        s.tick(0);
        let _ = s.issue_demand_read(0, A);
        assert_eq!(s.issue_demand_read(0, B), IssueResult::NoMshr);
        assert_eq!(s.issue_prefetch(0, B, false), PrefetchResult::NoResource);
    }

    #[test]
    fn set_conflict_reported() {
        let mut cfg = MemConfig::paper();
        cfg.cache.sets = 1;
        cfg.cache.ways = 2;
        let mut s = MemorySystem::new(cfg, 1);
        s.tick(0);
        let _ = s.issue_demand_read(0, Addr(0));
        let _ = s.issue_demand_read(0, Addr(64));
        assert_eq!(s.issue_demand_read(0, Addr(128)), IssueResult::SetFull);
    }

    #[test]
    fn eviction_notifies_and_writes_back() {
        let mut cfg = MemConfig::paper();
        cfg.cache.sets = 1;
        cfg.cache.ways = 1;
        let mut s = MemorySystem::new(cfg, 1);
        s.tick(0);
        let _ = s.issue_demand_write(0, Addr(0), 42);
        let _ = run_until_event(&mut s, 0, 200);
        // Next fill evicts the dirty line; memory must see 42.
        let _ = s.issue_demand_read(0, Addr(64));
        let (_, ev) = run_until_event(&mut s, 0, 300);
        assert!(ev.contains(&MemEvent::Replaced { line: LineAddr(0) }));
        assert_eq!(s.read_coherent(Addr(0)), 42);
        assert_eq!(s.stats().writebacks, 1);
    }

    #[test]
    fn update_protocol_write_refreshes_sharers() {
        let mut cfg = MemConfig::paper();
        cfg.protocol = Protocol::Update;
        let mut s = MemorySystem::new(cfg, 2);
        s.write_initial(A, 1);
        s.tick(0);
        let _ = s.issue_demand_read(1, A);
        let _ = run_until_event(&mut s, 1, 200);
        let t0 = s.now();
        let r = s.issue_demand_write(0, A, 9);
        assert!(matches!(r, IssueResult::Miss { .. }));
        let (cycle, _) = run_until_event(&mut s, 0, 400);
        assert_eq!(cycle - t0, 198, "update write waits for remote acks");
        // Sharer's copy was refreshed in place, not invalidated.
        let ev1 = s.drain_events(1);
        assert_eq!(
            ev1,
            vec![MemEvent::Updated {
                line: s.line_of(A),
                addr: A,
                value: 9
            }]
        );
        assert_eq!(s.read_word(1, A), Ok(9));
        assert_eq!(s.read_coherent(A), 9);
    }

    #[test]
    fn update_protocol_rejects_exclusive_prefetch() {
        let mut cfg = MemConfig::paper();
        cfg.protocol = Protocol::Update;
        let mut s = MemorySystem::new(cfg, 1);
        s.tick(0);
        assert_eq!(s.issue_prefetch(0, A, true), PrefetchResult::Unsupported);
        assert!(matches!(
            s.issue_prefetch(0, A, false),
            PrefetchResult::Issued { .. }
        ));
    }

    #[test]
    fn update_protocol_rmw_returns_old_value() {
        let mut cfg = MemConfig::paper();
        cfg.protocol = Protocol::Update;
        let mut s = MemorySystem::new(cfg, 1);
        s.write_initial(A, 0);
        s.tick(0);
        let IssueResult::Miss { token, .. } = s.issue_demand_rmw(0, A, RmwKind::TestAndSet, 0)
        else {
            panic!()
        };
        let _ = run_until_event(&mut s, 0, 200);
        assert_eq!(s.take_bound_value(token), Some(0));
        assert_eq!(s.read_coherent(A), 1);
    }

    #[test]
    fn upgrade_raced_by_invalidation_still_gets_data() {
        let mut s = sys(2);
        s.write_initial(A, 3);
        s.tick(0);
        // Both procs cache A shared.
        let _ = s.issue_demand_read(0, A);
        let _ = s.issue_demand_read(1, A);
        let _ = run_until_event(&mut s, 0, 200);
        let _ = run_until_event(&mut s, 1, 200);
        // Both try to upgrade in the same cycle; one is serviced first,
        // invalidating the other's copy while its upgrade is in flight;
        // the loser must receive a full data fill (with the winner's
        // value flushed through) and apply its own store on top.
        let r0 = s.issue_demand_write(0, A, 10);
        let r1 = s.issue_demand_write(1, A, 20);
        assert!(matches!(r0, IssueResult::Miss { .. }));
        assert!(matches!(r1, IssueResult::Miss { .. }));
        let mut grants = Vec::new();
        for c in s.now() + 1..s.now() + 900 {
            s.tick(c);
            for p in 0..2 {
                for e in s.drain_events(p) {
                    if matches!(
                        e,
                        MemEvent::Done {
                            exclusive: true,
                            ..
                        }
                    ) {
                        grants.push((c, p));
                    }
                }
            }
        }
        assert_eq!(grants.len(), 2, "both writes eventually granted");
        assert!(grants[1].0 > grants[0].0, "grants strictly ordered");
        // The final value is the last writer's.
        let winner_value = if grants[1].1 == 0 { 10 } else { 20 };
        assert_eq!(s.read_coherent(A), winner_value);
    }

    #[test]
    fn two_misses_pipeline_one_cycle_apart() {
        let mut s = sys(1);
        s.tick(0);
        let _ = s.issue_demand_read(0, A);
        s.tick(1);
        let _ = s.issue_demand_read(0, B);
        let mut done_cycles = Vec::new();
        for c in 2..=200 {
            s.tick(c);
            for e in s.drain_events(0) {
                if matches!(e, MemEvent::Done { .. }) {
                    done_cycles.push(c);
                }
            }
        }
        assert_eq!(done_cycles, vec![100, 101], "lockup-free pipelining");
    }

    #[test]
    fn contended_line_serializes_at_directory() {
        let mut s = sys(2);
        s.tick(0);
        // Both processors write-miss the same line in the same cycle.
        let _ = s.issue_demand_write(0, A, 1);
        let _ = s.issue_demand_write(1, A, 2);
        let mut grants = Vec::new();
        for c in 1..=800 {
            s.tick(c);
            for p in 0..2 {
                for e in s.drain_events(p) {
                    if matches!(
                        e,
                        MemEvent::Done {
                            exclusive: true,
                            ..
                        }
                    ) {
                        grants.push((c, p));
                    }
                }
            }
        }
        assert_eq!(grants.len(), 2);
        assert!(
            grants[1].0 > grants[0].0,
            "second grant strictly after the first: {grants:?}"
        );
        // The last writer's value wins (stores applied at grant).
        let last = grants[1].1 as u64 + 1;
        assert_eq!(s.read_coherent(A), last);
    }

    #[test]
    fn early_grant_skips_invalidation_round_trip() {
        // Adve-Hill mode (§6): the write is granted without waiting for
        // the sharer acks; the invalidations still go out.
        let mut cfg = MemConfig::paper();
        cfg.early_grant_writes = true;
        let mut s = MemorySystem::new(cfg, 2);
        s.tick(0);
        let _ = s.issue_demand_read(1, A);
        let _ = run_until_event(&mut s, 1, 200);
        let t0 = s.now();
        let _ = s.issue_demand_write(0, A, 9);
        let (cycle, ev) = run_until_event(&mut s, 0, 400);
        assert_eq!(
            cycle - t0,
            100,
            "grant at clean-miss latency despite sharers"
        );
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: true,
                ..
            }
        ));
        // The sharer is still invalidated (later).
        let (_, ev1) = run_until_event(&mut s, 1, 400);
        assert!(matches!(ev1[0], MemEvent::Invalidated { .. }));
    }

    #[test]
    fn snapshot_reflects_exclusive_cached_values() {
        let mut s = sys(1);
        s.tick(0);
        let _ = s.issue_demand_write(0, A, 5);
        let _ = run_until_event(&mut s, 0, 200);
        // The dirty value lives only in the cache; the snapshot must
        // still see it.
        let snap = s.snapshot_coherent();
        assert_eq!(snap.get(&A.0).copied(), Some(5));
    }

    #[test]
    fn pinned_upgrade_line_survives_set_pressure() {
        // One set, one way: the line being upgraded must not be
        // victimized while its transaction is in flight; the conflicting
        // access reports SetFull instead.
        let mut cfg = MemConfig::paper();
        cfg.cache.sets = 1;
        cfg.cache.ways = 1;
        let mut s = MemorySystem::new(cfg, 1);
        s.tick(0);
        let _ = s.issue_demand_read(0, Addr(0));
        let _ = run_until_event(&mut s, 0, 200);
        // Upgrade in flight pins the line.
        let r = s.issue_demand_write(0, Addr(0), 1);
        assert!(matches!(r, IssueResult::Miss { .. }));
        assert_eq!(s.issue_demand_read(0, Addr(64)), IssueResult::SetFull);
        let (_, ev) = run_until_event(&mut s, 0, 300);
        assert!(matches!(
            ev[0],
            MemEvent::Done {
                exclusive: true,
                ..
            }
        ));
        assert_eq!(s.read_coherent(Addr(0)), 1);
        // After the fill the pin is released and the conflicting read can
        // evict it.
        let r = s.issue_demand_read(0, Addr(64));
        assert!(matches!(r, IssueResult::Miss { .. }));
    }

    #[test]
    fn flush_after_replacement_falls_back_to_memory() {
        // Owner writes a line, evicts it (synchronous writeback), and a
        // remote read whose flush was already in flight must still get
        // the current data from memory.
        let mut cfg = MemConfig::paper();
        cfg.cache.sets = 1;
        cfg.cache.ways = 1;
        let mut s = MemorySystem::new(cfg, 2);
        s.tick(0);
        let _ = s.issue_demand_write(0, A, 77);
        let _ = run_until_event(&mut s, 0, 200);
        // Proc 1 reads A (flush heads toward proc 0)...
        let IssueResult::Miss { token, .. } = s.issue_demand_read(1, A) else {
            panic!()
        };
        // ...while proc 0 evicts A before the flush lands.
        for c in s.now() + 1..s.now() + 30 {
            s.tick(c);
        }
        let _ = s.issue_demand_read(0, B); // evicts A (1 set x 1 way)
        let (_, ev1) = run_until_event(&mut s, 1, 500);
        assert!(matches!(ev1[0], MemEvent::Done { .. }));
        assert_eq!(s.take_bound_value(token), Some(77), "memory copy current");
    }

    #[test]
    fn preload_rejects_conflicts() {
        let mut s = sys(2);
        s.preload(0, A, true);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s2 = sys(2);
            s2.preload(0, A, true);
            s2.preload(1, A, false); // conflicts with exclusive owner
        }));
        assert!(r.is_err(), "conflicting preload must panic");
        let _ = s;
    }

    /// Ticks until `check_invariants` first fails, returning the cycle and
    /// the error, or panics after `limit` clean cycles.
    fn run_until_violation(s: &mut MemorySystem, limit: u64) -> (u64, SimError) {
        let start = s.now();
        for c in start..=start + limit {
            s.tick(c);
            if let Err(e) = s.check_invariants() {
                return (c, e);
            }
        }
        panic!("no invariant violation within {limit} cycles");
    }

    #[test]
    fn clean_runs_satisfy_invariants_every_cycle() {
        let mut s = sys(2);
        s.write_initial(A, 1);
        s.tick(0);
        let _ = s.issue_demand_read(1, A);
        let _ = s.issue_demand_write(0, B, 5);
        for c in 1..=400 {
            s.tick(c);
            let _ = s.drain_events(0);
            let _ = s.drain_events(1);
            s.check_invariants()
                .unwrap_or_else(|e| panic!("cycle {c}: {e}"));
        }
        // Contended upgrade race, checked every cycle.
        let _ = s.issue_demand_write(0, A, 10);
        let _ = s.issue_demand_write(1, A, 20);
        for c in 401..=1200 {
            s.tick(c);
            let _ = s.drain_events(0);
            let _ = s.drain_events(1);
            s.check_invariants()
                .unwrap_or_else(|e| panic!("cycle {c}: {e}"));
        }
        assert!(s.take_fault().is_none());
    }

    #[test]
    fn dropped_invalidation_caught_when_writer_fill_lands() {
        // Proc 1 caches A shared; proc 0 then writes A. The invalidation
        // to proc 1 is dropped, so when proc 0's exclusive fill lands at
        // the usual 198-cycle contended latency, two copies coexist.
        let mut s = sys(2);
        s.write_initial(A, 1);
        s.tick(0);
        let _ = s.issue_demand_read(1, A);
        let _ = run_until_event(&mut s, 1, 200);
        s.arm_fault(FaultKind::DropInvalidation { nth: 1 });
        let t0 = s.now();
        let _ = s.issue_demand_write(0, A, 9);
        let (cycle, err) = run_until_violation(&mut s, 400);
        assert_eq!(
            cycle - t0,
            198,
            "first violation exactly when the tainted grant lands"
        );
        assert_eq!(
            err.violated_invariant(),
            Some(InvariantKind::SwmrExclusiveWithCopies)
        );
        assert_eq!(err.cycle, cycle);
        assert_eq!(err.line, Some(s.line_of(A).0));
        assert!(s.fault_fired());
        // The stale copy is observable: proc 1 still reads the old value.
        assert_eq!(s.read_word(1, A), Ok(1));
    }

    #[test]
    fn corrupted_line_state_caught_at_fill_delivery() {
        // Proc 1 holds A shared; proc 0's shared fill is corrupted into an
        // exclusive grant. At delivery (100 cycles after issue) proc 0
        // believes it owns a line proc 1 still shares.
        let mut s = sys(2);
        s.write_initial(A, 1);
        s.tick(0);
        let _ = s.issue_demand_read(1, A);
        let _ = run_until_event(&mut s, 1, 200);
        s.arm_fault(FaultKind::CorruptLineState { nth: 1 });
        let t0 = s.now();
        let _ = s.issue_demand_read(0, A);
        let (cycle, err) = run_until_violation(&mut s, 400);
        assert_eq!(cycle - t0, 100, "violation the cycle the fill delivers");
        assert_eq!(
            err.violated_invariant(),
            Some(InvariantKind::SwmrExclusiveWithCopies)
        );
        assert_eq!(err.proc, Some(0));
    }

    #[test]
    fn stuck_mshr_leaves_network_silent_with_entry_outstanding() {
        // The dropped fill freezes the transaction: no invariant is
        // violated (the reservation stays coherent), but the network goes
        // silent with an MSHR outstanding — the watchdog's signature.
        let mut s = sys(1);
        s.tick(0);
        s.arm_fault(FaultKind::StuckMshr { nth: 1 });
        let IssueResult::Miss { token, .. } = s.issue_demand_read(0, A) else {
            panic!()
        };
        for c in 1..=400 {
            s.tick(c);
            s.check_invariants().unwrap();
            assert!(s.drain_events(0).is_empty(), "fill must never arrive");
        }
        assert!(s.fault_fired());
        assert_eq!(s.in_flight(), 0, "network silent");
        assert!(
            matches!(s.probe(0, s.line_of(A)), ProbeResult::Pending { .. }),
            "MSHR still open"
        );
        assert_eq!(s.take_bound_value(token), None);
    }

    #[test]
    fn fill_without_mshr_reports_structured_fault() {
        // Drive the private deliver path via a corrupted completion: a
        // second fill for an already-completed line.
        let mut s = sys(1);
        s.tick(0);
        let _ = s.issue_demand_read(0, A);
        let _ = run_until_event(&mut s, 0, 200);
        assert!(s.take_fault().is_none());
        s.deliver(
            0,
            ProcMsg::Fill {
                txn: TxnId(999),
                line: s.line_of(A),
                exclusive: false,
                data: None,
            },
        );
        let err = s.take_fault().expect("fault recorded");
        assert!(err.to_string().contains("without an outstanding MSHR"));
        assert_eq!(err.proc, Some(0));
        assert!(s.take_fault().is_none(), "fault is taken once");
    }

    #[test]
    fn activity_counter_is_monotone_and_settles() {
        let mut s = sys(1);
        s.tick(0);
        let a0 = s.activity();
        let _ = s.issue_demand_read(0, A);
        assert!(s.activity() > a0, "issue counted as activity");
        let _ = run_until_event(&mut s, 0, 200);
        let a1 = s.activity();
        let quiet_from = s.now() + 1;
        for c in quiet_from..quiet_from + 50 {
            s.tick(c);
        }
        assert_eq!(s.activity(), a1, "idle ticks add no activity");
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn invalidation_strictly_precedes_new_owner_grant() {
        // The property the speculative-load buffer relies on: when another
        // processor's write performs, every cache that held the line has
        // already seen the invalidation.
        let mut s = sys(2);
        s.tick(0);
        let _ = s.issue_demand_read(1, A);
        let _ = run_until_event(&mut s, 1, 200);
        let _ = s.issue_demand_write(0, A, 9);
        let mut inval_at = None;
        let mut grant_at = None;
        for c in s.now() + 1..s.now() + 400 {
            s.tick(c);
            for e in s.drain_events(1) {
                if matches!(e, MemEvent::Invalidated { .. }) {
                    inval_at = Some(c);
                }
            }
            for e in s.drain_events(0) {
                if matches!(
                    e,
                    MemEvent::Done {
                        exclusive: true,
                        ..
                    }
                ) {
                    grant_at = Some(c);
                }
            }
        }
        assert!(
            inval_at.unwrap() < grant_at.unwrap(),
            "invalidation ({inval_at:?}) must precede grant ({grant_at:?})"
        );
    }
}
