//! Memory-system configuration.

use serde::{Deserialize, Serialize};

/// Coherence protocol selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// Invalidation-based (DASH-style). Supports both read and
    /// read-exclusive prefetch — the protocol the paper assumes.
    Invalidate,
    /// Update-based. Writes propagate new values to sharers; lines are
    /// never exclusive, so read-exclusive prefetch is unavailable (§3.1).
    Update,
}

/// Geometry of each per-processor cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// log2 of the block size in bytes (6 = 64-byte lines).
    pub block_bits: u32,
}

impl CacheConfig {
    /// Words (u64) per cache line.
    #[must_use]
    pub fn block_words(&self) -> usize {
        (1usize << self.block_bits) / 8
    }

    /// Set index for a line address.
    #[must_use]
    pub fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    /// Validates the geometry.
    ///
    /// # Panics
    /// If `sets` is not a power of two, or any dimension is zero, or the
    /// block is smaller than one word.
    pub fn validate(&self) {
        assert!(
            self.sets.is_power_of_two(),
            "cache sets must be a power of two"
        );
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(
            self.block_bits >= 3,
            "block must hold at least one 64-bit word"
        );
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            sets: 64,
            ways: 4,
            block_bits: 6,
        }
    }
}

/// Latency parameters. All values in cycles.
///
/// A clean miss costs `hop + svc + hop` end-to-end. Transactions that must
/// invalidate remote sharers, update remote copies, or fetch dirty data
/// from a remote owner pay one extra round trip (`2 * hop`) before the
/// response is sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTimings {
    /// Cache hit latency (issue to value available).
    pub hit: u64,
    /// One network traversal: processor → directory or directory →
    /// processor.
    pub hop: u64,
    /// Directory/memory service latency per transaction (pipelined:
    /// occupancy is 1 cycle, this is pure latency).
    pub svc: u64,
}

impl MemTimings {
    /// The paper's calibration: 1-cycle hits, 100-cycle clean misses
    /// (`49 + 2 + 49`).
    #[must_use]
    pub fn paper() -> Self {
        MemTimings {
            hit: 1,
            hop: 49,
            svc: 2,
        }
    }

    /// Timings with a given clean-miss latency, keeping 1-cycle hits. The
    /// miss is split `(m-2)/2 + 2 + (m-2)/2`; `miss` must be even and ≥ 4.
    ///
    /// # Panics
    /// If `miss` is odd or below 4.
    #[must_use]
    pub fn with_miss_latency(miss: u64) -> Self {
        assert!(
            miss >= 4 && miss.is_multiple_of(2),
            "miss latency must be even and >= 4"
        );
        MemTimings {
            hit: 1,
            hop: (miss - 2) / 2,
            svc: 2,
        }
    }

    /// End-to-end latency of a clean (no remote copies) miss.
    #[must_use]
    pub fn clean_miss(&self) -> u64 {
        self.hop + self.svc + self.hop
    }

    /// End-to-end latency of a miss that needs a remote round trip
    /// (invalidations or a dirty flush).
    #[must_use]
    pub fn remote_miss(&self) -> u64 {
        self.clean_miss() + 2 * self.hop
    }
}

impl Default for MemTimings {
    fn default() -> Self {
        MemTimings::paper()
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Per-processor cache geometry.
    pub cache: CacheConfig,
    /// Latencies.
    pub timings: MemTimings,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Maximum outstanding misses per processor (MSHR count) — the
    /// lockup-free depth.
    pub mshrs: usize,
    /// Transactions the directory may *start* per cycle.
    pub dir_bandwidth: usize,
    /// Adve–Hill-style early ownership grant (§6 related work): a write
    /// is granted as soon as ownership is available at the directory,
    /// *without* waiting for the invalidation round trip — their
    /// visibility-control mechanism (not timed here) keeps SC intact.
    /// Only meaningful as a conventional-SC baseline; the speculative-load
    /// buffer's detection assumes invalidations precede grants, so do not
    /// combine with the speculation technique.
    pub early_grant_writes: bool,
}

impl MemConfig {
    /// The paper's configuration: 100-cycle misses, invalidation protocol,
    /// 16 MSHRs.
    #[must_use]
    pub fn paper() -> Self {
        MemConfig {
            cache: CacheConfig::default(),
            timings: MemTimings::paper(),
            protocol: Protocol::Invalidate,
            mshrs: 16,
            dir_bandwidth: 1,
            early_grant_writes: false,
        }
    }

    /// Validates all sub-configs.
    ///
    /// # Panics
    /// On invalid geometry or zero MSHRs/bandwidth.
    pub fn validate(&self) {
        self.cache.validate();
        assert!(self.mshrs > 0, "need at least one MSHR");
        assert!(
            self.dir_bandwidth > 0,
            "directory bandwidth must be positive"
        );
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timings_give_100_cycle_miss() {
        let t = MemTimings::paper();
        assert_eq!(t.clean_miss(), 100);
        assert_eq!(t.hit, 1);
        assert_eq!(t.remote_miss(), 198);
    }

    #[test]
    fn with_miss_latency_roundtrips() {
        for m in [4u64, 20, 100, 400] {
            assert_eq!(MemTimings::with_miss_latency(m).clean_miss(), m);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_miss_latency_rejected() {
        let _ = MemTimings::with_miss_latency(101);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig::default();
        c.validate();
        assert_eq!(c.block_words(), 8);
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(64), 0);
        assert_eq!(c.set_of(65), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        CacheConfig {
            sets: 3,
            ways: 1,
            block_bits: 6,
        }
        .validate();
    }
}
