//! Transaction identifiers, processor-visible events, and issue results.

use mcsim_isa::LineAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique identifier of a memory transaction (one miss or
/// prefetch). Demand references merged into an outstanding prefetch share
/// its `TxnId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Identifier of one *demand operation* riding a transaction.
///
/// When a transaction's response arrives, the memory system applies every
/// demand operation attached to it atomically with the fill — the write
/// happens the instant ownership is granted, and load values are bound
/// before any later coherence message can steal the line. Loads and RMWs
/// retrieve their bound value afterwards with
/// [`crate::MemorySystem::take_bound_value`], keyed by this token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DemandToken(pub u64);

impl fmt::Display for DemandToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Index of a processor in the machine.
pub type ProcId = usize;

/// Coherence state of a cached line, as seen by probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineState {
    /// Readable, possibly shared with other caches.
    Shared,
    /// Readable and writable; no other cache holds a copy.
    Exclusive,
}

/// What a (free) cache probe reports about a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeResult {
    /// Not cached and no outstanding transaction.
    Absent,
    /// Cached in the given state.
    Present(LineState),
    /// An outstanding transaction will fill the line.
    Pending {
        /// The outstanding transaction.
        txn: TxnId,
        /// Whether the fill will grant exclusivity.
        exclusive: bool,
        /// Whether the transaction was launched as a prefetch (nothing is
        /// waiting on it yet).
        prefetch_only: bool,
    },
}

/// Outcome of a demand issue through the cache port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueResult {
    /// The access hit in the cache; it completes after the hit latency.
    /// Its architectural effect was applied at issue; the bound value
    /// (load / RMW-old) is already retrievable via `token`.
    Hit {
        /// Token holding the bound value.
        token: DemandToken,
    },
    /// A miss was launched; completion arrives as [`MemEvent::Done`]. The
    /// operation's effect is applied atomically with the fill; bound
    /// values are retrieved by `token`.
    Miss {
        /// Transaction to wait for.
        txn: TxnId,
        /// Token to retrieve the bound value (loads, RMWs).
        token: DemandToken,
    },
    /// The access merged with an outstanding transaction (typically a
    /// prefetch) without consuming a new MSHR; it completes when that
    /// transaction's response returns (§3.2: "the reference completes as
    /// soon as the prefetch result returns").
    Merged {
        /// Transaction to wait for.
        txn: TxnId,
        /// Token to retrieve the bound value (loads, RMWs).
        token: DemandToken,
    },
    /// A write found an outstanding *shared* fill for its line; it must
    /// wait for that fill and then upgrade. The caller retries after
    /// [`MemEvent::Done`] for `txn`.
    WaitForFill {
        /// The shared fill in flight.
        txn: TxnId,
    },
    /// No MSHR available (lockup-free depth exhausted); retry later.
    NoMshr,
    /// Every way in the target set has an outstanding fill; retry later.
    SetFull,
}

/// Outcome of a prefetch issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchResult {
    /// Prefetch launched.
    Issued {
        /// Transaction created for the prefetch.
        txn: TxnId,
    },
    /// Line already present in a sufficient state — prefetch discarded
    /// (§3.2: "a prefetch request first checks the cache").
    AlreadyPresent,
    /// A transaction for the line is already outstanding — discarded.
    AlreadyPending,
    /// No MSHR or no evictable way; not issued.
    NoResource,
    /// The protocol cannot service this prefetch (read-exclusive prefetch
    /// under the update protocol, §3.1).
    Unsupported,
}

/// Events delivered to a processor by the memory system. The completion
/// events drive the load/store unit; the coherence events
/// (invalidate/update/replace) additionally feed the speculative-load
/// buffer's detection mechanism (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemEvent {
    /// A transaction completed; the line is now filled in the cache (or,
    /// for update-protocol writes, the write is performed).
    Done {
        /// The completed transaction.
        txn: TxnId,
        /// The line it concerned.
        line: LineAddr,
        /// Whether the line is now held exclusively.
        exclusive: bool,
    },
    /// The cache lost the line to an invalidation (or exclusivity-stealing
    /// flush) from another processor's write (or read, for E→I flushes).
    Invalidated {
        /// The line that was invalidated.
        line: LineAddr,
    },
    /// Update protocol: another processor wrote this word; the local copy
    /// was refreshed in place. Carries the word and new value so a
    /// detection mechanism may discriminate false sharing and same-value
    /// writes (footnote 2 of the paper makes this conservative choice
    /// configurable here).
    Updated {
        /// The line that was updated.
        line: LineAddr,
        /// The exact word written.
        addr: mcsim_isa::Addr,
        /// The new value.
        value: u64,
    },
    /// The cache replaced (evicted) this line to make room for a fill.
    Replaced {
        /// The line that was evicted.
        line: LineAddr,
    },
}

impl MemEvent {
    /// The line this event concerns.
    #[must_use]
    pub fn line(&self) -> LineAddr {
        match self {
            MemEvent::Done { line, .. }
            | MemEvent::Invalidated { line }
            | MemEvent::Updated { line, .. }
            | MemEvent::Replaced { line } => *line,
        }
    }

    /// Whether this is a coherence event the speculative-load buffer must
    /// match against (invalidation, update, or replacement — §4.2's
    /// detection triggers).
    #[must_use]
    pub fn is_coherence_hazard(&self) -> bool {
        !matches!(self, MemEvent::Done { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hazard_classification() {
        let done = MemEvent::Done {
            txn: TxnId(1),
            line: LineAddr(4),
            exclusive: false,
        };
        assert!(!done.is_coherence_hazard());
        assert!(MemEvent::Invalidated { line: LineAddr(4) }.is_coherence_hazard());
        assert!(MemEvent::Updated {
            line: LineAddr(4),
            addr: mcsim_isa::Addr(0x100),
            value: 9
        }
        .is_coherence_hazard());
        assert!(MemEvent::Replaced { line: LineAddr(4) }.is_coherence_hazard());
        assert_eq!(done.line(), LineAddr(4));
    }

    #[test]
    fn txn_display() {
        assert_eq!(TxnId(7).to_string(), "txn7");
    }
}
