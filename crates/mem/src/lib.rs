//! # mcsim-mem — the coherent memory system
//!
//! The paper's techniques lean on specific memory-system machinery (§3.2,
//! §4.1): *hardware-coherent caches*, a *high-bandwidth pipelined memory
//! system with lockup-free caches* able to sustain several outstanding
//! requests, and (for write prefetching) an *invalidation-based* coherence
//! scheme. This crate builds all of it:
//!
//! * [`cache`] — per-processor set-associative caches with
//!   Invalid/Shared/Exclusive line states, LRU replacement that never
//!   victimizes a line with an outstanding access (footnote 3 of the
//!   paper), and word-granularity data so litmus tests observe real values.
//! * [`mshr`] — miss-status holding registers making the cache lockup-free
//!   (Kroft; Scheurich & Dubois): multiple outstanding misses, and
//!   *merging* of a demand reference into an outstanding prefetch so "the
//!   reference completes as soon as the prefetch result returns" (§3.2).
//! * [`directory`] — a full-map directory (DASH-style) serializing
//!   transactions per line, collecting invalidation acknowledgements
//!   before granting exclusive ownership, and forwarding dirty data.
//! * [`system`] — [`MemorySystem`], the facade the processor's load/store
//!   unit talks to: one port per processor per cycle, demand reads/writes,
//!   read and read-exclusive prefetches, and an event stream carrying
//!   completions *and* the coherence traffic (invalidations, updates,
//!   replacements) that the speculative-load buffer monitors (§4.2).
//!
//! Two protocols are provided ([`config::Protocol`]): the default
//! **invalidation** protocol, and an **update** protocol variant under
//! which read-exclusive prefetching is impossible — reproducing the §3.1
//! observation that "in update-based schemes, it is difficult to partially
//! service a write operation without making the new value available to
//! other processors".
//!
//! ## Timing
//!
//! A clean miss costs `hop + svc + hop` cycles end-to-end
//! ([`config::MemTimings`]); the paper-calibrated default is
//! `49 + 2 + 49 = 100` with 1-cycle hits, matching §3.3's "cache hit
//! latency of 1 cycle and cache miss latency of 100 cycles". Transactions
//! that must invalidate sharers or fetch dirty data from a remote owner
//! pay an extra round trip (`2 * hop`). The directory starts one
//! transaction per cycle (pipelined), so independent misses from one
//! processor complete 1 cycle apart — the pipelining the techniques
//! exploit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod directory;
pub mod msg;
pub mod mshr;
pub mod stats;
pub mod system;

pub use cache::CacheFault;
pub use config::{CacheConfig, MemConfig, MemTimings, Protocol};
pub use msg::{DemandToken, IssueResult, MemEvent, PrefetchResult, ProbeResult, TxnId};
pub use mshr::MshrFault;
pub use stats::MemStats;
pub use system::{MemQuiescence, MemorySystem};
