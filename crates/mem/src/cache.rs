//! Per-processor set-associative cache arrays.
//!
//! The cache stores real word data (not just tags) so that executions
//! observe genuine values — litmus tests depend on a stale-but-legal value
//! being readable while an invalidation is still in flight. State is a
//! compact MSI-without-M: `Shared` (readable) and `Exclusive` (readable +
//! writable, implies no other copies; dirty data lives here until flushed
//! or written back).
//!
//! A way can be *reserved* for an outstanding fill: reservation happens at
//! issue time (evicting the LRU victim immediately), which guarantees a
//! fill always has a slot and — per footnote 3 of the paper — a line with
//! an outstanding access is never chosen as a victim.

use crate::config::CacheConfig;
use crate::msg::LineState;
use mcsim_isa::{Addr, LineAddr};

/// One way of one set.
#[derive(Debug, Clone)]
enum Way {
    /// Empty.
    Invalid,
    /// Holds a valid line.
    Present {
        line: u64,
        state: LineState,
        data: Box<[u64]>,
        lru: u64,
        /// Set when the line was brought in by a prefetch and no demand
        /// reference has touched it yet (for the useful-prefetch stat).
        prefetched: bool,
        /// An outstanding transaction (an in-place upgrade) targets this
        /// line: it must not be victimized (footnote 3 of the paper).
        pinned: bool,
    },
    /// Reserved for an outstanding fill of `line`.
    Reserved { line: u64 },
}

/// Every way in the set is occupied by an outstanding fill; the access
/// must retry (footnote 3 keeps those ways unevictable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetFull;

/// A protocol-contract violation detected by the cache array: the caller
/// asked for an operation the coherence protocol should have made
/// impossible. These were formerly `panic!` sites; the memory system now
/// converts them into structured [`mcsim_guard::SimError`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFault {
    /// `read_word` on a line that is not present.
    ReadAbsent {
        /// The absent line.
        line: LineAddr,
    },
    /// `write_word` on a line that is not present.
    WriteAbsent {
        /// The absent line.
        line: LineAddr,
    },
    /// `write_word` on a line held in a non-exclusive state.
    WriteNotExclusive {
        /// The line written.
        line: LineAddr,
        /// The state it was actually in.
        state: LineState,
    },
    /// `demote_to_reserved` on a line that is not present.
    DemoteAbsent {
        /// The absent line.
        line: LineAddr,
    },
    /// `pin` on a line that is not present.
    PinAbsent {
        /// The absent line.
        line: LineAddr,
    },
    /// A fill for a reserved way arrived without data.
    FillWithoutData {
        /// The line being filled.
        line: LineAddr,
    },
    /// A fill arrived for a line with no reserved or present way.
    FillWithoutWay {
        /// The line being filled.
        line: LineAddr,
    },
}

impl std::fmt::Display for CacheFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheFault::ReadAbsent { line } => write!(f, "read_word on absent line {line}"),
            CacheFault::WriteAbsent { line } => write!(f, "write_word on absent line {line}"),
            CacheFault::WriteNotExclusive { line, state } => {
                write!(f, "write_word on {line} held {state:?}, not exclusive")
            }
            CacheFault::DemoteAbsent { line } => {
                write!(f, "demote_to_reserved on absent line {line}")
            }
            CacheFault::PinAbsent { line } => write!(f, "pin on absent line {line}"),
            CacheFault::FillWithoutData { line } => {
                write!(f, "fill of reserved way for {line} arrived without data")
            }
            CacheFault::FillWithoutWay { line } => {
                write!(f, "fill for {line} with no reserved or present way")
            }
        }
    }
}

impl CacheFault {
    /// The line the faulting operation targeted.
    #[must_use]
    pub fn line(&self) -> LineAddr {
        match self {
            CacheFault::ReadAbsent { line }
            | CacheFault::WriteAbsent { line }
            | CacheFault::WriteNotExclusive { line, .. }
            | CacheFault::DemoteAbsent { line }
            | CacheFault::PinAbsent { line }
            | CacheFault::FillWithoutData { line }
            | CacheFault::FillWithoutWay { line } => *line,
        }
    }
}

/// Result of reserving a way: what (if anything) was evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evicted {
    /// An invalid way was used; nothing evicted.
    None,
    /// A clean (shared) line was dropped.
    Clean {
        /// The evicted line.
        line: LineAddr,
    },
    /// An exclusive (possibly dirty) line was evicted; its data must be
    /// written back to memory.
    Dirty {
        /// The evicted line.
        line: LineAddr,
        /// The line's data.
        data: Box<[u64]>,
    },
}

/// A set-associative, word-granular, coherence-state-tracking cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
}

impl Cache {
    /// An empty cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Cache {
            sets: vec![vec![Way::Invalid; cfg.ways]; cfg.sets],
            cfg,
            clock: 0,
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_of(&self, line: LineAddr) -> usize {
        self.cfg.set_of(line.0)
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        self.sets[self.set_of(line)].iter().position(|w| match w {
            Way::Present { line: l, .. } | Way::Reserved { line: l } => *l == line.0,
            Way::Invalid => false,
        })
    }

    /// The line's state if it is present (not merely reserved).
    #[must_use]
    pub fn state(&self, line: LineAddr) -> Option<LineState> {
        let set = &self.sets[self.set_of(line)];
        set.iter().find_map(|w| match w {
            Way::Present { line: l, state, .. } if *l == line.0 => Some(*state),
            _ => None,
        })
    }

    /// Whether a way is reserved for an outstanding fill of this line.
    #[must_use]
    pub fn is_reserved(&self, line: LineAddr) -> bool {
        let set = &self.sets[self.set_of(line)];
        set.iter()
            .any(|w| matches!(w, Way::Reserved { line: l } if *l == line.0))
    }

    /// Marks a demand touch: refreshes LRU and clears the prefetched flag,
    /// returning whether this was the first demand touch of a
    /// prefetch-filled line (a *useful* prefetch).
    pub fn demand_touch(&mut self, line: LineAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if let Way::Present {
                line: l,
                lru,
                prefetched,
                ..
            } = w
            {
                if *l == line.0 {
                    *lru = clock;
                    return std::mem::take(prefetched);
                }
            }
        }
        false
    }

    /// Reads the word at `addr`. Errors if the line is not present —
    /// callers must only read lines the protocol has made readable.
    pub fn read_word(&self, addr: Addr) -> Result<u64, CacheFault> {
        let line = addr.line(self.cfg.block_bits);
        let word = (addr.offset(self.cfg.block_bits) / 8) as usize;
        let set = &self.sets[self.set_of(line)];
        for w in set {
            if let Way::Present { line: l, data, .. } = w {
                if *l == line.0 {
                    return Ok(data[word]);
                }
            }
        }
        Err(CacheFault::ReadAbsent { line })
    }

    /// Writes the word at `addr`. Errors if the line is not held
    /// exclusively — the protocol must grant ownership before a write
    /// (invalidation protocol), or the caller is the update-protocol path
    /// which uses [`Cache::update_word`].
    pub fn write_word(&mut self, addr: Addr, value: u64) -> Result<(), CacheFault> {
        let line = addr.line(self.cfg.block_bits);
        let word = (addr.offset(self.cfg.block_bits) / 8) as usize;
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if let Way::Present {
                line: l,
                state,
                data,
                ..
            } = w
            {
                if *l == line.0 {
                    if *state != LineState::Exclusive {
                        return Err(CacheFault::WriteNotExclusive {
                            line,
                            state: *state,
                        });
                    }
                    data[word] = value;
                    return Ok(());
                }
            }
        }
        Err(CacheFault::WriteAbsent { line })
    }

    /// Update-protocol word refresh: overwrites the word in place if the
    /// line is present (any state); no-op otherwise. Returns whether a
    /// copy was present.
    pub fn update_word(&mut self, addr: Addr, value: u64) -> bool {
        let line = addr.line(self.cfg.block_bits);
        let word = (addr.offset(self.cfg.block_bits) / 8) as usize;
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if let Way::Present { line: l, data, .. } = w {
                if *l == line.0 {
                    data[word] = value;
                    return true;
                }
            }
        }
        false
    }

    /// Reserves a way for an outstanding fill of `line`, evicting the LRU
    /// present line if necessary. Returns `Err(SetFull)` if every way in
    /// the set is reserved for other outstanding fills (the caller
    /// reports it and the access retries).
    ///
    /// Lines with outstanding accesses occupy `Reserved` ways and are thus
    /// never victims (footnote 3: a replacement request to a line with an
    /// outstanding access must be delayed).
    pub fn reserve(&mut self, line: LineAddr) -> Result<Evicted, SetFull> {
        let set_idx = self.set_of(line);
        debug_assert!(
            self.find(line).is_none(),
            "reserve called for already-tracked line {line}"
        );
        // Prefer an invalid way.
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| matches!(w, Way::Invalid)) {
            *w = Way::Reserved { line: line.0 };
            return Ok(Evicted::None);
        }
        // Evict the LRU present way.
        let victim = set
            .iter()
            .enumerate()
            .filter_map(|(i, w)| match w {
                Way::Present { lru, pinned, .. } if !pinned => Some((*lru, i)),
                _ => None,
            })
            .min()
            .map(|(_, i)| i);
        let Some(i) = victim else {
            return Err(SetFull); // every way reserved or pinned
        };
        let old = std::mem::replace(&mut set[i], Way::Reserved { line: line.0 });
        if let Way::Present {
            line: vl,
            state,
            data,
            ..
        } = old
        {
            Ok(match state {
                LineState::Exclusive => Evicted::Dirty {
                    line: LineAddr(vl),
                    data,
                },
                LineState::Shared => Evicted::Clean { line: LineAddr(vl) },
            })
        } else {
            // The victim index was computed from present ways, so this arm
            // cannot run; restoring the way and reporting a full set is the
            // benign recovery if it ever does.
            set[i] = old;
            Err(SetFull)
        }
    }

    /// Converts a present line's way into a reservation, keeping the slot
    /// earmarked for an in-flight upgrade whose shared copy was just
    /// invalidated (the upgrade will now be answered with full data).
    /// Errors if the line is absent.
    pub fn demote_to_reserved(&mut self, line: LineAddr) -> Result<(), CacheFault> {
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if let Way::Present { line: l, .. } = w {
                if *l == line.0 {
                    *w = Way::Reserved { line: line.0 };
                    return Ok(());
                }
            }
        }
        Err(CacheFault::DemoteAbsent { line })
    }

    /// Pins a present line so it cannot be victimized while an in-place
    /// transaction (upgrade) is outstanding for it. Cleared by the next
    /// [`Cache::fill`]. Errors if the line is absent.
    pub fn pin(&mut self, line: LineAddr) -> Result<(), CacheFault> {
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if let Way::Present {
                line: l, pinned, ..
            } = w
            {
                if *l == line.0 {
                    *pinned = true;
                    return Ok(());
                }
            }
        }
        Err(CacheFault::PinAbsent { line })
    }

    /// Installs fill data.
    ///
    /// * On a `Reserved` way: fills it (`data` required).
    /// * On a `Present` way (upgrade completion): raises the state; if the
    ///   directory sent data (upgrade race), replaces the data too.
    ///
    /// Errors if the line is neither reserved nor present, or a reserved
    /// fill arrives without data.
    pub fn fill(
        &mut self,
        line: LineAddr,
        state: LineState,
        data: Option<Box<[u64]>>,
        prefetched: bool,
    ) -> Result<(), CacheFault> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            match w {
                Way::Reserved { line: l } if *l == line.0 => {
                    let Some(data) = data else {
                        return Err(CacheFault::FillWithoutData { line });
                    };
                    *w = Way::Present {
                        line: line.0,
                        state,
                        data,
                        lru: clock,
                        prefetched,
                        pinned: false,
                    };
                    return Ok(());
                }
                Way::Present {
                    line: l,
                    state: st,
                    data: d,
                    lru,
                    prefetched: pf,
                    pinned,
                } if *l == line.0 => {
                    *st = state;
                    if let Some(data) = data {
                        *d = data;
                    }
                    *lru = clock;
                    *pf = prefetched && *pf;
                    *pinned = false;
                    return Ok(());
                }
                _ => {}
            }
        }
        Err(CacheFault::FillWithoutWay { line })
    }

    /// Invalidates the line if present, returning its data (needed when
    /// the invalidation doubles as a dirty flush). `None` if absent.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Box<[u64]>> {
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if matches!(w, Way::Present { line: l, .. } if *l == line.0) {
                if let Way::Present { data, .. } = std::mem::replace(w, Way::Invalid) {
                    return Some(data);
                }
            }
        }
        None
    }

    /// Downgrades an exclusive line to shared (a read-flush), returning a
    /// copy of its data. `None` if the line is absent.
    pub fn downgrade(&mut self, line: LineAddr) -> Option<Box<[u64]>> {
        let set_idx = self.set_of(line);
        for w in &mut self.sets[set_idx] {
            if let Way::Present {
                line: l,
                state,
                data,
                ..
            } = w
            {
                if *l == line.0 {
                    *state = LineState::Shared;
                    return Some(data.clone());
                }
            }
        }
        None
    }

    /// Every present line with its state and pin status — the invariant
    /// checker walks this to verify SWMR and directory agreement.
    pub fn present_lines(&self) -> impl Iterator<Item = (LineAddr, LineState, bool)> + '_ {
        self.sets.iter().flatten().filter_map(|w| match w {
            Way::Present {
                line,
                state,
                pinned,
                ..
            } => Some((LineAddr(*line), *state, *pinned)),
            _ => None,
        })
    }

    /// Number of valid (present) lines — used by tests and stats.
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|w| matches!(w, Way::Present { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig {
            sets: 4,
            ways: 2,
            block_bits: 6,
        }
    }

    fn line_data(v: u64) -> Box<[u64]> {
        vec![v; 8].into_boxed_slice()
    }

    // Two lines mapping to the same set (sets=4 → stride 4 lines).
    const L0: LineAddr = LineAddr(0);
    const L4: LineAddr = LineAddr(4);
    const L8: LineAddr = LineAddr(8);

    #[test]
    fn reserve_fill_read() {
        let mut c = Cache::new(cfg());
        assert_eq!(c.state(L0), None);
        assert_eq!(c.reserve(L0), Ok(Evicted::None));
        assert!(c.is_reserved(L0));
        c.fill(L0, LineState::Shared, Some(line_data(7)), false)
            .unwrap();
        assert_eq!(c.state(L0), Some(LineState::Shared));
        assert_eq!(c.read_word(Addr(8)), Ok(7));
    }

    #[test]
    fn write_requires_exclusive() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Exclusive, Some(line_data(0)), false)
            .unwrap();
        c.write_word(Addr(16), 99).unwrap();
        assert_eq!(c.read_word(Addr(16)), Ok(99));
        assert_eq!(c.read_word(Addr(8)), Ok(0));
    }

    #[test]
    fn write_to_shared_is_a_fault() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Shared, Some(line_data(0)), false)
            .unwrap();
        assert_eq!(
            c.write_word(Addr(0), 1),
            Err(CacheFault::WriteNotExclusive {
                line: L0,
                state: LineState::Shared,
            })
        );
        assert_eq!(
            c.write_word(Addr(256), 1),
            Err(CacheFault::WriteAbsent { line: L4 })
        );
        assert_eq!(
            c.read_word(Addr(256)),
            Err(CacheFault::ReadAbsent { line: L4 })
        );
    }

    #[test]
    fn lru_eviction_prefers_older() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Shared, Some(line_data(1)), false)
            .unwrap();
        let _ = c.reserve(L4);
        c.fill(L4, LineState::Shared, Some(line_data(2)), false)
            .unwrap();
        // Touch L0 so L4 becomes LRU.
        c.demand_touch(L0);
        match c.reserve(L8) {
            Ok(Evicted::Clean { line }) => assert_eq!(line, L4),
            other => panic!("expected clean eviction of L4, got {other:?}"),
        }
    }

    #[test]
    fn dirty_eviction_returns_data() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Exclusive, Some(line_data(0)), false)
            .unwrap();
        c.write_word(Addr(0), 42).unwrap();
        let _ = c.reserve(L4);
        c.fill(L4, LineState::Shared, Some(line_data(2)), false)
            .unwrap();
        match c.reserve(L8) {
            Ok(Evicted::Dirty { line, data }) => {
                assert_eq!(line, L0);
                assert_eq!(data[0], 42);
            }
            other => panic!("expected dirty eviction of L0, got {other:?}"),
        }
    }

    #[test]
    fn set_full_when_all_ways_reserved() {
        let mut c = Cache::new(cfg());
        assert!(c.reserve(L0).is_ok());
        assert!(c.reserve(L4).is_ok());
        assert_eq!(c.reserve(L8), Err(SetFull));
    }

    #[test]
    fn reserved_lines_never_evicted() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0); // outstanding fill
        let _ = c.reserve(L4);
        c.fill(L4, LineState::Shared, Some(line_data(2)), false)
            .unwrap();
        // Only L4 is evictable; the reserved L0 must survive.
        match c.reserve(L8) {
            Ok(Evicted::Clean { line }) => assert_eq!(line, L4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.is_reserved(L0));
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Exclusive, Some(line_data(5)), false)
            .unwrap();
        let data = c.downgrade(L0).unwrap();
        assert_eq!(data[0], 5);
        assert_eq!(c.state(L0), Some(LineState::Shared));
        let data = c.invalidate(L0).unwrap();
        assert_eq!(data[0], 5);
        assert_eq!(c.state(L0), None);
        assert_eq!(c.invalidate(L0), None);
    }

    #[test]
    fn prefetched_flag_cleared_on_first_demand_touch() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Shared, Some(line_data(0)), true)
            .unwrap();
        assert!(c.demand_touch(L0), "first touch reports useful prefetch");
        assert!(!c.demand_touch(L0), "second touch does not");
    }

    #[test]
    fn upgrade_fill_in_place() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Shared, Some(line_data(3)), false)
            .unwrap();
        // Upgrade ack without data.
        c.fill(L0, LineState::Exclusive, None, false).unwrap();
        assert_eq!(c.state(L0), Some(LineState::Exclusive));
        assert_eq!(c.read_word(Addr(0)), Ok(3));
    }

    #[test]
    fn demote_to_reserved_keeps_slot() {
        let mut c = Cache::new(cfg());
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Shared, Some(line_data(3)), false)
            .unwrap();
        c.demote_to_reserved(L0).unwrap();
        assert!(c.is_reserved(L0));
        c.fill(L0, LineState::Exclusive, Some(line_data(9)), false)
            .unwrap();
        assert_eq!(c.read_word(Addr(0)), Ok(9));
    }

    #[test]
    fn update_word_in_place() {
        let mut c = Cache::new(cfg());
        assert!(!c.update_word(Addr(0), 1), "absent line not updated");
        let _ = c.reserve(L0);
        c.fill(L0, LineState::Shared, Some(line_data(0)), false)
            .unwrap();
        assert!(c.update_word(Addr(0), 11));
        assert_eq!(c.read_word(Addr(0)), Ok(11));
    }

    #[test]
    fn resident_count() {
        let mut c = Cache::new(cfg());
        assert_eq!(c.resident_lines(), 0);
        let _ = c.reserve(L0);
        assert_eq!(c.resident_lines(), 0, "reserved is not resident");
        c.fill(L0, LineState::Shared, Some(line_data(0)), false)
            .unwrap();
        assert_eq!(c.resident_lines(), 1);
    }
}
