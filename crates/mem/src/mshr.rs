//! Miss-status holding registers (MSHRs) — the lockup-free cache machinery
//! (Kroft [14]; Scheurich & Dubois [21] in the paper's bibliography).
//!
//! Each outstanding transaction of a processor occupies one MSHR, keyed by
//! line. The paper's §3.2 merging requirement — "if a processor references
//! a location it has prefetched before the result has returned, the
//! reference request is combined with the prefetch request" — is
//! implemented by [`MshrFile::get_mut`]: the load/store unit finds the
//! entry, flips `prefetch_only` off, and waits on the existing
//! transaction.

use crate::msg::{DemandToken, TxnId};
use mcsim_isa::{Addr, LineAddr, RmwKind};
use std::collections::HashMap;

/// A demand operation attached to an outstanding transaction, applied
/// atomically when the fill arrives (grant and data use are one event, as
/// in real protocols — no later coherence message can slip between them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingOp {
    /// Bind the word's value for a load.
    Read {
        /// Word to read.
        addr: Addr,
    },
    /// Perform a store.
    Write {
        /// Word to write.
        addr: Addr,
        /// Value to store.
        value: u64,
    },
    /// Perform an atomic read-modify-write; the old value is bound.
    Rmw {
        /// Word to operate on.
        addr: Addr,
        /// The atomic operation.
        kind: RmwKind,
        /// Operand for the modify step.
        operand: u64,
    },
}

/// One outstanding transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mshr {
    /// The transaction's id (completion events carry it).
    pub txn: TxnId,
    /// The line being fetched / upgraded.
    pub line: LineAddr,
    /// Whether completion grants exclusive ownership.
    pub exclusive: bool,
    /// Whether this was launched as a prefetch with no demand reference
    /// merged into it yet.
    pub prefetch_only: bool,
    /// Whether the requester held a shared copy at issue (upgrade): no way
    /// was reserved because the line already occupies one.
    pub is_upgrade: bool,
    /// Issue cycle (for latency stats).
    pub issued_at: u64,
    /// Demand operations to apply, in issue order, when the response
    /// arrives.
    pub pending: Vec<(DemandToken, PendingOp)>,
}

/// An MSHR-bookkeeping violation: allocation past capacity or a second
/// transaction for a line that already has one outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrFault {
    /// Allocation attempted while every MSHR is occupied.
    Overflow {
        /// The line the rejected transaction targeted.
        line: LineAddr,
    },
    /// The line already has an outstanding MSHR.
    DuplicateLine {
        /// The doubly-tracked line.
        line: LineAddr,
    },
}

impl std::fmt::Display for MshrFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrFault::Overflow { line } => {
                write!(f, "MSHR file full when allocating for {line}")
            }
            MshrFault::DuplicateLine { line } => {
                write!(f, "{line} already has an outstanding MSHR")
            }
        }
    }
}

/// The per-processor file of MSHRs.
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    max: usize,
    entries: HashMap<u64, Mshr>,
}

impl MshrFile {
    /// A file with capacity `max` (the lockup-free depth).
    #[must_use]
    pub fn new(max: usize) -> Self {
        assert!(max > 0, "need at least one MSHR");
        MshrFile {
            max,
            entries: HashMap::with_capacity(max),
        }
    }

    /// Whether every MSHR is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max
    }

    /// Number of outstanding transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no transactions are outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `line`, if any.
    #[must_use]
    pub fn get(&self, line: LineAddr) -> Option<&Mshr> {
        self.entries.get(&line.0)
    }

    /// Mutable entry for `line` (used to merge a demand reference into a
    /// prefetch).
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut Mshr> {
        self.entries.get_mut(&line.0)
    }

    /// Allocates an entry. Errors if the file is full or the line already
    /// has an entry — callers check first (`is_full`, `get`), so an error
    /// here is a lockup-free-bookkeeping bug.
    pub fn allocate(&mut self, m: Mshr) -> Result<(), MshrFault> {
        if self.is_full() {
            return Err(MshrFault::Overflow { line: m.line });
        }
        let line = m.line;
        if self.entries.contains_key(&line.0) {
            return Err(MshrFault::DuplicateLine { line });
        }
        self.entries.insert(line.0, m);
        Ok(())
    }

    /// Configured capacity (the lockup-free depth).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.max
    }

    /// Removes and returns the entry for `line` (on completion).
    pub fn complete(&mut self, line: LineAddr) -> Option<Mshr> {
        self.entries.remove(&line.0)
    }

    /// Iterates over outstanding entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &Mshr> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(line: u64, txn: u64) -> Mshr {
        Mshr {
            txn: TxnId(txn),
            line: LineAddr(line),
            exclusive: false,
            prefetch_only: true,
            is_upgrade: false,
            issued_at: 0,
            pending: Vec::new(),
        }
    }

    #[test]
    fn allocate_get_complete() {
        let mut f = MshrFile::new(2);
        assert!(f.is_empty());
        f.allocate(entry(1, 10)).unwrap();
        assert_eq!(f.get(LineAddr(1)).unwrap().txn, TxnId(10));
        assert_eq!(f.len(), 1);
        let done = f.complete(LineAddr(1)).unwrap();
        assert_eq!(done.txn, TxnId(10));
        assert!(f.get(LineAddr(1)).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut f = MshrFile::new(1);
        f.allocate(entry(1, 10)).unwrap();
        assert!(f.is_full());
        assert_eq!(f.capacity(), 1);
    }

    #[test]
    fn overflow_is_a_fault() {
        let mut f = MshrFile::new(1);
        f.allocate(entry(1, 10)).unwrap();
        assert_eq!(
            f.allocate(entry(2, 11)),
            Err(MshrFault::Overflow { line: LineAddr(2) })
        );
    }

    #[test]
    fn duplicate_line_is_a_fault() {
        let mut f = MshrFile::new(2);
        f.allocate(entry(1, 10)).unwrap();
        assert_eq!(
            f.allocate(entry(1, 11)),
            Err(MshrFault::DuplicateLine { line: LineAddr(1) })
        );
        assert_eq!(f.get(LineAddr(1)).unwrap().txn, TxnId(10), "kept original");
    }

    #[test]
    fn merge_flips_prefetch_only() {
        let mut f = MshrFile::new(2);
        f.allocate(entry(1, 10)).unwrap();
        let m = f.get_mut(LineAddr(1)).unwrap();
        assert!(m.prefetch_only);
        m.prefetch_only = false;
        assert!(!f.get(LineAddr(1)).unwrap().prefetch_only);
    }
}
