//! The full-map directory and backing memory (DASH-style [18]).
//!
//! The directory tracks, per line, which caches hold copies and in what
//! capacity, serializes transactions per line, and owns the backing
//! memory image. Timing and message scheduling live in
//! [`crate::system`]; this module is the directory's *state*: pure data
//! structure and bookkeeping, individually testable.

use crate::msg::{ProcId, TxnId};
use mcsim_isa::{Addr, LineAddr, RmwKind};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Sharing state of a line at the directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No cache holds the line; memory is current.
    Uncached,
    /// These caches hold shared (read-only) copies; memory is current.
    Shared(BTreeSet<ProcId>),
    /// This cache holds the line exclusively; its copy may be newer than
    /// memory.
    Owned(ProcId),
}

impl DirState {
    /// Caches whose copies must be invalidated before `requester` may gain
    /// exclusive ownership.
    #[must_use]
    pub fn copies_excluding(&self, requester: ProcId) -> Vec<ProcId> {
        match self {
            DirState::Uncached => Vec::new(),
            DirState::Shared(s) => s.iter().copied().filter(|&p| p != requester).collect(),
            DirState::Owned(o) => {
                if *o == requester {
                    Vec::new()
                } else {
                    vec![*o]
                }
            }
        }
    }

    /// Whether `p` holds a shared copy.
    #[must_use]
    pub fn is_sharer(&self, p: ProcId) -> bool {
        matches!(self, DirState::Shared(s) if s.contains(&p))
    }

    /// Whether `p` owns the line exclusively.
    #[must_use]
    pub fn is_owner(&self, p: ProcId) -> bool {
        matches!(self, DirState::Owned(o) if *o == p)
    }
}

/// Kinds of requests a processor's cache controller sends to the
/// directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read miss: a shared copy, please.
    GetShared,
    /// Write miss or upgrade: exclusive ownership, please (invalidation
    /// protocol only).
    GetExclusive,
    /// Update-protocol write: update memory and all copies.
    UpdateWrite {
        /// Word index within the line.
        word_idx: usize,
        /// New value.
        value: u64,
    },
    /// Update-protocol atomic read-modify-write, performed at the
    /// directory (the serialization point).
    UpdateRmw {
        /// Word index within the line.
        word_idx: usize,
        /// The atomic operation.
        kind: RmwKind,
        /// Operand for the modify step.
        operand: u64,
    },
}

/// A request in flight to (or queued at) the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Requesting processor.
    pub proc: ProcId,
    /// Target line.
    pub line: LineAddr,
    /// What is being asked.
    pub kind: ReqKind,
    /// Transaction id the response must carry.
    pub txn: TxnId,
    /// Launched as a prefetch (stats only).
    pub is_prefetch: bool,
    /// Cycle the processor issued it (queue-delay stats).
    pub issued_at: u64,
}

/// The directory: per-line sharing state, backing memory, per-line
/// serialization, and the arrival queue.
#[derive(Debug)]
pub struct Directory {
    block_words: usize,
    block_bits: u32,
    states: HashMap<u64, DirState>,
    memory: HashMap<u64, Box<[u64]>>,
    busy_until: HashMap<u64, u64>,
    pending: VecDeque<Request>,
    waiters: HashMap<u64, VecDeque<Request>>,
}

impl Directory {
    /// An empty directory for lines of `1 << block_bits` bytes.
    #[must_use]
    pub fn new(block_bits: u32) -> Self {
        Directory {
            block_words: (1usize << block_bits) / 8,
            block_bits,
            states: HashMap::new(),
            memory: HashMap::new(),
            busy_until: HashMap::new(),
            pending: VecDeque::new(),
            waiters: HashMap::new(),
        }
    }

    /// Sharing state of a line (Uncached if never touched).
    #[must_use]
    pub fn state(&self, line: LineAddr) -> DirState {
        self.states
            .get(&line.0)
            .cloned()
            .unwrap_or(DirState::Uncached)
    }

    /// Replaces a line's sharing state.
    pub fn set_state(&mut self, line: LineAddr, s: DirState) {
        if matches!(s, DirState::Uncached) {
            self.states.remove(&line.0);
        } else {
            self.states.insert(line.0, s);
        }
    }

    /// Adds `p` as a sharer (downgrading an owner is the caller's job).
    pub fn add_sharer(&mut self, line: LineAddr, p: ProcId) {
        let st = self.state(line);
        let next = match st {
            DirState::Uncached => DirState::Shared(BTreeSet::from([p])),
            DirState::Shared(mut s) => {
                s.insert(p);
                DirState::Shared(s)
            }
            DirState::Owned(o) => DirState::Shared(BTreeSet::from([o, p])),
        };
        self.set_state(line, next);
    }

    /// Removes `p`'s copy (on replacement). No-op if `p` holds nothing.
    pub fn drop_copy(&mut self, line: LineAddr, p: ProcId) {
        let next = match self.state(line) {
            DirState::Uncached => DirState::Uncached,
            DirState::Shared(mut s) => {
                s.remove(&p);
                if s.is_empty() {
                    DirState::Uncached
                } else {
                    DirState::Shared(s)
                }
            }
            DirState::Owned(o) if o == p => DirState::Uncached,
            owned => owned,
        };
        self.set_state(line, next);
    }

    /// A copy of the line's backing data (zeros if untouched).
    #[must_use]
    pub fn mem_line(&self, line: LineAddr) -> Box<[u64]> {
        self.memory
            .get(&line.0)
            .cloned()
            .unwrap_or_else(|| vec![0; self.block_words].into_boxed_slice())
    }

    /// Overwrites the line's backing data (writeback / flush arrival).
    pub fn write_mem_line(&mut self, line: LineAddr, data: Box<[u64]>) {
        self.memory.insert(line.0, data);
    }

    /// Reads one backing-memory word.
    #[must_use]
    pub fn read_mem_word(&self, addr: Addr) -> u64 {
        let line = addr.line(self.block_bits);
        let word = (addr.offset(self.block_bits) / 8) as usize;
        self.memory.get(&line.0).map_or(0, |d| d[word])
    }

    /// Writes one backing-memory word (update protocol, or initial image).
    pub fn write_mem_word(&mut self, addr: Addr, value: u64) {
        let line = addr.line(self.block_bits);
        let word = (addr.offset(self.block_bits) / 8) as usize;
        let words = self.block_words;
        self.memory
            .entry(line.0)
            .or_insert_with(|| vec![0; words].into_boxed_slice())[word] = value;
    }

    // ----- queueing -----

    /// Enqueues a request that has arrived over the network.
    pub fn push_arrival(&mut self, req: Request) {
        self.pending.push_back(req);
    }

    /// Pops the first serviceable request: the oldest arrival whose line
    /// is not busy at `now`. Arrivals for busy lines are parked per line
    /// and re-queued (in order) when the line frees, so a hot line never
    /// head-of-line-blocks the directory.
    pub fn next_serviceable(&mut self, now: u64) -> Option<Request> {
        while let Some(req) = self.pending.pop_front() {
            if self.busy_until.get(&req.line.0).copied().unwrap_or(0) > now {
                self.waiters.entry(req.line.0).or_default().push_back(req);
            } else {
                return Some(req);
            }
        }
        None
    }

    /// Marks a line busy until `until` (the cycle its response is sent).
    pub fn mark_busy(&mut self, line: LineAddr, until: u64) {
        self.busy_until.insert(line.0, until);
    }

    /// When a line's busy window closes, re-admits its parked requests at
    /// the *front* of the queue (oldest first) so they are serviced before
    /// newer traffic.
    pub fn release_line(&mut self, line: LineAddr) {
        if let Some(mut ws) = self.waiters.remove(&line.0) {
            while let Some(req) = ws.pop_back() {
                self.pending.push_front(req);
            }
        }
    }

    /// Outstanding queue length (pending + parked), for stats.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.pending.len() + self.waiters.values().map(VecDeque::len).sum::<usize>()
    }

    /// Every line the directory has ever tracked (sharing state or
    /// backing data) — the domain of a final-state snapshot.
    #[must_use]
    pub fn known_lines(&self) -> std::collections::BTreeSet<LineAddr> {
        self.states
            .keys()
            .chain(self.memory.keys())
            .map(|&l| LineAddr(l))
            .collect()
    }

    /// Words per line.
    #[must_use]
    pub fn block_words(&self) -> usize {
        self.block_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(proc: ProcId, line: u64, txn: u64) -> Request {
        Request {
            proc,
            line: LineAddr(line),
            kind: ReqKind::GetShared,
            txn: TxnId(txn),
            is_prefetch: false,
            issued_at: 0,
        }
    }

    #[test]
    fn state_transitions() {
        let mut d = Directory::new(6);
        let l = LineAddr(9);
        assert_eq!(d.state(l), DirState::Uncached);
        d.add_sharer(l, 0);
        d.add_sharer(l, 2);
        assert!(d.state(l).is_sharer(0));
        assert!(d.state(l).is_sharer(2));
        assert_eq!(d.state(l).copies_excluding(0), vec![2]);
        d.set_state(l, DirState::Owned(1));
        assert!(d.state(l).is_owner(1));
        assert_eq!(d.state(l).copies_excluding(1), Vec::<ProcId>::new());
        assert_eq!(d.state(l).copies_excluding(0), vec![1]);
        d.drop_copy(l, 1);
        assert_eq!(d.state(l), DirState::Uncached);
    }

    #[test]
    fn drop_last_sharer_goes_uncached() {
        let mut d = Directory::new(6);
        let l = LineAddr(3);
        d.add_sharer(l, 0);
        d.drop_copy(l, 0);
        assert_eq!(d.state(l), DirState::Uncached);
    }

    #[test]
    fn owner_becomes_sharer_on_add() {
        let mut d = Directory::new(6);
        let l = LineAddr(3);
        d.set_state(l, DirState::Owned(1));
        d.add_sharer(l, 0);
        assert!(d.state(l).is_sharer(0));
        assert!(d.state(l).is_sharer(1));
    }

    #[test]
    fn memory_defaults_to_zero() {
        let mut d = Directory::new(6);
        assert_eq!(d.read_mem_word(Addr(0x100)), 0);
        d.write_mem_word(Addr(0x100), 7);
        assert_eq!(d.read_mem_word(Addr(0x100)), 7);
        assert_eq!(d.read_mem_word(Addr(0x108)), 0);
        let line = d.mem_line(Addr(0x100).line(6));
        assert_eq!(line[0], 7);
    }

    #[test]
    fn queue_serves_in_order_skipping_busy_lines() {
        let mut d = Directory::new(6);
        d.push_arrival(req(0, 1, 1));
        d.push_arrival(req(1, 1, 2)); // same line, will be parked
        d.push_arrival(req(2, 9, 3)); // different line
        let first = d.next_serviceable(10).unwrap();
        assert_eq!(first.txn, TxnId(1));
        d.mark_busy(LineAddr(1), 20);
        // txn2 is parked; txn3 is serviceable.
        let second = d.next_serviceable(10).unwrap();
        assert_eq!(second.txn, TxnId(3));
        assert!(d.next_serviceable(10).is_none());
        assert_eq!(d.queue_len(), 1);
        // Line frees: txn2 re-admitted at the front.
        d.release_line(LineAddr(1));
        let third = d.next_serviceable(20).unwrap();
        assert_eq!(third.txn, TxnId(2));
    }

    #[test]
    fn release_preserves_waiter_order() {
        let mut d = Directory::new(6);
        d.mark_busy(LineAddr(1), 100);
        d.push_arrival(req(0, 1, 1));
        d.push_arrival(req(1, 1, 2));
        assert!(d.next_serviceable(0).is_none()); // both parked
        d.release_line(LineAddr(1));
        assert_eq!(d.next_serviceable(100).unwrap().txn, TxnId(1));
        d.mark_busy(LineAddr(1), 200);
        assert!(d.next_serviceable(100).is_none());
    }
}
