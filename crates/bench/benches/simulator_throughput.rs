//! Criterion benches of the simulator's own throughput: simulated cycles
//! and instructions per wall-second on representative workloads. These
//! guard against performance regressions in the simulator implementation
//! (the event heap, the ROB scans, the directory queues).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{array_sweep, critical_sections, CriticalSections};

fn bench_array_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("array_sweep");
    for n in [64usize, 256] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sc_both", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
                let m = Machine::new(cfg, vec![array_sweep(n, false)]);
                let r = m.run();
                assert!(!r.timed_out);
                r.cycles
            });
        });
    }
    g.finish();
}

fn bench_critical_sections(c: &mut Criterion) {
    let mut g = c.benchmark_group("critical_sections");
    for procs in [2usize, 4] {
        let params = CriticalSections {
            procs,
            sections: 4,
            reads: 3,
            writes: 3,
            locks: procs,
            private_regions: true,
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::new("sc_both", procs), &params, |b, p| {
            b.iter(|| {
                let cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
                let m = Machine::new(cfg, critical_sections(p));
                let r = m.run();
                assert!(!r.timed_out);
                r.cycles
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_array_sweep, bench_critical_sections
}
criterion_main!(benches);
