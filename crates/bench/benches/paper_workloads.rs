//! Criterion benches over the paper's own workloads, one per
//! model × technique corner, so the cost of each machinery path
//! (conventional stalls, prefetch unit, speculative-load buffer) is
//! visible in the simulator's wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn bench_examples(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_examples");
    for (model, t) in [
        (Model::Sc, Techniques::NONE),
        (Model::Sc, Techniques::BOTH),
        (Model::Rc, Techniques::NONE),
        (Model::Rc, Techniques::BOTH),
    ] {
        let label = format!("{}_{}", model.name(), t.label());
        g.bench_with_input(
            BenchmarkId::new("example1", &label),
            &(model, t),
            |b, &(model, t)| {
                b.iter(|| {
                    let cfg = MachineConfig::paper_with(model, t);
                    let r = Machine::new(cfg, vec![paper::example1()]).run();
                    assert!(!r.timed_out);
                    r.cycles
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("example2", &label),
            &(model, t),
            |b, &(model, t)| {
                b.iter(|| {
                    let cfg = MachineConfig::paper_with(model, t);
                    let mut m = Machine::new(cfg, vec![paper::example2()]);
                    paper::setup_example2(&mut m);
                    let r = m.run();
                    assert!(!r.timed_out);
                    r.cycles
                });
            },
        );
    }
    g.finish();
}

fn bench_figure5(c: &mut Criterion) {
    c.bench_function("figure5_with_rollback", |b| {
        b.iter(|| {
            let cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
            let mut m = Machine::new(
                cfg,
                vec![paper::figure5_main(), paper::figure5_antagonist(50, 5)],
            );
            paper::setup_figure5(&mut m, 5);
            let r = m.run();
            assert!(!r.timed_out);
            r.cycles
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_examples, bench_figure5
}
criterion_main!(benches);
