//! Machine-loop throughput with and without event-horizon fast-forward.
//!
//! A standalone (`harness = false`) bench binary: the vendored criterion
//! stand-in has no JSON output or baseline support, so this measures by
//! hand — median wall time over a fixed sample count for three workload
//! classes, each run both with skipping enabled and disabled — and speaks
//! the formats CI needs:
//!
//! ```text
//! step_throughput                      # human-readable table
//! step_throughput --json OUT           # write measurements as JSON
//! step_throughput --write-baseline OUT # alias of --json (intent marker)
//! step_throughput --check BASELINE     # fail on >20% median regression
//!                                      # or a miss-dominated speedup < 5x
//! ```
//!
//! The three classes bracket the design space:
//! - `miss_dominated`: a serialized pointer chase — one cold miss at a
//!   time, ~99 of every 100 cycles quiescent; fast-forward's best case.
//! - `hit_dominated`: an array sweep over preloaded lines — every cycle
//!   retires work, so there is nothing to skip; the overhead floor.
//! - `mixed`: contended lock sections — spins, misses and handoffs
//!   interleaved across processors.
//!
//! Every sample also asserts the fast and slow reports serialize
//! identically, so the perf job doubles as an equivalence smoke test.

use std::time::Instant;

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig, RunTelemetry};
use mcsim_isa::Program;
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{self, CriticalSections};
use serde::{Deserialize, Serialize};

/// Wall-time samples per (class, mode) pair; the median is reported.
const SAMPLES: usize = 15;

/// Maximum tolerated median-time regression against the baseline.
const REGRESSION_LIMIT: f64 = 0.20;

/// Required wall-clock leverage on the miss-dominated class.
const MIN_MISS_SPEEDUP: f64 = 5.0;

/// One measured workload class.
#[derive(Debug, Serialize, Deserialize)]
struct ClassResult {
    name: String,
    /// Median wall nanoseconds per run, fast-forward enabled.
    median_ns: u64,
    /// Simulated cycles one run covers (deterministic).
    sim_cycles: u64,
    /// Simulated cycles per wall second at the fast median.
    sim_cycles_per_sec: f64,
    /// Median-time ratio: per-cycle stepping over fast-forwarding.
    wall_speedup: f64,
    /// Cycles the fast run skipped (deterministic).
    skipped_cycles: u64,
}

struct Workload {
    name: &'static str,
    cfg: MachineConfig,
    programs: Vec<Program>,
    mem: Vec<(u64, u64)>,
    /// Lines preloaded shared into processor 0's cache.
    preload: Vec<u64>,
}

fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();

    // Serialized pointer chase against remote (400-cycle) memory: the
    // ratio of quiescent wait to real work is highest here, so this is
    // the class the fast path must pay off on.
    let (chase, mem) = generators::pointer_chase(512, 7);
    let mut cfg = MachineConfig::paper_with(Model::Sc, Techniques::NONE);
    cfg.mem.timings = mcsim_mem::MemTimings::with_miss_latency(400);
    out.push(Workload {
        name: "miss_dominated",
        cfg,
        programs: vec![chase],
        mem: mem.into_iter().collect(),
        preload: Vec::new(),
    });

    // 256 lines exactly fills the paper cache (64 sets x 4 ways), so
    // every access hits without the preload evicting anything.
    let sweep = generators::array_sweep(256, false);
    let preload = (0..256).map(|i| 0x10_000 + i * 64).collect();
    out.push(Workload {
        name: "hit_dominated",
        cfg: MachineConfig::paper_with(Model::Sc, Techniques::NONE),
        programs: vec![sweep],
        mem: Vec::new(),
        preload,
    });

    let params = CriticalSections::default();
    out.push(Workload {
        name: "mixed",
        cfg: MachineConfig::paper_with(Model::Sc, Techniques::BOTH),
        programs: generators::critical_sections(&params),
        mem: Vec::new(),
        preload: Vec::new(),
    });

    out
}

fn build(w: &Workload, fast_forward: bool) -> Machine {
    let mut m = Machine::new(w.cfg, w.programs.clone());
    m.set_fast_forward(fast_forward);
    for &(a, v) in &w.mem {
        m.write_memory(a, v);
    }
    for &a in &w.preload {
        m.preload_cache(0, a, false);
    }
    m
}

/// Median wall nanoseconds over [`SAMPLES`] runs, plus one run's report
/// JSON and telemetry (identical across samples — the machine is
/// deterministic).
fn measure(w: &Workload, fast_forward: bool) -> (u64, String, RunTelemetry) {
    let mut times: Vec<u64> = Vec::with_capacity(SAMPLES);
    let mut exemplar = None;
    for _ in 0..SAMPLES {
        let m = build(w, fast_forward);
        let started = Instant::now();
        let (report, telemetry) = m.run_telemetry();
        let ns = started.elapsed().as_nanos() as u64;
        times.push(ns);
        assert!(
            report.failure.is_none() && !report.timed_out,
            "{}: bench workload must complete cleanly",
            w.name
        );
        exemplar.get_or_insert_with(|| {
            let json = serde_json::to_string(&report).expect("report serializes");
            (json, telemetry)
        });
    }
    times.sort_unstable();
    let (json, telemetry) = exemplar.expect("at least one sample ran");
    (times[times.len() / 2], json, telemetry)
}

fn run_all() -> Vec<ClassResult> {
    workloads()
        .iter()
        .map(|w| {
            let (fast_ns, fast_json, telemetry) = measure(w, true);
            let (slow_ns, slow_json, _) = measure(w, false);
            assert_eq!(
                fast_json, slow_json,
                "{}: fast-forward changed the report",
                w.name
            );
            let sim_cycles = telemetry.stepped_cycles + telemetry.skipped_cycles;
            ClassResult {
                name: w.name.to_string(),
                median_ns: fast_ns,
                sim_cycles,
                sim_cycles_per_sec: sim_cycles as f64 / (fast_ns as f64 / 1e9),
                wall_speedup: slow_ns as f64 / fast_ns as f64,
                skipped_cycles: telemetry.skipped_cycles,
            }
        })
        .collect()
}

fn render(results: &[ClassResult]) {
    println!(
        "{:<16} {:>12} {:>14} {:>16} {:>10}",
        "class", "median", "sim cycles", "sim cycles/s", "speedup"
    );
    for r in results {
        println!(
            "{:<16} {:>10.2}us {:>14} {:>15.2}M {:>9.1}x",
            r.name,
            r.median_ns as f64 / 1e3,
            r.sim_cycles,
            r.sim_cycles_per_sec / 1e6,
            r.wall_speedup
        );
    }
}

fn check(results: &[ClassResult], baseline_path: &str) -> Result<(), String> {
    // Cargo runs bench binaries from the package directory; accept paths
    // relative to the workspace root too so `cargo bench -p mcsim-bench`
    // can name the checked-in baseline directly.
    let mut path = std::path::PathBuf::from(baseline_path);
    if !path.exists() {
        let from_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(baseline_path);
        if from_root.exists() {
            path = from_root;
        }
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let baseline: Vec<ClassResult> =
        serde_json::from_str(&text).map_err(|e| format!("invalid baseline: {e}"))?;
    let mut problems = Vec::new();
    for r in results {
        let Some(b) = baseline.iter().find(|b| b.name == r.name) else {
            problems.push(format!("{}: missing from baseline", r.name));
            continue;
        };
        if r.sim_cycles != b.sim_cycles {
            problems.push(format!(
                "{}: simulated cycles moved {} -> {} (the workload itself changed; \
                 regenerate the baseline deliberately)",
                r.name, b.sim_cycles, r.sim_cycles
            ));
        }
        let ratio = r.median_ns as f64 / b.median_ns as f64;
        if ratio > 1.0 + REGRESSION_LIMIT {
            problems.push(format!(
                "{}: median {}ns vs baseline {}ns (+{:.0}% > {:.0}% budget)",
                r.name,
                r.median_ns,
                b.median_ns,
                (ratio - 1.0) * 100.0,
                REGRESSION_LIMIT * 100.0
            ));
        }
    }
    let miss = results
        .iter()
        .find(|r| r.name == "miss_dominated")
        .ok_or("miss_dominated class missing")?;
    if miss.wall_speedup < MIN_MISS_SPEEDUP {
        problems.push(format!(
            "miss_dominated: fast-forward speedup {:.1}x < required {:.0}x",
            miss.wall_speedup, MIN_MISS_SPEEDUP
        ));
    }
    if problems.is_empty() {
        println!("perf check passed against {baseline_path}");
        Ok(())
    } else {
        Err(format!("perf check failed:\n  {}", problems.join("\n  ")))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Under `cargo bench` the harness is handed flags like `--bench`;
    // ignore anything we don't own.
    let mut json_out = None;
    let mut check_against = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" | "--write-baseline" => json_out = it.next().cloned(),
            "--check" => check_against = it.next().cloned(),
            _ => {}
        }
    }

    let results = run_all();
    render(&results);

    if let Some(path) = json_out {
        let text = serde_json::to_string_pretty(&results).expect("results serialize");
        std::fs::write(&path, text + "\n").unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
    if let Some(path) = check_against {
        if let Err(msg) = check(&results, &path) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
    }
}
