//! Criterion bench of the sweep engine itself: the full E6 equalization
//! grid (48 points) executed end to end at 1, 2 and 4 workers. On a
//! multicore host the wall time should drop near-linearly with workers
//! while the produced rows stay bit-identical; on a single core the
//! worker counts should tie, bounding the engine's threading overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcsim_sweep::builtin::e6_equalization;
use mcsim_sweep::{run_sweep, ExecOptions};

fn bench_e6_grid(c: &mut Criterion) {
    let spec = e6_equalization();
    let mut g = c.benchmark_group("sweep_e6");
    g.throughput(Throughput::Elements(spec.len() as u64));
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let run = run_sweep(
                    &spec,
                    &ExecOptions {
                        jobs,
                        progress: false,
                        ..ExecOptions::default()
                    },
                )
                .expect("built-in spec is valid");
                assert!(run.result.failures().is_empty());
                run.result.rows.len()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_e6_grid
}
criterion_main!(benches);
