//! # mcsim-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig1_ordering_rules` | Figure 1 — delay-arc tables per model |
//! | `fig2_example1` | Figure 2 + §3.3 producer cycle counts |
//! | `fig2_example2` | Figure 2 + §3.3/§4.1 consumer cycle counts |
//! | `fig34_organization` | Figures 3–4 — machine organization dump |
//! | `fig5_trace` | Figure 5 — the event walk-through |
//! | `breakdown` | §5 — per-cause execution-time breakdowns (CPI stacks) |
//! | `equalization` | §5 — model equalization on synthetic workloads |
//! | `speculation_violations` | §5 — rollback rates under contention |
//! | `prefetch_limits` | §3.3 — where prefetch fails and speculation wins |
//! | `update_vs_invalidate` | §3.1 — write prefetch needs invalidations |
//! | `adve_hill` | §6 — comparison against Adve–Hill early grants |
//! | `rmw_appendix` | Appendix A — split RMWs under lock contention |
//! | `latency_sweep` | sensitivity: miss latency 20–400 |
//! | `window_sweep` | §3.2 — lookahead (ROB size) sensitivity |
//!
//! Criterion benches (`benches/`) measure the *simulator's* throughput so
//! regressions in the implementation itself are visible.

use mcsim_core::{MachineConfig, MatrixRow};

/// Renders rows as a markdown table (used by the figure binaries so the
/// output can be pasted into EXPERIMENTS.md verbatim). Thin wrapper over
/// the generalized renderer in `mcsim-sweep`, kept for the binaries that
/// still drive `run_matrix` directly.
#[must_use]
pub fn markdown_table(rows: &[MatrixRow]) -> String {
    mcsim_sweep::markdown_table(rows)
}

/// Worker-thread count from a `--jobs N` command-line argument
/// (defaults to 1; experiment output is identical at any value).
#[must_use]
pub fn jobs_from_args() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                return n;
            }
            eprintln!("--jobs expects a number; using 1");
        }
    }
    1
}

/// The standard paper-calibrated base configuration used by the figure
/// binaries.
#[must_use]
pub fn base_config() -> MachineConfig {
    MachineConfig::paper()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_consistency::Model;
    use mcsim_core::run_matrix;
    use mcsim_isa::ProgramBuilder;
    use mcsim_proc::Techniques;

    #[test]
    fn markdown_table_shape() {
        let rows = run_matrix(
            &base_config(),
            &[Model::Sc],
            &[Techniques::NONE, Techniques::BOTH],
            || {
                vec![ProgramBuilder::new("w")
                    .store(0x1000u64, 1u64)
                    .halt()
                    .build()
                    .unwrap()]
            },
            |_| {},
        )
        .expect("no cell fails");
        let t = markdown_table(&rows);
        assert!(t.starts_with("| model |"));
        assert!(t.contains("| SC |"));
    }
}
