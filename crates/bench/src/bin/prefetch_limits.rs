//! E8 — §3.3's prefetch limitation, generalized: chains where cache-hit
//! values gate the addresses of later misses. Prefetching pipelines the
//! misses but cannot consume hit values out of order; speculation can.

use mcsim_bench::base_config;
use mcsim_consistency::Model;
use mcsim_core::{format_table, run_matrix};
use mcsim_proc::Techniques;
use mcsim_workloads::generators::hit_dependence_chain;

fn main() {
    for (groups, misses) in [(4usize, 1usize), (4, 2), (4, 4), (8, 2)] {
        let rows = run_matrix(
            &base_config(),
            &[Model::Sc, Model::Rc],
            &Techniques::ALL,
            || {
                let (p, _, _) = hit_dependence_chain(groups, misses);
                vec![p]
            },
            |m| {
                let (_, mem, preload) = hit_dependence_chain(groups, misses);
                for (a, v) in &mem {
                    m.write_memory(*a, *v);
                }
                for a in preload {
                    m.preload_cache(0, a, false);
                }
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        println!(
            "{}",
            format_table(
                &format!("hit-dependence chain — {groups} groups x {misses} misses + 1 hit + 1 dependent"),
                &rows
            )
        );
    }
    println!("shape to expect: prefetch alone barely helps (hit values still consumed");
    println!("in order); speculation restores the pipelining — the Example 2 effect.");
}
