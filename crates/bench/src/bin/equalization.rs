//! E6 — the §5 equalization claim on synthetic critical-section
//! workloads: with both techniques on, the performance of all four
//! consistency models converges.

use mcsim_bench::{base_config, markdown_table};
use mcsim_consistency::Model;
use mcsim_core::{format_table, model_spread, run_matrix};
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{critical_sections, CriticalSections};

fn main() {
    for (label, params) in [
        (
            "uncontended (2 procs, private locks)",
            CriticalSections {
                procs: 2,
                locks: 2,
                sections: 4,
                reads: 3,
                writes: 3,
                ..Default::default()
            },
        ),
        (
            "contended (4 procs, one lock)",
            CriticalSections {
                procs: 4,
                locks: 1,
                sections: 3,
                reads: 2,
                writes: 2,
                ..Default::default()
            },
        ),
        (
            "mixed (4 procs, 2 locks, think time)",
            CriticalSections {
                procs: 4,
                locks: 2,
                sections: 3,
                reads: 3,
                writes: 2,
                think: 40,
                ..Default::default()
            },
        ),
    ] {
        let rows = run_matrix(
            &base_config(),
            &Model::ALL,
            &Techniques::ALL,
            || critical_sections(&params),
            |_| {},
        );
        println!(
            "{}",
            format_table(&format!("critical sections — {label}"), &rows)
        );
        println!("{}", markdown_table(&rows));
        for t in Techniques::ALL {
            println!(
                "  model spread under {:<8}: {:.1}%",
                t.label(),
                model_spread(&rows, t) * 100.0
            );
        }
        println!();
    }
}
