//! E6 — the §5 equalization claim on synthetic critical-section
//! workloads: with both techniques on, the performance of all four
//! consistency models converges.
//!
//! Runs the `e6-equalization` built-in sweep; `--jobs N` fans the grid
//! across worker threads (rows are bit-identical to a serial run).

use mcsim_bench::jobs_from_args;
use mcsim_proc::Techniques;
use mcsim_sweep::builtin::e6_equalization;
use mcsim_sweep::{
    format_table, markdown_table, model_spread, run_sweep, ExecOptions, PointRecord,
};

fn main() {
    let spec = e6_equalization();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            jobs: jobs_from_args(),
            ..ExecOptions::default()
        },
    )
    .expect("built-in spec is valid");

    for workload in &spec.workloads {
        let label = workload.label();
        let rows: Vec<&PointRecord> = run
            .result
            .rows
            .iter()
            .filter(|r| r.workload == label)
            .collect();
        println!(
            "{}",
            format_table(&format!("critical sections — {label}"), &rows)
        );
        println!("{}", markdown_table(&rows));
        for t in Techniques::ALL {
            println!(
                "  model spread under {:<8}: {:.1}%",
                t.label(),
                model_spread(&rows, t) * 100.0
            );
        }
        println!();
    }
}
