//! E11 — Appendix A: atomic read-modify-writes split into a speculative
//! read-exclusive load plus a buffered atomic. N processors hammer one
//! lock-protected counter; atomicity must hold and the split must not
//! cost correctness under any model.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_isa::reg::{R1, R2};
use mcsim_isa::ProgramBuilder;
use mcsim_proc::Techniques;

const LOCK: u64 = 0x40;
const COUNTER: u64 = 0x1000;

fn worker(increments: usize) -> mcsim_isa::Program {
    let mut b = ProgramBuilder::new("incr");
    for _ in 0..increments {
        b = b
            .lock(LOCK, R1)
            .load(R2, COUNTER)
            .alu(R2, mcsim_isa::AluOp::Add, R2, 1u64)
            .store(COUNTER, R2)
            .unlock(LOCK);
    }
    b.halt().build().unwrap()
}

fn main() {
    println!("lock-contended counter, 3 increments each (cycles / rollbacks)\n");
    println!(
        "{:<6} {:<9} {:>4} procs: {:>9} {:>9}",
        "model", "technique", 2, "cycles", "rollbacks"
    );
    for model in Model::ALL {
        for t in [Techniques::NONE, Techniques::BOTH] {
            for procs in [2usize, 4] {
                let cfg = MachineConfig::paper_with(model, t);
                let mut m = Machine::new(cfg, (0..procs).map(|_| worker(3)).collect());
                m.write_memory(COUNTER, 0);
                let r = m.run();
                assert!(!r.timed_out);
                assert_eq!(
                    r.mem_word(COUNTER),
                    (procs * 3) as u64,
                    "atomicity violated under {model}/{t}"
                );
                println!(
                    "{:<6} {:<9} {:>4} procs  {:>9} {:>9}",
                    model.name(),
                    t.label(),
                    procs,
                    r.cycles,
                    r.total.rollbacks
                );
            }
        }
    }
    println!("\nthe counter always reads procs x 3: the split RMW stays atomic.");
}
