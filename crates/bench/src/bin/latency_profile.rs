//! Latency-distribution profile: where the techniques move time. Prints
//! issue-to-perform histograms for loads and stores on the consumer
//! workload, conventional vs full-technique, under SC.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::stats::LatencyHistogram;
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{critical_sections, CriticalSections};

fn bar(h: &LatencyHistogram) -> String {
    use std::fmt::Write as _;
    let total = h.count().max(1);
    let mut out = String::new();
    for (lo, c) in h.nonzero() {
        let pct = c as f64 / total as f64 * 100.0;
        let _ = writeln!(
            out,
            "      >= {lo:>5} cycles: {c:>5} ({pct:>5.1}%) {}",
            "#".repeat((pct / 2.0).round() as usize)
        );
    }
    out
}

fn main() {
    let params = CriticalSections {
        procs: 2,
        sections: 6,
        reads: 4,
        writes: 4,
        locks: 2,
        private_regions: true,
        ..Default::default()
    };
    for t in [Techniques::NONE, Techniques::BOTH] {
        let cfg = MachineConfig::paper_with(Model::Sc, t);
        let r = Machine::new(cfg, critical_sections(&params)).run();
        assert!(!r.timed_out);
        println!("== SC / {} — {} cycles ==", t.label(), r.cycles);
        println!(
            "  demand-load latency ({} samples):",
            r.total.load_latency.count()
        );
        print!("{}", bar(&r.total.load_latency));
        println!(
            "  store latency ({} samples):",
            r.total.store_latency.count()
        );
        print!("{}", bar(&r.total.store_latency));
        println!();
    }
    println!("the techniques shift store mass from the ~128-cycle miss bucket into");
    println!("the 1-2 cycle bucket (prefetched ownership) and overlap load misses.");
}
