//! E — §5 per-cause execution-time breakdowns (CPI stacks) for the
//! Figure 2 examples: every model × technique cell's cycles split into
//! busy time and read / write / acquire / rollback / fetch stall
//! components, normalized to conventional SC = 100 the way the paper's
//! Section 5 bar charts are drawn. Also prints the stacked-bar view of
//! the walk-through cells (SC base 301, RC base 202, SC pf+spec).

use mcsim_bench::base_config;
use mcsim_consistency::Model;
use mcsim_core::{render_breakdown, run_matrix, MatrixRow};
use mcsim_proc::Techniques;
use mcsim_workloads::paper;
use std::fmt::Write as _;

/// Markdown table of per-cause components, each expressed in normalized
/// execution-time units (SC base = 100), so component columns of a row
/// sum to its `norm` column exactly as the paper's stacked bars do.
fn breakdown_table(title: &str, rows: &[MatrixRow]) -> String {
    let sc_base = rows
        .iter()
        .find(|r| r.model == Model::Sc && r.techniques == Techniques::NONE)
        .map(|r| r.cycles)
        .expect("matrix includes the SC/base normalization cell");
    let mut out = String::new();
    let _ = writeln!(out, "{title} (normalized to SC base = 100)");
    let _ = writeln!(
        out,
        "| model | techniques | cycles | norm | busy | read | write | acquire | rollback | fetch |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
    for r in rows {
        let b = &r.report.total.breakdown;
        let norm = |c: u64| c as f64 * 100.0 / sc_base as f64;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.model.name(),
            r.techniques.label(),
            r.cycles,
            norm(b.total()),
            norm(b.busy),
            norm(b.read_stall),
            norm(b.write_stall),
            norm(b.acquire_stall),
            norm(b.rollback_stall),
            norm(b.fetch_stall),
        );
    }
    out
}

fn matrix_for(workload: &'static str) -> Vec<MatrixRow> {
    run_matrix(
        &base_config(),
        &Model::ALL,
        &Techniques::ALL,
        move || match workload {
            "example1" => vec![paper::example1()],
            _ => vec![paper::example2()],
        },
        |m| {
            if workload == "example2" {
                paper::setup_example2(m);
            }
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    })
}

fn main() {
    let ex1 = matrix_for("example1");
    println!(
        "{}",
        breakdown_table("Figure 2 / Example 1 — producer", &ex1)
    );
    let ex2 = matrix_for("example2");
    println!(
        "{}",
        breakdown_table("Figure 2 / Example 2 — consumer", &ex2)
    );
    for (m, t) in [
        (Model::Sc, Techniques::NONE),
        (Model::Rc, Techniques::NONE),
        (Model::Sc, Techniques::BOTH),
    ] {
        let row = ex1
            .iter()
            .find(|r| r.model == m && r.techniques == t)
            .expect("cell present");
        println!("Example 1, {} / {}:", m.name(), t.label());
        print!("{}", render_breakdown(&row.report, 60));
        println!();
    }
    println!("paper: SC base spends 2 of its 3 miss latencies stalled on writes");
    println!("(A and B) and the third on the lock RMW; the techniques convert");
    println!("those serial stalls into a single overlapped miss.");
}
