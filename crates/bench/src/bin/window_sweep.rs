//! E13 — §3.2: "lookahead in the instruction stream is beneficial": the
//! techniques only see accesses inside the reorder-buffer window, so
//! shrinking it caps how much latency they can hide.
//!
//! Runs the `e13-window` built-in sweep; `--jobs N` parallelizes it.

use mcsim_bench::jobs_from_args;
use mcsim_sweep::builtin::e13_window;
use mcsim_sweep::{run_sweep, ExecOptions, Window};

fn main() {
    let spec = e13_window();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            jobs: jobs_from_args(),
            ..ExecOptions::default()
        },
    )
    .expect("built-in spec is valid");

    println!("16-line store sweep under SC with both techniques: cycles vs window\n");
    println!("{:>10} {:>12} {:>8}", "rob size", "fetch width", "cycles");
    for row in &run.result.rows {
        let cycles = row
            .outcome
            .cycles()
            .unwrap_or_else(|| panic!("point {} failed: {:?}", row.index, row.outcome));
        match row.window {
            Window::Finite { rob, fetch } => {
                println!("{rob:>10} {fetch:>12} {cycles:>8}");
            }
            Window::Ideal => {
                println!("{:>10} {:>12} {cycles:>8}", "ideal", "ideal");
            }
        }
    }
}
