//! E13 — §3.2: "lookahead in the instruction stream is beneficial": the
//! techniques only see accesses inside the reorder-buffer window, so
//! shrinking it caps how much latency they can hide.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::{ProcConfig, Techniques};
use mcsim_workloads::generators::array_sweep;

fn main() {
    println!("16-line store sweep under SC with both techniques: cycles vs window\n");
    println!("{:>10} {:>12} {:>8}", "rob size", "fetch width", "cycles");
    for (rob, width) in [(4usize, 1usize), (8, 2), (16, 4), (32, 4), (64, 8)] {
        let mut cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
        cfg.proc = ProcConfig::with_window(Techniques::BOTH, rob, width);
        let m = Machine::new(cfg, vec![array_sweep(16, true)]);
        let r = m.run();
        assert!(!r.timed_out);
        println!("{:>10} {:>12} {:>8}", rob, width, r.cycles);
    }
    let mut cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
    cfg.proc = ProcConfig::paper(Techniques::BOTH);
    let r = Machine::new(cfg, vec![array_sweep(16, true)]).run();
    println!("{:>10} {:>12} {:>8}", "ideal", "ideal", r.cycles);
}
