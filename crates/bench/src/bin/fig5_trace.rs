//! E5 — Figure 5: the illustrative execution with a mid-flight
//! invalidation of D, printed as an event walk (the golden-sequence
//! assertions live in `tests/figure5_trace.rs`).

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::core::EventKind;
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn main() {
    let mut cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let new_d = 5;
    let mut m = Machine::new(
        cfg,
        vec![paper::figure5_main(), paper::figure5_antagonist(50, new_d)],
    );
    paper::setup_figure5(&mut m, new_d);
    let report = m.run();
    println!("Figure 5 — SC, speculative loads + prefetch for stores");
    println!("code: read A (dirty remote); write B; write C; read D (hit); read E[D]");
    println!("antagonist: processor 1 writes D ≈ cycle 150 (invalidation)\n");
    for e in &report.traces[0] {
        let what = match &e.kind {
            EventKind::LoadIssued {
                addr,
                outcome,
                speculative,
            } => {
                format!(
                    "load  {addr:<9} issued ({outcome:?}{})",
                    if *speculative { ", speculative" } else { "" }
                )
            }
            EventKind::StoreIssued { addr, outcome } => {
                format!("store {addr:<9} issued ({outcome:?})")
            }
            EventKind::PrefetchIssued { addr, exclusive } => {
                format!(
                    "{} prefetch {addr}",
                    if *exclusive { "read-ex" } else { "read" }
                )
            }
            EventKind::Performed { addr } => format!("access {addr:<8} performed"),
            EventKind::StoreReleased => "store released by reorder buffer".into(),
            EventKind::SpecRetired => "speculative-load entry retired".into(),
            EventKind::Rollback { line, squashed } => {
                format!("INVALIDATION matched {line}: rollback, {squashed} instrs discarded & refetched")
            }
            EventKind::Reissue { line } => format!("invalidation matched {line}: load reissued"),
            EventKind::RmwPartialRollback { line } => {
                format!("match on issued RMW {line}: tail discarded")
            }
            EventKind::BranchMispredicted => "branch mispredicted".into(),
            EventKind::HaltCommitted => "halt committed".into(),
        };
        println!("cycle {:>4}  [pc {:>2}] {}", e.cycle, e.pc, what);
    }
    println!();
    print!("{}", mcsim_core::render_timeline(&report.traces, 76));
    println!(
        "\ntotal: {} cycles, {} rollback(s)",
        report.cycles, report.total.rollbacks
    );
    println!(
        "final: D = {}, E[D] = {:#x}",
        report.reg(0, mcsim_isa::reg::R3),
        report.reg(0, mcsim_isa::reg::R4)
    );
}
