//! E5 — Figure 5: the illustrative execution with a mid-flight
//! invalidation of D, printed as an event walk plus the buffer-occupancy
//! timeline (the golden-file assertions live in `tests/figure5_trace.rs`).

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::Techniques;
use mcsim_trace::{fig5, TraceFilter};
use mcsim_workloads::paper;

fn main() {
    let mut cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
    cfg.trace = true;
    let new_d = 5;
    let mut m = Machine::new(
        cfg,
        vec![paper::figure5_main(), paper::figure5_antagonist(50, new_d)],
    );
    paper::setup_figure5(&mut m, new_d);
    let report = m.run();
    println!("Figure 5 — SC, speculative loads + prefetch for stores");
    println!("code: read A (dirty remote); write B; write C; read D (hit); read E[D]");
    println!("antagonist: processor 1 writes D ≈ cycle 150 (invalidation)\n");
    let filter = TraceFilter {
        proc: Some(0),
        ..TraceFilter::default()
    };
    for e in filter.apply(&report.trace) {
        let pc = e.pc.map_or_else(|| "  ".into(), |pc| format!("{pc:>2}"));
        println!("cycle {:>4}  [pc {pc}] {}", e.cycle, e.kind);
    }
    println!();
    print!("{}", fig5::render(&report.trace, &filter));
    println!();
    print!("{}", mcsim_core::render_timeline(&report.trace, 76));
    println!(
        "\ntotal: {} cycles, {} rollback(s)",
        report.cycles, report.total.rollbacks
    );
    println!(
        "final: D = {}, E[D] = {:#x}",
        report.reg(0, mcsim_isa::reg::R3),
        report.reg(0, mcsim_isa::reg::R4)
    );
}
