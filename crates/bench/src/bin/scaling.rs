//! Processor-count scaling: private-region critical sections from 1 to
//! 12 processors. With disjoint data the directory pipelines requests
//! from all cores, so total time should stay roughly flat (each core's
//! latency is hidden independently) — the large-scale-machine story of
//! §1 — until directory bandwidth (1 transaction/cycle) saturates.
//!
//! Runs the `e17-scaling` built-in sweep; `--jobs N` parallelizes it.

use mcsim_bench::jobs_from_args;
use mcsim_consistency::Model;
use mcsim_proc::Techniques;
use mcsim_sweep::builtin::e17_scaling;
use mcsim_sweep::{run_sweep, ExecOptions, PointRecord};

fn main() {
    let spec = e17_scaling();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            jobs: jobs_from_args(),
            ..ExecOptions::default()
        },
    )
    .expect("built-in spec is valid");

    println!("private critical sections, 4 sections x (3 loads + 3 stores) per proc\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "procs", "SC base", "SC both", "RC base", "dir queue cyc"
    );
    for workload in &spec.workloads {
        let label = workload.label();
        let rows: Vec<&PointRecord> = run
            .result
            .rows
            .iter()
            .filter(|r| r.workload == label)
            .collect();
        let find = |m: Model, t: Techniques| {
            rows.iter()
                .find(|r| r.model == m && r.techniques == t)
                .and_then(|r| r.outcome.metrics())
                .unwrap_or_else(|| panic!("{label} {m}/{t} failed"))
        };
        let sc_base = find(Model::Sc, Techniques::NONE);
        let sc_both = find(Model::Sc, Techniques::BOTH);
        let rc_base = find(Model::Rc, Techniques::NONE);
        let procs = label.trim_end_matches(" procs");
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12}",
            procs, sc_base.cycles, sc_both.cycles, rc_base.cycles, sc_both.dir_queue_cycles,
        );
    }
    println!("\nflat columns = perfect scaling (disjoint data, pipelined directory);");
    println!("rising dir-queue cycles show where the single-ported directory begins");
    println!("to serialize independent processors.");
}
