//! Processor-count scaling: private-region critical sections from 1 to
//! 12 processors. With disjoint data the directory pipelines requests
//! from all cores, so total time should stay roughly flat (each core's
//! latency is hidden independently) — the large-scale-machine story of
//! §1 — until directory bandwidth (1 transaction/cycle) saturates.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{critical_sections, CriticalSections};

fn main() {
    println!("private critical sections, 4 sections x (3 loads + 3 stores) per proc\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "procs", "SC base", "SC both", "RC base", "dir queue cyc"
    );
    for procs in [1usize, 2, 4, 8, 12] {
        let params = CriticalSections {
            procs,
            sections: 4,
            reads: 3,
            writes: 3,
            locks: procs,
            private_regions: true,
            ..Default::default()
        };
        let run = |model: Model, t: Techniques| {
            let cfg = MachineConfig::paper_with(model, t);
            let r = Machine::new(cfg, critical_sections(&params)).run();
            assert!(!r.timed_out);
            r
        };
        let sc_base = run(Model::Sc, Techniques::NONE);
        let sc_both = run(Model::Sc, Techniques::BOTH);
        let rc_base = run(Model::Rc, Techniques::NONE);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12}",
            procs, sc_base.cycles, sc_both.cycles, rc_base.cycles, sc_both.mem.dir_queue_cycles,
        );
    }
    println!("\nflat columns = perfect scaling (disjoint data, pipelined directory);");
    println!("rising dir-queue cycles show where the single-ported directory begins");
    println!("to serialize independent processors.");
}
