//! E10 — §6 related work: Adve & Hill's SC implementation stalls writes
//! only until ownership is gained (early grant). The paper predicts
//! limited gains — ownership latency is close to completion latency and
//! reads are not helped at all — while prefetch + speculation attack
//! both.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn run(label: &str, early: bool, t: Techniques, shared_reader: bool) -> u64 {
    let mut cfg = MachineConfig::paper_with(Model::Sc, t);
    cfg.mem.early_grant_writes = early;
    let programs = if shared_reader {
        vec![paper::example1(), sharer_program()]
    } else {
        vec![paper::example1()]
    };
    let mut m = Machine::new(cfg, programs);
    if shared_reader {
        // Processor 1 holds shared copies of A and B, so processor 0's
        // writes must invalidate — the case early grants actually help.
        m.preload_cache(1, paper::A, false);
        m.preload_cache(1, paper::B, false);
    }
    let r = m.run();
    assert!(!r.timed_out, "{label}");
    r.cycles
}

fn sharer_program() -> mcsim_isa::Program {
    mcsim_isa::ProgramBuilder::new("sharer")
        .halt()
        .build()
        .unwrap()
}

fn main() {
    println!("Example 1 producer under SC (cycles)\n");
    println!("{:<46} {:>8}", "configuration", "cycles");
    for shared in [false, true] {
        let tag = if shared {
            " (lines shared by a reader)"
        } else {
            ""
        };
        println!(
            "{:<46} {:>8}",
            format!("conventional SC{tag}"),
            run("conv", false, Techniques::NONE, shared)
        );
        println!(
            "{:<46} {:>8}",
            format!("Adve-Hill early ownership grant{tag}"),
            run("ah", true, Techniques::NONE, shared)
        );
        println!(
            "{:<46} {:>8}",
            format!("prefetch + speculation{tag}"),
            run("both", false, Techniques::BOTH, shared)
        );
        println!();
    }
    println!("expected shape (§6): early grants shave only the invalidation round");
    println!("trip off writes and never help reads; the paper's techniques overlap");
    println!("nearly the whole latency of both.");
}
