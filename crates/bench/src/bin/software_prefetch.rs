//! E14 (extension) — §6: hardware- vs software-controlled non-binding
//! prefetch. Hardware prefetching is limited to the instruction-lookahead
//! window; software prefetch instructions can run arbitrarily far ahead.
//! With a small reorder buffer the difference is dramatic; with an ideal
//! window the two converge — "it should be possible to combine [them]
//! such that they complement one another."

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_isa::reg::R1;
use mcsim_isa::{Program, ProgramBuilder};
use mcsim_proc::{ProcConfig, Techniques};

const LINES: usize = 24;
const BASE: u64 = 0x10_000;

/// A store sweep with software read-exclusive prefetches hoisted `dist`
/// iterations ahead of the stores.
fn sweep_with_sw_prefetch(dist: usize) -> Program {
    let mut b = ProgramBuilder::new("sw-pf-sweep");
    // Prologue: prefetch the first `dist` lines.
    for i in 0..dist.min(LINES) {
        b = b.prefetch(BASE + (i as u64) * 64, true);
    }
    for i in 0..LINES {
        if i + dist < LINES {
            b = b.prefetch(BASE + ((i + dist) as u64) * 64, true);
        }
        b = b.store(BASE + (i as u64) * 64, i as u64);
    }
    b.halt().build().unwrap()
}

fn sweep_plain() -> Program {
    let mut b = ProgramBuilder::new("plain-sweep");
    for i in 0..LINES {
        b = b.store(BASE + (i as u64) * 64, i as u64);
    }
    b.halt().build().unwrap()
}

fn run(program: Program, rob: Option<usize>, hw_prefetch: bool) -> u64 {
    let t = if hw_prefetch {
        Techniques::PREFETCH
    } else {
        Techniques::NONE
    };
    let mut cfg = MachineConfig::paper_with(Model::Sc, t);
    if let Some(rob) = rob {
        cfg.proc = ProcConfig::with_window(t, rob, 4);
    }
    let r = Machine::new(cfg, vec![program]).run();
    assert!(!r.timed_out);
    assert_eq!(r.mem_word(BASE + 64), 1, "sweep stored its data");
    let _ = R1;
    r.cycles
}

fn main() {
    println!("{LINES}-line store sweep under SC (cycles)\n");
    println!(
        "{:<44} {:>10} {:>10}",
        "configuration", "rob = 8", "ideal rob"
    );
    println!(
        "{:<44} {:>10} {:>10}",
        "no prefetching",
        run(sweep_plain(), Some(8), false),
        run(sweep_plain(), None, false)
    );
    println!(
        "{:<44} {:>10} {:>10}",
        "hardware prefetch (window-limited)",
        run(sweep_plain(), Some(8), true),
        run(sweep_plain(), None, true)
    );
    for dist in [4usize, 16, 24] {
        println!(
            "{:<44} {:>10} {:>10}",
            format!("software prefetch, distance {dist}"),
            run(sweep_with_sw_prefetch(dist), Some(8), false),
            run(sweep_with_sw_prefetch(dist), None, false)
        );
    }
    println!();
    println!("with an 8-entry window the hardware prefetcher can only see a couple");
    println!("of delayed stores at a time; software prefetches hoisted far enough");
    println!("ahead recover the pipelining — the §6 trade-off, measured.");
}
