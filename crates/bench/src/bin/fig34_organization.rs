//! E4 — Figures 3 and 4: the simulated machine organization. Prints the
//! configured structure of the dynamically scheduled processor and its
//! load/store unit, the way the paper's block diagrams lay them out.

use mcsim_core::MachineConfig;

fn main() {
    let cfg = MachineConfig::paper();
    let t = cfg.mem.timings;
    println!("Figure 3 — processor organization (simulated)");
    println!(
        "  instruction fetch : {} + branch target buffer (2-bit counters,",
        match cfg.proc.fetch_width {
            None => "ideal width".to_string(),
            Some(w) => format!("{w}-wide"),
        }
    );
    println!("                      static .t/.nt hints, BTFNT cold heuristic)");
    println!(
        "  reorder buffer    : {} entries (register renaming, precise interrupts,",
        cfg.proc.rob_size
    );
    println!("                      squash machinery shared by branches and spec loads)");
    println!("  functional units  : ALU (configurable latency), branch resolve,");
    println!("                      load/store unit (below)");
    println!();
    println!("Figure 4 — load/store unit organization (simulated)");
    println!("  address unit      : in-order effective-address computation,");
    println!(
        "                      {}-cycle address calculation",
        cfg.proc.addr_calc_latency
    );
    println!("  store buffer      : FIFO; issue gated by ROB-head release +");
    println!("                      per-model delay arcs; SC/PC retire-at-completion");
    println!("  speculative-load  : fields per entry: load address (line), acq,");
    println!("    buffer            done, store tag; FIFO retirement; associative");
    println!("                      match on invalidations/updates/replacements");
    println!("  prefetch unit     : read / read-exclusive, cache-probe filtered,");
    println!("                      one per free port cycle");
    println!();
    println!("memory system");
    println!(
        "  caches            : {} sets x {} ways x {}B lines, lockup-free",
        cfg.mem.cache.sets,
        cfg.mem.cache.ways,
        1u64 << cfg.mem.cache.block_bits
    );
    println!(
        "  MSHRs             : {} per processor (demand merging)",
        cfg.mem.mshrs
    );
    println!(
        "  protocol          : {:?}, full-map directory, per-line serialization",
        cfg.mem.protocol
    );
    println!(
        "  timings           : hit {}, clean miss {} ({}+{}+{}), remote {}",
        t.hit,
        t.clean_miss(),
        t.hop,
        t.svc,
        t.hop,
        t.remote_miss()
    );
}
