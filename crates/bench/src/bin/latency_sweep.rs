//! E12 — miss-latency sensitivity: the techniques' benefit grows with
//! the latency they hide (the paper's large-scale-machine motivation).

use mcsim_consistency::Model;
use mcsim_core::{run_matrix, MachineConfig};
use mcsim_mem::MemTimings;
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn main() {
    println!("Example 2 consumer: cycles vs clean-miss latency\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "miss", "SC base", "SC both", "RC base", "RC both", "SC speedup"
    );
    for miss in [20u64, 50, 100, 200, 400] {
        let mut base = MachineConfig::paper();
        base.mem.timings = MemTimings::with_miss_latency(miss);
        let rows = run_matrix(
            &base,
            &[Model::Sc, Model::Rc],
            &[Techniques::NONE, Techniques::BOTH],
            || vec![paper::example2()],
            paper::setup_example2,
        );
        let get = |m: Model, t: Techniques| {
            rows.iter()
                .find(|r| r.model == m && r.techniques == t)
                .unwrap()
                .cycles
        };
        let (sb, sx) = (
            get(Model::Sc, Techniques::NONE),
            get(Model::Sc, Techniques::BOTH),
        );
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9.2}x",
            miss,
            sb,
            sx,
            get(Model::Rc, Techniques::NONE),
            get(Model::Rc, Techniques::BOTH),
            sb as f64 / sx as f64
        );
    }
}
