//! E12 — miss-latency sensitivity: the techniques' benefit grows with
//! the latency they hide (the paper's large-scale-machine motivation).
//!
//! Runs the `e12-latency` built-in sweep; `--jobs N` parallelizes it.

use mcsim_bench::jobs_from_args;
use mcsim_consistency::Model;
use mcsim_proc::Techniques;
use mcsim_sweep::builtin::e12_latency;
use mcsim_sweep::{run_sweep, ExecOptions, PointRecord, SweepResult};

fn main() {
    let spec = e12_latency();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            jobs: jobs_from_args(),
            ..ExecOptions::default()
        },
    )
    .expect("built-in spec is valid");

    println!("Example 2 consumer: cycles vs clean-miss latency\n");
    println!(
        "{:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "miss", "SC base", "SC both", "RC base", "RC both", "SC speedup"
    );
    for &miss in &spec.machine.miss_latency {
        let rows: Vec<&PointRecord> = run
            .result
            .rows
            .iter()
            .filter(|r| r.miss_latency == miss)
            .collect();
        let get =
            |m: Model, t: Techniques| SweepResult::cycles_of(&rows, m, t).expect("cell completed");
        let (sb, sx) = (
            get(Model::Sc, Techniques::NONE),
            get(Model::Sc, Techniques::BOTH),
        );
        println!(
            "{:>8} {:>9} {:>9} {:>9} {:>9} {:>9.2}x",
            miss,
            sb,
            sx,
            get(Model::Rc, Techniques::NONE),
            get(Model::Rc, Techniques::BOTH),
            sb as f64 / sx as f64
        );
    }
}
