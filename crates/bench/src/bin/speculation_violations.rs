//! E7 — §5's "invalidations of speculated values are infrequent":
//! rollback and reissue rates of the speculative-load buffer as lock
//! contention and critical-section length grow.
//!
//! Runs the `e7-speculation` built-in sweep; `--jobs N` parallelizes it.

use mcsim_bench::jobs_from_args;
use mcsim_sweep::builtin::e7_speculation;
use mcsim_sweep::{run_sweep, ExecOptions};

fn main() {
    let spec = e7_speculation();
    let run = run_sweep(
        &spec,
        &ExecOptions {
            jobs: jobs_from_args(),
            ..ExecOptions::default()
        },
    )
    .expect("built-in spec is valid");

    println!("speculation violations vs contention (SC, both techniques)\n");
    println!(
        "{:<38} {:>8} {:>10} {:>9} {:>9} {:>9}",
        "workload", "cycles", "specloads", "rollback", "reissue", "rate"
    );
    for row in &run.result.rows {
        let m = row
            .outcome
            .metrics()
            .unwrap_or_else(|| panic!("point {} failed: {:?}", row.index, row.outcome));
        println!(
            "{:<38} {:>8} {:>10} {:>9} {:>9} {:>8.1}%",
            row.workload,
            m.cycles,
            m.speculative_loads,
            m.rollbacks,
            m.reissues,
            m.rollback_rate() * 100.0
        );
    }
    println!("\npaper's expectation: rates stay small because the window between a");
    println!("speculative load and its retirement rarely overlaps a remote write (§5).");
}
