//! E7 — §5's "invalidations of speculated values are infrequent":
//! rollback and reissue rates of the speculative-load buffer as lock
//! contention and critical-section length grow.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_proc::Techniques;
use mcsim_workloads::generators::{critical_sections, CriticalSections};

fn main() {
    println!("speculation violations vs contention (SC, both techniques)\n");
    println!(
        "{:<38} {:>8} {:>10} {:>9} {:>9} {:>9}",
        "workload", "cycles", "specloads", "rollback", "reissue", "rate"
    );
    for procs in [2usize, 4, 8] {
        for locks in [procs, 1] {
            for think in [0u32, 100] {
                let params = CriticalSections {
                    procs,
                    locks,
                    sections: 4,
                    reads: 3,
                    writes: 3,
                    think,
                    ..Default::default()
                };
                let cfg = MachineConfig::paper_with(Model::Sc, Techniques::BOTH);
                let m = Machine::new(cfg, critical_sections(&params));
                let r = m.run();
                assert!(!r.timed_out);
                let label = format!(
                    "{procs} procs / {} / think {think}",
                    if locks == 1 {
                        "1 lock (contended)".to_string()
                    } else {
                        format!("{locks} locks (private)")
                    },
                );
                println!(
                    "{:<38} {:>8} {:>10} {:>9} {:>9} {:>8.1}%",
                    label,
                    r.cycles,
                    r.total.speculative_loads,
                    r.total.rollbacks,
                    r.total.reissues,
                    r.total.rollback_rate() * 100.0
                );
            }
        }
    }
    println!("\npaper's expectation: rates stay small because the window between a");
    println!("speculative load and its retirement rarely overlaps a remote write (§5).");
}
