//! E9 — §3.1: read-exclusive prefetch requires an invalidation-based
//! protocol; under an update protocol a write cannot be partially
//! serviced, so prefetching stops helping stores.

use mcsim_bench::markdown_table;
use mcsim_consistency::Model;
use mcsim_core::{format_table, run_matrix, MachineConfig};
use mcsim_mem::Protocol;
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn main() {
    for protocol in [Protocol::Invalidate, Protocol::Update] {
        let mut base = MachineConfig::paper();
        base.mem.protocol = protocol;
        let rows = run_matrix(
            &base,
            &[Model::Sc, Model::Rc],
            &[Techniques::NONE, Techniques::PREFETCH],
            || vec![paper::example1()],
            |_| {},
        )
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        });
        println!(
            "{}",
            format_table(
                &format!("Example 1 producer under {protocol:?} protocol"),
                &rows
            )
        );
        println!("{}", markdown_table(&rows));
        let pf_unsupported = rows
            .iter()
            .map(|r| r.report.mem.prefetches_unsupported)
            .sum::<u64>();
        println!("read-exclusive prefetches rejected by the protocol: {pf_unsupported}\n");
    }
}
