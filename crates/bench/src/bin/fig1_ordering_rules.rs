//! E1 — Figure 1: the ordering restrictions each consistency model
//! imposes, rendered as delay-arc matrices straight from the
//! `mcsim-consistency` rules (so the printed table *is* the simulator's
//! behavior, not a copy of the paper's figure).

use mcsim_consistency::{table, Model};

fn main() {
    println!("{}", table::render_all());
    println!("arc counts (strictness): ");
    for m in Model::ALL_EXTENDED {
        println!("  {:<3} {:>2} / 25", m.name(), table::arc_count(m));
    }
}
