//! E15 (extension) — footnote 2 ablation: the paper's detection
//! conservatively treats false-sharing and same-value coherence events
//! as violations. Under the update protocol the event names the written
//! word and value, so both cases can be filtered. This experiment
//! measures the rollbacks that conservatism costs on a falsely-shared
//! workload.

use mcsim_consistency::Model;
use mcsim_core::{Machine, MachineConfig};
use mcsim_isa::reg::{R1, R2};
use mcsim_isa::ProgramBuilder;
use mcsim_mem::Protocol;
use mcsim_proc::Techniques;

const LINE: u64 = 0x6000;

fn main() {
    println!("false-sharing ping-pong under the update protocol (SC, speculation)\n");
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>10}",
        "configuration", "cycles", "rollbacks", "filtered", "r2(final)"
    );
    for exact in [false, true] {
        // Reader repeatedly loads word 0 of the line while the writer
        // updates word 1 (pure false sharing) — every update is a hazard
        // match at line granularity.
        let mut reader = ProgramBuilder::new("reader");
        for _ in 0..8 {
            reader = reader.store(0x9000u64, 1u64).load(R2, LINE);
        }
        let reader = reader.halt().build().unwrap();
        let mut writer = ProgramBuilder::new("writer");
        for i in 0..8u64 {
            writer = writer.store(LINE + 8, i);
        }
        let writer = writer.halt().build().unwrap();

        let mut cfg = MachineConfig::paper_with(Model::Sc, Techniques::SPECULATION);
        cfg.mem.protocol = Protocol::Update;
        cfg.proc.exact_update_check = exact;
        let mut m = Machine::new(cfg, vec![reader, writer]);
        m.write_memory(LINE, 7);
        m.preload_cache(0, LINE, false);
        let r = m.run();
        assert!(!r.timed_out);
        assert_eq!(r.reg(0, R2), 7, "the read word never changes");
        println!(
            "{:<28} {:>8} {:>10} {:>10} {:>10}",
            if exact {
                "exact word+value check"
            } else {
                "conservative (paper)"
            },
            r.cycles,
            r.total.rollbacks,
            r.total.hazards_filtered,
            r.reg(0, R2)
        );
        let _ = R1;
    }
    println!("\nthe architectural result is identical; the exact check converts");
    println!("false-sharing rollbacks into filtered hazards (footnote 2's cost).");
}
