//! E2 — Figure 2, Example 1 (producer): cycle counts across the full
//! model × technique matrix. Paper values: SC base 301, RC base 202,
//! SC/RC with prefetch 103.

use mcsim_bench::{base_config, markdown_table};
use mcsim_consistency::Model;
use mcsim_core::{format_table, run_matrix};
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn main() {
    let rows = run_matrix(
        &base_config(),
        &Model::ALL,
        &Techniques::ALL,
        || vec![paper::example1()],
        |_| {},
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!(
        "{}",
        format_table("Figure 2 / Example 1 — producer (cycles)", &rows)
    );
    println!("{}", markdown_table(&rows));
    println!("paper: SC base = 301, RC base = 202, SC+prefetch = RC+prefetch = 103");
}
