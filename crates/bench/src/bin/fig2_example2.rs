//! E3 — Figure 2, Example 2 (consumer): cycle counts across the full
//! model × technique matrix. Paper values: SC base 302, RC base 203,
//! SC+prefetch 203, RC+prefetch 202, SC/RC with speculation 104.

use mcsim_bench::{base_config, markdown_table};
use mcsim_consistency::Model;
use mcsim_core::{format_table, run_matrix};
use mcsim_proc::Techniques;
use mcsim_workloads::paper;

fn main() {
    let rows = run_matrix(
        &base_config(),
        &Model::ALL,
        &Techniques::ALL,
        || vec![paper::example2()],
        paper::setup_example2,
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!(
        "{}",
        format_table("Figure 2 / Example 2 — consumer (cycles)", &rows)
    );
    println!("{}", markdown_table(&rows));
    println!("paper: SC base 302, RC base 203, SC+pf 203, RC+pf 202, spec 104 (both)");
}
