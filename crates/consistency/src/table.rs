//! Rendering of the Figure 1 ordering restrictions as text tables.
//!
//! `fig1_ordering_rules` (in `mcsim-bench`) prints these tables; the unit
//! tests here pin the SC and RC tables so an accidental change to the
//! delay relation is caught in review.

use crate::access::AccessClass;
use crate::model::Model;
use std::fmt::Write as _;

/// The access classes shown along each axis of the Figure 1 table.
pub const TABLE_CLASSES: [AccessClass; 5] = [
    AccessClass::LOAD,
    AccessClass::STORE,
    AccessClass::ACQUIRE_LOAD,
    AccessClass::ACQUIRE_RMW,
    AccessClass::RELEASE_STORE,
];

/// Renders one model's delay-arc matrix. Rows are the *earlier* access,
/// columns the *later* access; `X` marks "later must be delayed until the
/// earlier access performs".
#[must_use]
pub fn render_model(model: Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", model.name(), model.description());
    let width = 11;
    let _ = write!(out, "{:width$}", "earlier\\later");
    for c in TABLE_CLASSES {
        let _ = write!(out, " {:>9}", c.to_string());
    }
    out.push('\n');
    for e in TABLE_CLASSES {
        let _ = write!(out, "{:width$}", e.to_string());
        for l in TABLE_CLASSES {
            let mark = if model.must_delay(e, l) { "X" } else { "." };
            let _ = write!(out, " {mark:>9}");
        }
        out.push('\n');
    }
    out
}

/// Renders every implemented model's table (the full Figure 1, extended
/// with TSO/PSO and RCsc).
#[must_use]
pub fn render_all() -> String {
    let mut out =
        String::from("Figure 1 — ordering restrictions on memory accesses (X = delay arc)\n\n");
    for m in Model::ALL_EXTENDED {
        out.push_str(&render_model(m));
        out.push('\n');
    }
    out
}

/// Counts the delay arcs in a model's matrix — a scalar measure of
/// strictness used in reports (SC = 25, the full matrix).
#[must_use]
pub fn arc_count(model: Model) -> usize {
    TABLE_CLASSES
        .iter()
        .flat_map(|e| TABLE_CLASSES.iter().map(move |l| (e, l)))
        .filter(|(e, l)| model.must_delay(**e, **l))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc_is_full_matrix() {
        assert_eq!(arc_count(Model::Sc), 25);
    }

    #[test]
    fn strictly_fewer_arcs_down_the_spectrum() {
        assert!(arc_count(Model::Tso) < arc_count(Model::Sc));
        assert!(arc_count(Model::Pc) < arc_count(Model::Tso));
        assert!(arc_count(Model::Pso) < arc_count(Model::Tso));
        assert!(arc_count(Model::Wc) < arc_count(Model::Pso));
        assert!(arc_count(Model::RcSc) < arc_count(Model::Wc));
        assert!(arc_count(Model::Rc) < arc_count(Model::RcSc));
    }

    #[test]
    fn store_buffer_model_arc_counts() {
        // TSO drops exactly the store->load arc; PSO also store->store.
        assert_eq!(arc_count(Model::Tso), 24);
        assert_eq!(arc_count(Model::Pso), 23);
    }

    #[test]
    fn render_contains_model_names() {
        let all = render_all();
        for m in Model::ALL {
            assert!(all.contains(m.name()));
        }
    }

    #[test]
    fn rc_table_shape() {
        let t = render_model(Model::Rc);
        // The ordinary load row must be all '.' except the release column.
        let row: Vec<&str> = t
            .lines()
            .find(|l| l.starts_with("load "))
            .unwrap()
            .split_whitespace()
            .collect();
        assert_eq!(row, vec!["load", ".", ".", ".", ".", "X"]);
    }

    #[test]
    fn pc_store_row_lets_loads_pass() {
        let t = render_model(Model::Pc);
        let row: Vec<&str> = t
            .lines()
            .find(|l| l.starts_with("store "))
            .unwrap()
            .split_whitespace()
            .collect();
        // store -> load free; store -> store ordered; acquire-load column
        // free (it reads), rmw and release columns ordered (they write).
        assert_eq!(row, vec!["store", ".", "X", ".", "X", "X"]);
    }
}
