//! # mcsim-consistency — memory consistency models as delay arcs
//!
//! Section 2 / Figure 1 of Gharachorloo, Gupta & Hennessy (ICPP 1991)
//! presents each consistency model as a set of *delay arcs*: access `v` may
//! not perform until access `u` (earlier in program order) has performed.
//! This crate encodes those arcs for the four models the paper discusses:
//!
//! * **SC** — sequential consistency (Lamport): every access delayed for
//!   every earlier access; shared accesses perform in program order.
//! * **PC** — processor consistency (Goodman): reads may bypass earlier
//!   writes; writes stay ordered behind everything.
//! * **WC** — weak consistency, the paper's `WCsc` variant (Dubois et al.):
//!   ordinary accesses between synchronization points are unordered;
//!   synchronization accesses are full barriers.
//! * **RC** — release consistency, the paper's `RCpc` variant: accesses
//!   after an *acquire* wait for it; a *release* waits for everything
//!   before it; special (sync) accesses obey PC among themselves.
//!
//! The conventional implementation of a model *enforces* these arcs by
//! stalling issue; the paper's two techniques instead let accesses proceed
//! and detect/correct the rare violations. Both the conventional issue
//! logic (`mcsim-proc`'s baseline mode) and the speculative-load buffer's
//! retirement conditions are driven by the [`must_delay`] relation defined
//! here, so the simulator cannot drift from the model definitions.
//!
//! [`must_delay`]: Model::must_delay

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod model;
pub mod table;

pub use access::{AccessCategory, AccessClass, Outstanding};
pub use model::Model;
