//! The consistency models and their delay-arc relations (Figure 1),
//! plus the TSO/PSO store-buffer models between SC and WC.

use crate::access::{AccessClass, Outstanding};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory consistency model supported by the simulator.
///
/// Ordered from strictest to most relaxed; `Model::Sc < Model::Rc` holds
/// under the derived `Ord`, which experiments use to sort result rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Model {
    /// Sequential consistency (Lamport 1979).
    Sc,
    /// Total store ordering (SPARC V8): exactly one relaxation of SC —
    /// an ordinary load may bypass an earlier ordinary store (the FIFO
    /// store buffer). Synchronization accesses stay fully ordered.
    Tso,
    /// Processor consistency (Goodman 1989).
    Pc,
    /// Partial store ordering (SPARC V8): TSO minus the ordinary
    /// store → ordinary store arc — stores to different lines drain from
    /// the buffer out of order. Sync accesses stay fully ordered.
    Pso,
    /// Weak consistency, `WCsc` variant (Dubois, Scheurich & Briggs 1986).
    Wc,
    /// Release consistency, `RCsc` variant: like [`Model::Rc`] but the
    /// special (synchronization) accesses obey *sequential consistency*
    /// among themselves, so a later acquire also waits for an earlier
    /// release. The paper presents RCpc (footnote 1) and notes extensions
    /// to other models are straightforward (§2) — this is that extension.
    RcSc,
    /// Release consistency, `RCpc` variant (Gharachorloo et al. 1990) —
    /// the model the paper uses.
    Rc,
}

impl Model {
    /// The four models the paper discusses, strictest first.
    pub const ALL: [Model; 4] = [Model::Sc, Model::Pc, Model::Wc, Model::Rc];

    /// All implemented models including the TSO/PSO store-buffer models
    /// and the RCsc extension, strictest first.
    pub const ALL_EXTENDED: [Model; 7] = [
        Model::Sc,
        Model::Tso,
        Model::Pc,
        Model::Pso,
        Model::Wc,
        Model::RcSc,
        Model::Rc,
    ];

    /// Short uppercase name as used in the paper (`SC`, `PC`, `WC`, `RC`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Model::Sc => "SC",
            Model::Tso => "TSO",
            Model::Pc => "PC",
            Model::Pso => "PSO",
            Model::Wc => "WC",
            Model::RcSc => "RCsc",
            Model::Rc => "RC",
        }
    }

    /// One-line description for reports.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Model::Sc => "sequential consistency: program order among all shared accesses",
            Model::Tso => "total store ordering: a FIFO store buffer; loads bypass earlier stores",
            Model::Pc => "processor consistency: reads may bypass earlier writes",
            Model::Pso => "partial store ordering: TSO with stores draining out of order",
            Model::Wc => "weak consistency (WCsc): sync accesses are full barriers",
            Model::RcSc => {
                "release consistency (RCsc): RC with sequentially consistent special accesses"
            }
            Model::Rc => "release consistency (RCpc): acquire blocks later, release waits earlier",
        }
    }

    /// The delay-arc relation of Figure 1: must the completion of `later`
    /// be delayed until `earlier` (which precedes it in program order) has
    /// performed?
    ///
    /// Only *consistency* constraints are captured here. Uniprocessor data
    /// and control dependences (same-address ordering, store-to-load
    /// forwarding, address dependences) are enforced unconditionally by the
    /// processor model and are deliberately not part of this relation.
    #[must_use]
    pub fn must_delay(self, earlier: AccessClass, later: AccessClass) -> bool {
        // An ordinary *pure* store / load (not an RMW, not sync) — the only
        // accesses the store-buffer models relax.
        let buffered_store = |c: AccessClass| c.writes && !c.reads && !c.is_sync();
        let ordinary_load = |c: AccessClass| c.reads && !c.writes && !c.is_sync();
        match self {
            // SC: shared accesses perform in program order — every pair.
            Model::Sc => true,

            // TSO: SC minus exactly one arc — an ordinary load may bypass
            // an earlier ordinary store sitting in the FIFO store buffer.
            // RMWs and sync accesses stay fully ordered (atomics drain the
            // buffer), so TSO is strictly between SC and PC.
            Model::Tso => !(buffered_store(earlier) && ordinary_load(later)),

            // PSO: TSO minus the ordinary store -> ordinary store arc —
            // buffered stores drain out of order. Everything into or out of
            // a sync access (and anything involving an RMW) stays ordered,
            // so PSO is strictly between TSO and WC.
            Model::Pso => {
                !(buffered_store(earlier) && (ordinary_load(later) || buffered_store(later)))
            }

            // PC: LOAD->LOAD, LOAD->STORE, STORE->STORE arcs; the STORE->LOAD
            // arc is absent (reads bypass earlier writes). An access that
            // reads (including RMW) behaves as a load on the earlier end and
            // orders everything after it; a pure store only orders later
            // writes. On the later end, an access that writes (including
            // RMW) is ordered behind earlier stores.
            Model::Pc => {
                if earlier.reads {
                    true
                } else {
                    later.writes
                }
            }

            // WC (WCsc): a synchronization access on either end is a full
            // barrier; ordinary accesses between sync points are free.
            Model::Wc => earlier.is_sync() || later.is_sync(),

            // RCsc: as RC below, but special accesses obey SC among
            // themselves — a later acquire also waits for an earlier
            // release.
            Model::RcSc => {
                earlier.is_acquire() || later.is_release() || (earlier.is_sync() && later.is_sync())
            }

            // RC (RCpc): acquire blocks everything after it; release waits
            // for everything before it; special accesses obey PC among
            // themselves (which the first two arms already imply except for
            // the release->release case covered by `later.is_release()`;
            // release->acquire is free — the pc-variant of RC).
            Model::Rc => {
                earlier.is_acquire()
                    || later.is_release()
                    || (earlier.is_sync() && later.is_sync() && {
                        // PC among specials.
                        if earlier.reads {
                            true
                        } else {
                            later.writes
                        }
                    })
            }
        }
    }

    /// Whether an access of class `later` may *perform* given the set of
    /// incomplete earlier accesses — the question the conventional
    /// implementation asks before issuing, and the speculative-load buffer
    /// asks before retiring an entry.
    #[must_use]
    pub fn may_perform(self, later: AccessClass, outstanding: &Outstanding) -> bool {
        outstanding
            .nonzero()
            .all(|(cat, _)| !self.must_delay(cat.representative(), later))
    }

    /// Strictness rank: lower = stricter (SC is 0).
    #[must_use]
    pub fn strictness(self) -> u8 {
        match self {
            Model::Sc => 0,
            Model::Tso => 1,
            Model::Pc => 2,
            Model::Pso => 3,
            Model::Wc => 4,
            Model::RcSc => 5,
            Model::Rc => 6,
        }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Model {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "SC" => Ok(Model::Sc),
            "TSO" => Ok(Model::Tso),
            "PC" => Ok(Model::Pc),
            "PSO" => Ok(Model::Pso),
            "WC" => Ok(Model::Wc),
            "RCSC" => Ok(Model::RcSc),
            "RC" | "RCPC" => Ok(Model::Rc),
            other => Err(format!("unknown consistency model `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessCategory;

    const LD: AccessClass = AccessClass::LOAD;
    const ST: AccessClass = AccessClass::STORE;
    const ACQ: AccessClass = AccessClass::ACQUIRE_RMW;
    const ACQ_LD: AccessClass = AccessClass::ACQUIRE_LOAD;
    const REL: AccessClass = AccessClass::RELEASE_STORE;

    #[test]
    fn sc_orders_everything() {
        for e in [LD, ST, ACQ, REL] {
            for l in [LD, ST, ACQ, REL] {
                assert!(Model::Sc.must_delay(e, l), "{e} -> {l} must delay under SC");
            }
        }
    }

    #[test]
    fn pc_lets_reads_bypass_writes() {
        assert!(!Model::Pc.must_delay(ST, LD), "store->load free under PC");
        assert!(Model::Pc.must_delay(LD, LD));
        assert!(Model::Pc.must_delay(LD, ST));
        assert!(Model::Pc.must_delay(ST, ST));
        // RMW reads, so a later load is ordered behind it...
        assert!(Model::Pc.must_delay(ACQ, LD));
        // ...and an RMW writes, so it is ordered behind earlier stores.
        assert!(Model::Pc.must_delay(ST, ACQ));
    }

    #[test]
    fn wc_sync_is_full_barrier() {
        assert!(!Model::Wc.must_delay(LD, ST));
        assert!(!Model::Wc.must_delay(ST, LD));
        assert!(!Model::Wc.must_delay(LD, LD));
        for sync in [ACQ, ACQ_LD, REL] {
            assert!(Model::Wc.must_delay(sync, LD), "{sync} -> load");
            assert!(Model::Wc.must_delay(ST, sync), "store -> {sync}");
            assert!(Model::Wc.must_delay(sync, sync));
        }
    }

    #[test]
    fn rc_acquire_blocks_later_release_waits_earlier() {
        // Figure 1 RC block: acquire -> everything after.
        for l in [LD, ST, ACQ, REL] {
            assert!(Model::Rc.must_delay(ACQ, l), "acquire -> {l}");
            assert!(Model::Rc.must_delay(ACQ_LD, l), "acquire-load -> {l}");
        }
        // Everything before -> release.
        for e in [LD, ST, ACQ, REL] {
            assert!(Model::Rc.must_delay(e, REL), "{e} -> release");
        }
        // Ordinary accesses are otherwise free.
        assert!(!Model::Rc.must_delay(LD, ST));
        assert!(!Model::Rc.must_delay(ST, LD));
        assert!(!Model::Rc.must_delay(ST, ST));
        // Ordinary before acquire: acquire need not wait (RC's key relax).
        assert!(!Model::Rc.must_delay(LD, ACQ));
        assert!(!Model::Rc.must_delay(ST, ACQ));
        // Ordinary after release: need not wait for the release.
        assert!(!Model::Rc.must_delay(REL, LD));
        assert!(!Model::Rc.must_delay(REL, ST));
        // RCpc: a later acquire *read* bypasses an earlier release (the pc
        // part)...
        assert!(!Model::Rc.must_delay(REL, ACQ_LD));
        // ...but an acquire RMW also writes, and PC among specials orders
        // its write half behind the earlier release store.
        assert!(Model::Rc.must_delay(REL, ACQ));
    }

    #[test]
    fn relaxation_is_monotone() {
        // Every arc required by a more relaxed model is also required by
        // every stricter model — the spectrum of §2. (PC and WC are
        // incomparable in general, but both are subsets of SC and supersets
        // of... nothing; we check each against SC and RC against WC/PC only
        // where the paper orders them: SC ⊇ PC ⊇ RCpc and SC ⊇ WCsc ⊇ RCpc
        // does NOT hold for WC->RC on ordinary/sync pairs, so we check the
        // documented chains.)
        let classes = [LD, ST, ACQ, ACQ_LD, REL];
        for e in classes {
            for l in classes {
                if Model::Pc.must_delay(e, l) {
                    assert!(Model::Sc.must_delay(e, l));
                }
                if Model::Wc.must_delay(e, l) {
                    assert!(Model::Sc.must_delay(e, l));
                }
                if Model::Rc.must_delay(e, l) {
                    assert!(Model::Wc.must_delay(e, l), "{e}->{l}: RC arc missing in WC");
                }
            }
        }
    }

    #[test]
    fn may_perform_respects_counts() {
        let mut o = Outstanding::none();
        // Nothing outstanding: everything may perform under every model.
        for m in Model::ALL {
            assert!(m.may_perform(LD, &o));
            assert!(m.may_perform(REL, &o));
        }
        // One outstanding ordinary store.
        o.add(ST);
        assert!(!Model::Sc.may_perform(LD, &o));
        assert!(Model::Pc.may_perform(LD, &o), "PC read bypasses write");
        assert!(Model::Rc.may_perform(LD, &o));
        assert!(!Model::Rc.may_perform(REL, &o), "release waits for store");
        o.remove(ST);
        // One outstanding acquire blocks everything under RC.
        o.add(ACQ);
        assert!(!Model::Rc.may_perform(LD, &o));
        assert!(!Model::Rc.may_perform(ST, &o));
        assert_eq!(o.count(AccessCategory::Acquire), 1);
    }

    #[test]
    fn model_parse_and_display() {
        for m in Model::ALL {
            let parsed: Model = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
        assert!("XC".parse::<Model>().is_err());
        assert_eq!(Model::Rc.to_string(), "RC");
    }

    #[test]
    fn strictness_ranks() {
        // ALL_EXTENDED is strictest-first and agrees with the derived Ord.
        for pair in Model::ALL_EXTENDED.windows(2) {
            assert!(pair[0].strictness() < pair[1].strictness());
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn tso_relaxes_exactly_store_load() {
        // The single missing arc.
        assert!(!Model::Tso.must_delay(ST, LD));
        // Everything else is SC-ordered, including all sync pairs and RMWs.
        for e in [LD, ST, ACQ, ACQ_LD, REL] {
            for l in [LD, ST, ACQ, ACQ_LD, REL] {
                if !(e == ST && l == LD) {
                    assert!(Model::Tso.must_delay(e, l), "{e} -> {l} ordered under TSO");
                }
            }
        }
    }

    #[test]
    fn pso_additionally_relaxes_store_store() {
        assert!(!Model::Pso.must_delay(ST, LD));
        assert!(!Model::Pso.must_delay(ST, ST));
        // A release is a sync store: buffered stores still order into it,
        // and it orders into everything.
        assert!(Model::Pso.must_delay(ST, REL));
        assert!(Model::Pso.must_delay(REL, ST));
        // RMWs drain the buffer on both ends.
        assert!(Model::Pso.must_delay(ST, ACQ));
        assert!(Model::Pso.must_delay(ACQ, LD));
        // Loads stay fully ordered (PSO relaxes only the store buffer).
        assert!(Model::Pso.must_delay(LD, LD));
        assert!(Model::Pso.must_delay(LD, ST));
    }

    #[test]
    fn store_buffer_models_nest_between_sc_and_wc() {
        // Arc-set containment along the chains SC ⊇ TSO ⊇ PC and
        // SC ⊇ TSO ⊇ PSO ⊇ WC (PC and PSO are incomparable, like PC/WC).
        let classes = [LD, ST, ACQ, ACQ_LD, REL];
        for e in classes {
            for l in classes {
                if Model::Tso.must_delay(e, l) {
                    assert!(Model::Sc.must_delay(e, l));
                }
                if Model::Pc.must_delay(e, l) {
                    assert!(Model::Tso.must_delay(e, l), "{e}->{l}: PC arc not in TSO");
                }
                if Model::Pso.must_delay(e, l) {
                    assert!(Model::Tso.must_delay(e, l), "{e}->{l}: PSO arc not in TSO");
                }
                if Model::Wc.must_delay(e, l) {
                    assert!(Model::Pso.must_delay(e, l), "{e}->{l}: WC arc not in PSO");
                }
            }
        }
        // Strictness is strict: each step drops at least one arc.
        assert!(!Model::Tso.must_delay(ST, LD) && Model::Sc.must_delay(ST, LD));
        assert!(!Model::Pc.must_delay(REL, ACQ_LD) && Model::Tso.must_delay(REL, ACQ_LD));
        assert!(!Model::Pso.must_delay(ST, ST) && Model::Tso.must_delay(ST, ST));
        assert!(!Model::Wc.must_delay(LD, LD) && Model::Pso.must_delay(LD, LD));
    }

    #[test]
    fn rcsc_orders_release_before_acquire() {
        // The single arc distinguishing RCsc from RCpc.
        assert!(Model::RcSc.must_delay(REL, ACQ_LD));
        assert!(!Model::Rc.must_delay(REL, ACQ_LD));
        // Otherwise RCsc's arcs contain RCpc's.
        for e in [LD, ST, ACQ, ACQ_LD, REL] {
            for l in [LD, ST, ACQ, ACQ_LD, REL] {
                if Model::Rc.must_delay(e, l) {
                    assert!(Model::RcSc.must_delay(e, l), "{e}->{l}");
                }
                if Model::RcSc.must_delay(e, l) {
                    assert!(Model::Wc.must_delay(e, l), "{e}->{l}: RCsc arc not in WC");
                }
            }
        }
    }

    #[test]
    fn extended_parse() {
        assert_eq!("RCsc".parse::<Model>().unwrap(), Model::RcSc);
        assert_eq!("rcpc".parse::<Model>().unwrap(), Model::Rc);
        assert_eq!("tso".parse::<Model>().unwrap(), Model::Tso);
        assert_eq!("PSO".parse::<Model>().unwrap(), Model::Pso);
        assert_eq!(Model::ALL_EXTENDED.len(), 7);
        for m in Model::ALL_EXTENDED {
            let parsed: Model = m.name().parse().unwrap();
            assert_eq!(parsed, m);
        }
    }
}
