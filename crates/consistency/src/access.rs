//! Classification of memory accesses for ordering purposes.

use mcsim_isa::{Instr, MemFlavor};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a memory access does and how it is classified — the information the
/// delay-arc relation needs about each end of an arc.
///
/// An atomic read-modify-write both reads and writes; for ordering it is
/// treated as carrying *both* obligations, which is why `reads` and
/// `writes` are independent flags rather than an enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessClass {
    /// The access binds a return value (loads, RMWs).
    pub reads: bool,
    /// The access makes a new value visible (stores, RMWs).
    pub writes: bool,
    /// Synchronization classification.
    pub flavor: MemFlavor,
}

impl AccessClass {
    /// An ordinary load.
    pub const LOAD: AccessClass = AccessClass {
        reads: true,
        writes: false,
        flavor: MemFlavor::Ordinary,
    };
    /// An ordinary store.
    pub const STORE: AccessClass = AccessClass {
        reads: false,
        writes: true,
        flavor: MemFlavor::Ordinary,
    };
    /// An acquire load (flag spin).
    pub const ACQUIRE_LOAD: AccessClass = AccessClass {
        reads: true,
        writes: false,
        flavor: MemFlavor::Acquire,
    };
    /// A release store (unlock / flag set).
    pub const RELEASE_STORE: AccessClass = AccessClass {
        reads: false,
        writes: true,
        flavor: MemFlavor::Release,
    };
    /// An acquire read-modify-write (lock acquisition).
    pub const ACQUIRE_RMW: AccessClass = AccessClass {
        reads: true,
        writes: true,
        flavor: MemFlavor::Acquire,
    };

    /// Classifies a memory instruction; `None` for non-memory instructions.
    #[must_use]
    pub fn of_instr(i: &Instr) -> Option<AccessClass> {
        let flavor = i.mem_flavor()?;
        Some(AccessClass {
            reads: i.is_mem_read(),
            writes: i.is_mem_write(),
            flavor,
        })
    }

    /// Whether this is a synchronization access.
    #[must_use]
    pub fn is_sync(self) -> bool {
        self.flavor.is_sync()
    }

    /// Whether this access carries acquire semantics.
    #[must_use]
    pub fn is_acquire(self) -> bool {
        self.flavor == MemFlavor::Acquire
    }

    /// Whether this access carries release semantics.
    #[must_use]
    pub fn is_release(self) -> bool {
        self.flavor == MemFlavor::Release
    }

    /// The coarse [`AccessCategory`] used for outstanding-access counting.
    #[must_use]
    pub fn category(self) -> AccessCategory {
        match (self.flavor, self.reads, self.writes) {
            (MemFlavor::Acquire, _, _) => AccessCategory::Acquire,
            (MemFlavor::Release, _, _) => AccessCategory::Release,
            (MemFlavor::Ordinary, true, true) => AccessCategory::OrdinaryRmw,
            (MemFlavor::Ordinary, true, false) => AccessCategory::OrdinaryLoad,
            (MemFlavor::Ordinary, _, _) => AccessCategory::OrdinaryStore,
        }
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match (self.reads, self.writes) {
            (true, true) => "rmw",
            (true, false) => "load",
            (false, true) => "store",
            (false, false) => "nop",
        };
        match self.flavor {
            MemFlavor::Ordinary => write!(f, "{base}"),
            MemFlavor::Acquire => write!(f, "{base}.acq"),
            MemFlavor::Release => write!(f, "{base}.rel"),
        }
    }
}

/// Coarse categories for counting incomplete earlier accesses.
///
/// The delay-arc relation only depends on an earlier access through its
/// class, so a *count of incomplete earlier accesses per category* is a
/// sufficient summary to decide whether a later access may perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessCategory {
    /// Ordinary data load.
    OrdinaryLoad,
    /// Ordinary data store.
    OrdinaryStore,
    /// Ordinary (non-sync) read-modify-write.
    OrdinaryRmw,
    /// Acquire access (load or RMW).
    Acquire,
    /// Release access (store).
    Release,
}

impl AccessCategory {
    /// Every category, in display order.
    pub const ALL: [AccessCategory; 5] = [
        AccessCategory::OrdinaryLoad,
        AccessCategory::OrdinaryStore,
        AccessCategory::OrdinaryRmw,
        AccessCategory::Acquire,
        AccessCategory::Release,
    ];

    /// A representative [`AccessClass`] for the category (used to query the
    /// pairwise delay relation with a category as the earlier end).
    #[must_use]
    pub fn representative(self) -> AccessClass {
        match self {
            AccessCategory::OrdinaryLoad => AccessClass::LOAD,
            AccessCategory::OrdinaryStore => AccessClass::STORE,
            AccessCategory::OrdinaryRmw => AccessClass {
                reads: true,
                writes: true,
                flavor: MemFlavor::Ordinary,
            },
            AccessCategory::Acquire => AccessClass::ACQUIRE_RMW,
            AccessCategory::Release => AccessClass::RELEASE_STORE,
        }
    }

    fn idx(self) -> usize {
        match self {
            AccessCategory::OrdinaryLoad => 0,
            AccessCategory::OrdinaryStore => 1,
            AccessCategory::OrdinaryRmw => 2,
            AccessCategory::Acquire => 3,
            AccessCategory::Release => 4,
        }
    }
}

impl fmt::Display for AccessCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessCategory::OrdinaryLoad => "load",
            AccessCategory::OrdinaryStore => "store",
            AccessCategory::OrdinaryRmw => "rmw",
            AccessCategory::Acquire => "acquire",
            AccessCategory::Release => "release",
        };
        f.write_str(s)
    }
}

/// Counts of *incomplete earlier* accesses, per category, for one access
/// about to be checked against the delay arcs.
///
/// Maintained by the load/store unit: increment on issue (or on entry to a
/// buffer), decrement when the access performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outstanding {
    counts: [u32; 5],
}

impl Outstanding {
    /// No incomplete earlier accesses.
    #[must_use]
    pub fn none() -> Self {
        Outstanding::default()
    }

    /// Records an incomplete earlier access of class `c`.
    pub fn add(&mut self, c: AccessClass) {
        self.counts[c.category().idx()] += 1;
    }

    /// Removes a completed access of class `c`.
    ///
    /// # Panics
    /// If no access of that category was outstanding (a bookkeeping bug in
    /// the caller).
    pub fn remove(&mut self, c: AccessClass) {
        let i = c.category().idx();
        assert!(
            self.counts[i] > 0,
            "outstanding-set underflow for category {}",
            c.category()
        );
        self.counts[i] -= 1;
    }

    /// Count outstanding in one category.
    #[must_use]
    pub fn count(&self, cat: AccessCategory) -> u32 {
        self.counts[cat.idx()]
    }

    /// Total outstanding accesses.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Whether nothing is outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Iterates over categories with a nonzero outstanding count.
    pub fn nonzero(&self) -> impl Iterator<Item = (AccessCategory, u32)> + '_ {
        AccessCategory::ALL
            .into_iter()
            .filter_map(|cat| (self.counts[cat.idx()] > 0).then_some((cat, self.counts[cat.idx()])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::reg::R1;
    use mcsim_isa::{AddrExpr, Operand, RmwKind};

    #[test]
    fn classify_instructions() {
        let ld = Instr::Load {
            dst: R1,
            addr: AddrExpr::direct(0),
            flavor: MemFlavor::Ordinary,
        };
        assert_eq!(AccessClass::of_instr(&ld), Some(AccessClass::LOAD));

        let rel = Instr::Store {
            addr: AddrExpr::direct(0),
            src: Operand::Imm(0),
            flavor: MemFlavor::Release,
        };
        assert_eq!(
            AccessClass::of_instr(&rel),
            Some(AccessClass::RELEASE_STORE)
        );

        let tas = Instr::Rmw {
            dst: R1,
            addr: AddrExpr::direct(0),
            kind: RmwKind::TestAndSet,
            src: Operand::Imm(0),
            flavor: MemFlavor::Acquire,
        };
        assert_eq!(AccessClass::of_instr(&tas), Some(AccessClass::ACQUIRE_RMW));

        assert_eq!(AccessClass::of_instr(&Instr::Nop), None);
    }

    #[test]
    fn categories_roundtrip_through_representatives() {
        for cat in AccessCategory::ALL {
            assert_eq!(cat.representative().category(), cat);
        }
    }

    #[test]
    fn outstanding_add_remove() {
        let mut o = Outstanding::none();
        assert!(o.is_empty());
        o.add(AccessClass::LOAD);
        o.add(AccessClass::LOAD);
        o.add(AccessClass::RELEASE_STORE);
        assert_eq!(o.count(AccessCategory::OrdinaryLoad), 2);
        assert_eq!(o.count(AccessCategory::Release), 1);
        assert_eq!(o.total(), 3);
        o.remove(AccessClass::LOAD);
        assert_eq!(o.count(AccessCategory::OrdinaryLoad), 1);
        let nz: Vec<_> = o.nonzero().collect();
        assert_eq!(
            nz,
            vec![
                (AccessCategory::OrdinaryLoad, 1),
                (AccessCategory::Release, 1)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn outstanding_underflow_panics() {
        let mut o = Outstanding::none();
        o.remove(AccessClass::LOAD);
    }

    #[test]
    fn display_forms() {
        assert_eq!(AccessClass::LOAD.to_string(), "load");
        assert_eq!(AccessClass::ACQUIRE_RMW.to_string(), "rmw.acq");
        assert_eq!(AccessClass::RELEASE_STORE.to_string(), "store.rel");
    }
}
