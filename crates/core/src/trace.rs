//! Text timeline rendering for event traces.
//!
//! Turns the per-core [`CoreEvent`] streams into a Gantt-style view: one
//! lane per memory operation, bars spanning issue → perform, with
//! markers for prefetches, rollbacks and reissues. This is how the
//! paper's pipelining arguments become *visible*: conventional SC shows
//! a staircase; the techniques show overlapped bars.

use mcsim_proc::core::{CoreEvent, EventKind, IssueOutcome};
use std::fmt::Write as _;

/// One rendered operation.
#[derive(Debug, Clone)]
struct Span {
    proc: usize,
    seq: u64,
    label: String,
    start: u64,
    end: Option<u64>,
    marker: char,
}

fn collect_spans(traces: &[Vec<CoreEvent>]) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    for (proc, trace) in traces.iter().enumerate() {
        for e in trace {
            match &e.kind {
                EventKind::LoadIssued { addr, outcome, .. } => spans.push(Span {
                    proc,
                    seq: e.seq,
                    label: format!("ld  {addr}"),
                    start: e.cycle,
                    end: matches!(outcome, IssueOutcome::Forwarded).then_some(e.cycle),
                    marker: 'L',
                }),
                EventKind::StoreIssued { addr, .. } => spans.push(Span {
                    proc,
                    seq: e.seq,
                    label: format!("st  {addr}"),
                    start: e.cycle,
                    end: None,
                    marker: 'S',
                }),
                EventKind::PrefetchIssued { addr, exclusive } => spans.push(Span {
                    proc,
                    seq: e.seq,
                    label: format!("pf{} {addr}", if *exclusive { 'x' } else { ' ' }),
                    start: e.cycle,
                    end: None,
                    marker: 'P',
                }),
                EventKind::Performed { .. } => {
                    // Close the most recent open span for this (proc, seq).
                    if let Some(s) = spans
                        .iter_mut()
                        .rev()
                        .find(|s| s.proc == proc && s.seq == e.seq && s.end.is_none())
                    {
                        s.end = Some(e.cycle);
                    }
                }
                EventKind::Rollback { .. } | EventKind::RmwPartialRollback { .. } => {
                    spans.push(Span {
                        proc,
                        seq: e.seq,
                        label: "ROLLBACK".to_string(),
                        start: e.cycle,
                        end: Some(e.cycle),
                        marker: '!',
                    });
                }
                EventKind::Reissue { .. } => spans.push(Span {
                    proc,
                    seq: e.seq,
                    label: "reissue".to_string(),
                    start: e.cycle,
                    end: Some(e.cycle),
                    marker: '?',
                }),
                _ => {}
            }
        }
    }
    spans
}

/// Renders a Gantt timeline of every memory operation in `traces`,
/// `width` columns wide. Each lane shows `issue ==== perform`; bare
/// markers are instantaneous events (forwarded loads, rollbacks).
#[must_use]
pub fn render_timeline(traces: &[Vec<CoreEvent>], width: usize) -> String {
    let spans = collect_spans(traces);
    let Some(max_cycle) = spans
        .iter()
        .map(|s| s.end.unwrap_or(s.start))
        .max()
        .filter(|&m| m > 0)
    else {
        return String::from("(no timed events)\n");
    };
    let width = width.max(20);
    let scale = |c: u64| -> usize { ((c as f64 / max_cycle as f64) * (width - 1) as f64) as usize };

    let mut out = String::new();
    let _ = writeln!(out, "{:20} 0{:>w$}", "cycle", max_cycle, w = width - 1);
    for s in &spans {
        let mut lane = vec![' '; width];
        let a = scale(s.start);
        let b = scale(s.end.unwrap_or(s.start));
        lane[a] = s.marker;
        for c in lane.iter_mut().take(b).skip(a + 1) {
            *c = '=';
        }
        if b > a {
            lane[b] = '|';
        }
        let lane: String = lane.into_iter().collect();
        let _ = writeln!(out, "p{} {:16} {}", s.proc, s.label, lane);
    }
    let _ = writeln!(
        out,
        "legend: L load  S store  P prefetch  ! rollback  ? reissue  ==| performed"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use mcsim_consistency::Model;
    use mcsim_isa::ProgramBuilder;
    use mcsim_proc::Techniques;

    fn traced_run(t: Techniques) -> Vec<Vec<CoreEvent>> {
        let prog = ProgramBuilder::new("t")
            .store(0x1000u64, 1u64)
            .store(0x1080u64, 2u64)
            .halt()
            .build()
            .unwrap();
        let mut cfg = MachineConfig::paper_with(Model::Sc, t);
        cfg.trace = true;
        let report = Machine::new(cfg, vec![prog]).run();
        assert!(!report.timed_out);
        report.traces
    }

    #[test]
    fn timeline_shows_all_operations() {
        let tl = render_timeline(&traced_run(Techniques::NONE), 60);
        assert_eq!(tl.matches("st  ").count(), 2, "{tl}");
        assert!(tl.contains("legend"));
    }

    #[test]
    fn prefetch_bars_appear_with_technique_on() {
        let tl = render_timeline(&traced_run(Techniques::BOTH), 60);
        assert!(tl.matches("pfx ").count() >= 1, "{tl}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(render_timeline(&[Vec::new()], 60).contains("no timed events"));
    }
}
