//! Text timeline and breakdown rendering.
//!
//! [`render_timeline`] turns the merged [`TraceEvent`] stream into a
//! Gantt-style view: one lane per memory operation, bars spanning
//! issue → perform, with markers for prefetches, rollbacks and reissues.
//! This is how the paper's pipelining arguments become *visible*:
//! conventional SC shows a staircase; the techniques show overlapped
//! bars. (The Figure-5 buffer-occupancy view, Chrome JSON, and CSV
//! exporters live in [`mcsim_trace`].)
//!
//! [`render_breakdown`] turns the per-core [`CycleBreakdown`] counters
//! into the paper's Section 5 stacked execution-time bars: each core's
//! cycles split into busy time and per-cause stall components.

use crate::report::RunReport;
use mcsim_proc::CycleBreakdown;
use mcsim_trace::{IssueOutcome, TraceEvent, TraceKind};
use std::fmt::Write as _;

/// One rendered operation.
#[derive(Debug, Clone)]
struct Span {
    proc: usize,
    seq: Option<u64>,
    label: String,
    start: u64,
    end: Option<u64>,
    marker: char,
}

fn collect_spans(trace: &[TraceEvent]) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    for e in trace {
        match &e.kind {
            TraceKind::LoadIssue { addr, outcome, .. } => spans.push(Span {
                proc: e.proc,
                seq: e.seq,
                label: format!("ld  {addr}"),
                start: e.cycle,
                end: matches!(outcome, IssueOutcome::Forwarded).then_some(e.cycle),
                marker: 'L',
            }),
            TraceKind::StoreIssue { addr, .. } => spans.push(Span {
                proc: e.proc,
                seq: e.seq,
                label: format!("st  {addr}"),
                start: e.cycle,
                end: None,
                marker: 'S',
            }),
            TraceKind::PrefetchIssue { addr, exclusive } => spans.push(Span {
                proc: e.proc,
                seq: e.seq,
                label: format!("pf{} {addr}", if *exclusive { 'x' } else { ' ' }),
                start: e.cycle,
                end: None,
                marker: 'P',
            }),
            TraceKind::Performed { .. } => {
                // Close the most recent open span for this (proc, seq).
                if let Some(s) = spans
                    .iter_mut()
                    .rev()
                    .find(|s| s.proc == e.proc && s.seq == e.seq && s.end.is_none())
                {
                    s.end = Some(e.cycle);
                }
            }
            TraceKind::Rollback { .. } | TraceKind::RmwPartialRollback { .. } => {
                spans.push(Span {
                    proc: e.proc,
                    seq: e.seq,
                    label: "ROLLBACK".to_string(),
                    start: e.cycle,
                    end: Some(e.cycle),
                    marker: '!',
                });
            }
            TraceKind::Reissue { .. } => spans.push(Span {
                proc: e.proc,
                seq: e.seq,
                label: "reissue".to_string(),
                start: e.cycle,
                end: Some(e.cycle),
                marker: '?',
            }),
            _ => {}
        }
    }
    spans
}

/// Renders a Gantt timeline of every memory operation in the merged
/// `trace`, `width` columns wide. Each lane shows `issue ==== perform`;
/// bare markers are instantaneous events (forwarded loads, rollbacks).
#[must_use]
pub fn render_timeline(trace: &[TraceEvent], width: usize) -> String {
    let spans = collect_spans(trace);
    let Some(max_cycle) = spans
        .iter()
        .map(|s| s.end.unwrap_or(s.start))
        .max()
        .filter(|&m| m > 0)
    else {
        return String::from("(no timed events)\n");
    };
    let width = width.max(20);
    let scale = |c: u64| -> usize { ((c as f64 / max_cycle as f64) * (width - 1) as f64) as usize };

    let mut out = String::new();
    let _ = writeln!(out, "{:20} 0{:>w$}", "cycle", max_cycle, w = width - 1);
    for s in &spans {
        let mut lane = vec![' '; width];
        let a = scale(s.start);
        let b = scale(s.end.unwrap_or(s.start));
        lane[a] = s.marker;
        for c in lane.iter_mut().take(b).skip(a + 1) {
            *c = '=';
        }
        if b > a {
            lane[b] = '|';
        }
        let lane: String = lane.into_iter().collect();
        let _ = writeln!(out, "p{} {:16} {}", s.proc, s.label, lane);
    }
    let _ = writeln!(
        out,
        "legend: L load  S store  P prefetch  ! rollback  ? reissue  ==| performed"
    );
    out
}

/// The stacked-bar glyph for each breakdown component, in
/// [`CycleBreakdown::components`] order.
const BREAKDOWN_GLYPHS: [char; 6] = ['#', 'R', 'W', 'A', '!', '.'];

fn breakdown_bar(b: &CycleBreakdown, scale_to: u64, width: usize) -> String {
    let mut bar = String::new();
    if scale_to == 0 {
        return bar;
    }
    // Largest-remainder apportionment of `width * total / scale_to`
    // columns over the components, so the bar length reflects this core's
    // share of the longest core's time and every nonzero component gets
    // at least its rounded share.
    let cols = |c: u64| (c as f64 / scale_to as f64) * width as f64;
    let mut shares: Vec<(usize, f64)> = b
        .components()
        .iter()
        .enumerate()
        .map(|(i, &(_, c))| (i, cols(c)))
        .collect();
    let mut widths: Vec<usize> = shares.iter().map(|&(_, s)| s as usize).collect();
    let target = cols(b.total()).round() as usize;
    let assigned: usize = widths.iter().sum();
    shares.sort_by(|a, b| {
        (b.1 - b.1.floor())
            .partial_cmp(&(a.1 - a.1.floor()))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for &(i, _) in shares.iter().take(target.saturating_sub(assigned)) {
        widths[i] += 1;
    }
    for (i, w) in widths.iter().enumerate() {
        for _ in 0..*w {
            bar.push(BREAKDOWN_GLYPHS[i]);
        }
    }
    bar
}

/// Renders the paper-style (Section 5) execution-time breakdown of a run:
/// one stacked bar per core — busy time vs. read-miss, write, acquire,
/// rollback, and fetch stalls — scaled so the slowest core spans `width`
/// columns, followed by the merged machine-wide percentages and the
/// cycle-accounting invariant verdict (components must sum to each
/// core's accounted cycles).
#[must_use]
pub fn render_breakdown(report: &RunReport, width: usize) -> String {
    let width = width.max(20);
    let mut out = String::new();
    let scale_to = report
        .per_proc
        .iter()
        .map(|s| s.breakdown.total())
        .max()
        .unwrap_or(0);
    let _ = writeln!(out, "execution-time breakdown (per-cause cycles):");
    for (i, s) in report.per_proc.iter().enumerate() {
        let b = &s.breakdown;
        let _ = writeln!(
            out,
            "p{i} {:>8} |{}",
            b.total(),
            breakdown_bar(b, scale_to, width)
        );
    }
    let total = &report.total.breakdown;
    let grand = total.total().max(1);
    let pct: Vec<String> = total
        .components()
        .iter()
        .zip(BREAKDOWN_GLYPHS)
        .map(|(&(label, c), g)| format!("{g} {label} {:.1}%", c as f64 * 100.0 / grand as f64))
        .collect();
    let _ = writeln!(out, "merged: {}", pct.join("  "));
    // The machine checks this as a hard invariant (CycleBreakdownSum);
    // restate the verdict here so a smoke run can grep for it. Cut-off
    // runs (timeout/failure) have cores with no meaningful `halted_at`,
    // so the per-core identity is only assertable on clean runs.
    let clean = !report.timed_out && report.failure.is_none();
    let holds = report
        .per_proc
        .iter()
        .all(|s| s.breakdown.total() == s.halted_at);
    if clean && holds {
        let _ = writeln!(
            out,
            "breakdown invariant: components sum to total cycles on all {} cores",
            report.per_proc.len()
        );
    } else if clean {
        let _ = writeln!(out, "breakdown invariant VIOLATED: see per-core sums above");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use mcsim_consistency::Model;
    use mcsim_isa::ProgramBuilder;
    use mcsim_proc::Techniques;

    fn traced_run(t: Techniques) -> Vec<TraceEvent> {
        let prog = ProgramBuilder::new("t")
            .store(0x1000u64, 1u64)
            .store(0x1080u64, 2u64)
            .halt()
            .build()
            .unwrap();
        let mut cfg = MachineConfig::paper_with(Model::Sc, t);
        cfg.trace = true;
        let report = Machine::new(cfg, vec![prog]).run();
        assert!(!report.timed_out);
        report.trace
    }

    #[test]
    fn timeline_shows_all_operations() {
        let tl = render_timeline(&traced_run(Techniques::NONE), 60);
        assert_eq!(tl.matches("st  ").count(), 2, "{tl}");
        assert!(tl.contains("legend"));
    }

    #[test]
    fn prefetch_bars_appear_with_technique_on() {
        let tl = render_timeline(&traced_run(Techniques::BOTH), 60);
        assert!(tl.matches("pfx ").count() >= 1, "{tl}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert!(render_timeline(&[], 60).contains("no timed events"));
    }

    #[test]
    fn trace_events_round_trip_through_json() {
        // The trace crate has no serde_json dependency of its own; the
        // taxonomy's JSON round-trip is pinned here instead.
        let trace = traced_run(Techniques::BOTH);
        assert!(!trace.is_empty());
        let json = serde_json::to_string(&trace).unwrap();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn breakdown_renders_bars_and_invariant_line() {
        let prog = ProgramBuilder::new("t")
            .store(0x1000u64, 1u64)
            .store(0x1080u64, 2u64)
            .halt()
            .build()
            .unwrap();
        let cfg = MachineConfig::paper_with(Model::Sc, Techniques::NONE);
        let report = Machine::new(cfg, vec![prog]).run();
        assert!(!report.timed_out);
        let s = render_breakdown(&report, 60);
        assert!(s.contains("execution-time breakdown"), "{s}");
        assert!(s.contains("p0"), "{s}");
        assert!(s.contains("merged:"), "{s}");
        assert!(
            s.contains("breakdown invariant: components sum to total cycles on all 1 cores"),
            "{s}"
        );
        // SC base pays write stalls; they must dominate this store-only
        // program's bar.
        assert!(s.contains('W'), "write stall glyph expected: {s}");
    }

    #[test]
    fn breakdown_bar_widths_follow_shares() {
        let b = CycleBreakdown {
            busy: 25,
            write_stall: 75,
            ..Default::default()
        };
        let bar = breakdown_bar(&b, 100, 40);
        assert_eq!(bar.chars().filter(|&c| c == '#').count(), 10, "{bar}");
        assert_eq!(bar.chars().filter(|&c| c == 'W').count(), 30, "{bar}");
        // A shorter core's bar scales to its share of the longest.
        assert_eq!(breakdown_bar(&b, 200, 40).chars().count(), 20);
        assert!(breakdown_bar(&b, 0, 40).is_empty());
    }
}
