//! Experiment harness: model × technique matrices and table formatting.
//!
//! Every quantitative claim of the paper is a comparison across the
//! consistency-model / technique design space; this module runs such a
//! matrix over a workload factory and renders the rows the way
//! EXPERIMENTS.md (and the paper's prose) reports them.

use crate::machine::{Machine, MachineConfig};
use crate::report::RunReport;
use mcsim_consistency::Model;
use mcsim_guard::SimError;
use mcsim_isa::Program;
use mcsim_proc::Techniques;
use serde::{Deserialize, Serialize};

/// Deterministic per-seed configuration variation for conformance
/// sweeps: different miss latencies, reorder-buffer sizes, and coherence
/// protocols shake out different interleavings of the same program
/// without sacrificing run-to-run reproducibility. Used by the
/// conformance tests and `mcsim oracle check`.
#[must_use]
pub fn conformance_config(model: Model, techniques: Techniques, seed: u64) -> MachineConfig {
    let mut cfg = MachineConfig::paper_with(model, techniques);
    cfg.mem.timings = mcsim_mem::MemTimings::with_miss_latency(20 + 2 * (seed % 7));
    cfg.proc.rob_size = [4, 8, 16, 64][(seed % 4) as usize];
    if seed.is_multiple_of(3) {
        cfg.mem.protocol = mcsim_mem::Protocol::Update;
    }
    cfg
}

/// One cell of a model × technique comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixRow {
    /// Consistency model.
    pub model: Model,
    /// Technique combination.
    pub techniques: Techniques,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Full report (stats, traces).
    pub report: RunReport,
}

/// A matrix cell whose run did not complete: the workload hit the
/// configured cycle budget — or failed with a structured diagnostic —
/// under one model/technique combination.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellFailure {
    /// Consistency model of the failed cell.
    pub model: Model,
    /// Technique combination of the failed cell.
    pub techniques: Techniques,
    /// Cycle count at which the run was cut off.
    pub cycles: u64,
    /// The structured failure, when the guard layer (rather than the
    /// plain cycle budget) stopped the run.
    pub error: Option<SimError>,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.error {
            Some(e) => write!(
                f,
                "workload failed under {}/{}: {e}",
                self.model, self.techniques
            ),
            None => write!(
                f,
                "workload timed out under {}/{} after {} cycles",
                self.model, self.techniques, self.cycles
            ),
        }
    }
}

impl std::error::Error for CellFailure {}

/// Runs `workload` (programs + machine setup) for every model × technique
/// combination, with `base` supplying all other configuration.
///
/// `workload` is called once per combination so each run gets fresh
/// programs; `setup` primes memory/caches on the built machine. Stops at
/// the first cell whose run times out and reports it as an error, so
/// callers (the sweep engine, CLIs) can record a failed cell instead of
/// aborting the whole experiment.
pub fn try_run_matrix(
    base: &MachineConfig,
    models: &[Model],
    techniques: &[Techniques],
    mut workload: impl FnMut() -> Vec<Program>,
    mut setup: impl FnMut(&mut Machine),
) -> Result<Vec<MatrixRow>, CellFailure> {
    let mut rows = Vec::with_capacity(models.len() * techniques.len());
    for &model in models {
        for &t in techniques {
            let mut cfg = *base;
            cfg.model = model;
            cfg.techniques = t;
            cfg.proc.techniques = t;
            let mut m = Machine::new(cfg, workload());
            setup(&mut m);
            let report = m.run();
            if report.timed_out || report.failure.is_some() {
                return Err(CellFailure {
                    model,
                    techniques: t,
                    cycles: report.cycles,
                    error: report.failure,
                });
            }
            rows.push(MatrixRow {
                model,
                techniques: t,
                cycles: report.cycles,
                report,
            });
        }
    }
    Ok(rows)
}

/// Alias of [`try_run_matrix`]: every caller gets the same structured
/// failure path (a [`CellFailure`] carrying the guard's [`SimError`]
/// when one produced it) instead of an unwind.
pub fn run_matrix(
    base: &MachineConfig,
    models: &[Model],
    techniques: &[Techniques],
    workload: impl FnMut() -> Vec<Program>,
    setup: impl FnMut(&mut Machine),
) -> Result<Vec<MatrixRow>, CellFailure> {
    try_run_matrix(base, models, techniques, workload, setup)
}

/// Renders matrix rows as a fixed-width table: one row per model, one
/// column per technique combination (cycles), plus the speedup of the
/// full proposal over the conventional implementation.
#[must_use]
pub fn format_table(title: &str, rows: &[MatrixRow]) -> String {
    use std::fmt::Write as _;
    let mut models: Vec<Model> = rows.iter().map(|r| r.model).collect();
    models.dedup();
    let mut techs: Vec<Techniques> = rows.iter().map(|r| r.techniques).collect();
    techs.sort_by_key(|t| (t.prefetch, t.speculative_loads));
    techs.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<6}", "model");
    for t in &techs {
        let _ = write!(out, " {:>10}", t.label());
    }
    let _ = writeln!(out, " {:>9}", "speedup");
    for m in models {
        let _ = write!(out, "{:<6}", m.name());
        let mut base = None;
        let mut best = None;
        for t in &techs {
            let cell = rows
                .iter()
                .find(|r| r.model == m && r.techniques == *t)
                .map(|r| r.cycles);
            match cell {
                Some(c) => {
                    if *t == Techniques::NONE {
                        base = Some(c);
                    }
                    if *t == Techniques::BOTH {
                        best = Some(c);
                    }
                    let _ = write!(out, " {c:>10}");
                }
                None => {
                    let _ = write!(out, " {:>10}", "-");
                }
            }
        }
        match (base, best) {
            (Some(b), Some(x)) if x > 0 => {
                let _ = writeln!(out, " {:>8.2}x", b as f64 / x as f64);
            }
            _ => {
                let _ = writeln!(out, " {:>9}", "-");
            }
        }
    }
    out
}

/// The largest relative spread of cycle counts across models for one
/// technique setting: `(max - min) / min`. The paper's equalization claim
/// is that this spread collapses once both techniques are on.
#[must_use]
pub fn model_spread(rows: &[MatrixRow], t: Techniques) -> f64 {
    let cycles: Vec<u64> = rows
        .iter()
        .filter(|r| r.techniques == t)
        .map(|r| r.cycles)
        .collect();
    match (cycles.iter().min(), cycles.iter().max()) {
        (Some(&min), Some(&max)) if min > 0 => (max - min) as f64 / min as f64,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::ProgramBuilder;

    fn two_store_workload() -> Vec<Program> {
        vec![ProgramBuilder::new("w")
            .store(0x1000u64, 1u64)
            .store(0x1100u64, 2u64)
            .halt()
            .build()
            .unwrap()]
    }

    #[test]
    fn matrix_runs_all_cells() {
        let rows = run_matrix(
            &MachineConfig::paper(),
            &Model::ALL_EXTENDED,
            &Techniques::ALL,
            two_store_workload,
            |_| {},
        )
        .expect("no cell fails");
        assert_eq!(
            rows.len(),
            Model::ALL_EXTENDED.len() * Techniques::ALL.len()
        );
        // SC conventional is the slowest cell; RC+both among the fastest.
        let sc_base = rows
            .iter()
            .find(|r| r.model == Model::Sc && r.techniques == Techniques::NONE)
            .unwrap()
            .cycles;
        let rc_both = rows
            .iter()
            .find(|r| r.model == Model::Rc && r.techniques == Techniques::BOTH)
            .unwrap()
            .cycles;
        assert!(sc_base > rc_both);
    }

    #[test]
    fn equalization_spread_shrinks_with_both_techniques() {
        let rows = run_matrix(
            &MachineConfig::paper(),
            &Model::ALL_EXTENDED,
            &[Techniques::NONE, Techniques::BOTH],
            two_store_workload,
            |_| {},
        )
        .expect("no cell fails");
        let before = model_spread(&rows, Techniques::NONE);
        let after = model_spread(&rows, Techniques::BOTH);
        assert!(
            after < before,
            "techniques must narrow the model gap: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn try_run_matrix_reports_timeout_as_failed_cell() {
        let mut cfg = MachineConfig::paper();
        cfg.max_cycles = 3; // far below any real run
        let err = try_run_matrix(
            &cfg,
            &[Model::Sc],
            &[Techniques::NONE],
            two_store_workload,
            |_| {},
        )
        .expect_err("a 3-cycle budget must time out");
        assert_eq!(err.model, Model::Sc);
        assert_eq!(err.techniques, Techniques::NONE);
        assert!(err.to_string().contains("timed out"));
    }

    #[test]
    fn table_renders() {
        let rows = run_matrix(
            &MachineConfig::paper(),
            &[Model::Sc, Model::Rc],
            &[Techniques::NONE, Techniques::BOTH],
            two_store_workload,
            |_| {},
        )
        .expect("no cell fails");
        let t = format_table("demo", &rows);
        assert!(t.contains("SC"));
        assert!(t.contains("RC"));
        assert!(t.contains("speedup"));
    }
}
