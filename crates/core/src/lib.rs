//! # mcsim-core — the multiprocessor machine
//!
//! Ties N out-of-order cores ([`mcsim_proc::Processor`]) to the coherent
//! memory system ([`mcsim_mem::MemorySystem`]) under a deterministic cycle
//! loop, and provides everything an experiment needs around them:
//!
//! * [`machine`] — [`Machine`] and [`MachineConfig`]: build, pre-load
//!   memory/caches, run to completion, get a [`RunReport`].
//! * [`report`] — serializable run results: cycle counts, per-core and
//!   memory statistics, final register files, event traces.
//! * [`oracle`] — a reference *sequentially consistent* executor: it
//!   enumerates every interleaving of the per-processor programs executed
//!   on an atomic memory and returns the set of legal final states.
//!   Litmus tests check that every simulated execution under SC (with any
//!   technique combination) lands in this set — the correctness backstop
//!   for the speculation machinery.
//! * [`harness`] — experiment helpers: run a model × technique matrix and
//!   format the comparison tables of EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod machine;
pub mod oracle;
pub mod report;
pub mod trace;

pub use harness::{format_table, model_spread, run_matrix, try_run_matrix, CellFailure, MatrixRow};
pub use machine::{Machine, MachineConfig, RunTelemetry};
pub use mcsim_guard::{
    FaultKind, GuardConfig, InvariantKind, SimError, SimErrorKind, StallClass, StallReport,
};
pub use oracle::{sc_outcomes, OracleConfig, Outcome};
pub use report::RunReport;
pub use trace::{render_breakdown, render_timeline};
