//! # mcsim-core — the multiprocessor machine
//!
//! Ties N out-of-order cores ([`mcsim_proc::Processor`]) to the coherent
//! memory system ([`mcsim_mem::MemorySystem`]) under a deterministic cycle
//! loop, and provides everything an experiment needs around them:
//!
//! * [`machine`] — [`Machine`] and [`MachineConfig`]: build, pre-load
//!   memory/caches, run to completion, get a [`RunReport`].
//! * [`report`] — serializable run results: cycle counts, per-core and
//!   memory statistics, final register files, event traces.
//! * [`oracle`] — re-export of `mcsim-oracle`, the per-model execution
//!   enumerator: the complete set of allowed final states under each
//!   consistency model (SC membership is the paper's §4.2 correctness
//!   statement; the conformance tests check every model against it).
//! * [`harness`] — experiment helpers: run a model × technique matrix and
//!   format the comparison tables of EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod machine;
pub mod report;
pub mod trace;

pub use mcsim_oracle as oracle;

pub use harness::{
    conformance_config, format_table, model_spread, run_matrix, try_run_matrix, CellFailure,
    MatrixRow,
};
pub use machine::{Machine, MachineConfig, RunTelemetry};
pub use mcsim_guard::{
    FaultKind, GuardConfig, InvariantKind, SimError, SimErrorKind, StallClass, StallReport,
};
pub use mcsim_oracle::{sc_outcomes, OracleConfig, Outcome};
pub use report::RunReport;
pub use trace::{render_breakdown, render_timeline};
