//! The multiprocessor machine and its configuration.

use crate::report::RunReport;
use mcsim_consistency::Model;
use mcsim_isa::{Addr, Program};
use mcsim_mem::{MemConfig, MemorySystem};
use mcsim_proc::{ProcConfig, Processor, Techniques};
use serde::{Deserialize, Serialize};

/// Everything needed to build a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Consistency model every core enforces.
    pub model: Model,
    /// The paper's technique switches (applied to every core).
    pub techniques: Techniques,
    /// Core microarchitecture (its `techniques` field is overridden by
    /// [`MachineConfig::techniques`] at build time).
    pub proc: ProcConfig,
    /// Memory-system parameters.
    pub mem: MemConfig,
    /// Safety bound: the run aborts (with `timed_out` set in the report)
    /// after this many cycles.
    pub max_cycles: u64,
    /// Record per-core event traces (Figure 5 style).
    pub trace: bool,
}

impl MachineConfig {
    /// The paper's calibration: ideal frontend, 1-cycle hits, 100-cycle
    /// clean misses, invalidation protocol, SC with both techniques off.
    #[must_use]
    pub fn paper() -> Self {
        MachineConfig {
            model: Model::Sc,
            techniques: Techniques::NONE,
            proc: ProcConfig::paper(Techniques::NONE),
            mem: MemConfig::paper(),
            max_cycles: 2_000_000,
            trace: false,
        }
    }

    /// Paper calibration with a chosen model and techniques.
    #[must_use]
    pub fn paper_with(model: Model, techniques: Techniques) -> Self {
        MachineConfig {
            model,
            techniques,
            proc: ProcConfig::paper(techniques),
            ..Self::paper()
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper()
    }
}

/// A shared-memory multiprocessor: one program per processor.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    procs: Vec<Processor>,
    cycle: u64,
}

impl Machine {
    /// Builds a machine with one core per program.
    ///
    /// # Panics
    /// If `programs` is empty or a configuration is invalid.
    #[must_use]
    pub fn new(cfg: MachineConfig, programs: Vec<Program>) -> Self {
        assert!(!programs.is_empty(), "need at least one program");
        let mem = MemorySystem::new(cfg.mem, programs.len());
        let mut proc_cfg = cfg.proc;
        proc_cfg.techniques = cfg.techniques;
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(i, prog)| {
                let mut p = Processor::new(i, proc_cfg, cfg.model, prog);
                if cfg.trace {
                    p.enable_trace();
                }
                p
            })
            .collect();
        Machine {
            cfg,
            mem,
            procs,
            cycle: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of processors.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.procs.len()
    }

    /// Writes the initial memory image (call before running).
    pub fn write_memory(&mut self, addr: impl Into<Addr>, value: u64) {
        self.mem.write_initial(addr.into(), value);
    }

    /// Pre-warms a processor's cache with a line (the paper's examples
    /// assume, e.g., `read D (hit)`).
    pub fn preload_cache(&mut self, proc: usize, addr: impl Into<Addr>, exclusive: bool) {
        self.mem.preload(proc, addr.into(), exclusive);
    }

    /// The coherent value of an address right now.
    #[must_use]
    pub fn read_memory(&self, addr: impl Into<Addr>) -> u64 {
        self.mem.read_coherent(addr.into())
    }

    /// Access to a core (for inspecting registers/stats mid-run).
    #[must_use]
    pub fn proc(&self, i: usize) -> &Processor {
        &self.procs[i]
    }

    /// The memory system (for inspecting stats mid-run).
    #[must_use]
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances one cycle; returns `true` when every core has halted.
    pub fn step(&mut self) -> bool {
        self.mem.tick(self.cycle);
        let mut all_halted = true;
        for p in &mut self.procs {
            p.tick(self.cycle, &mut self.mem);
            all_halted &= p.halted();
        }
        self.cycle += 1;
        all_halted
    }

    /// Runs to completion (or `max_cycles`) and produces the report.
    #[must_use]
    pub fn run(mut self) -> RunReport {
        let mut timed_out = true;
        while self.cycle < self.cfg.max_cycles {
            if self.step() {
                timed_out = false;
                break;
            }
        }
        self.into_report(timed_out)
    }

    /// Finalizes a (possibly manually stepped) machine into a report.
    #[must_use]
    pub fn into_report(mut self, timed_out: bool) -> RunReport {
        let cycles = self
            .procs
            .iter()
            .map(|p| p.stats().halted_at)
            .max()
            .unwrap_or(0);
        let per_proc: Vec<_> = self.procs.iter().map(|p| *p.stats()).collect();
        let mut total = mcsim_proc::ProcStats::default();
        for s in &per_proc {
            total.merge(s);
        }
        let regfiles = self.procs.iter().map(|p| p.regfile().clone()).collect();
        let traces = self.procs.iter_mut().map(Processor::take_trace).collect();
        RunReport {
            cycles,
            timed_out,
            per_proc,
            total,
            mem: *self.mem.stats(),
            regfiles,
            traces,
            memory: self.mem.snapshot_coherent(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_isa::reg::{R1, R2};
    use mcsim_isa::ProgramBuilder;

    #[test]
    fn two_processor_message_passing_eventually_delivers() {
        // P0: data = 42; flag = 1 (release).
        // P1: spin flag == 1 (acquire); read data.
        let p0 = ProgramBuilder::new("producer")
            .store(0x1000u64, 42u64)
            .store_release(0x2000u64, 1u64)
            .halt()
            .build()
            .unwrap();
        let p1 = ProgramBuilder::new("consumer")
            .spin_until(0x2000, 1, R1)
            .load(R2, 0x1000u64)
            .halt()
            .build()
            .unwrap();
        for model in Model::ALL {
            for t in Techniques::ALL {
                let cfg = MachineConfig::paper_with(model, t);
                let report = Machine::new(cfg, vec![p0.clone(), p1.clone()]).run();
                assert!(!report.timed_out, "{model}/{t} timed out");
                assert_eq!(report.reg(1, R2), 42, "{model}/{t}: data must follow flag");
            }
        }
    }

    #[test]
    fn single_core_report_fields() {
        let prog = ProgramBuilder::new("t")
            .store(0x100u64, 5u64)
            .halt()
            .build()
            .unwrap();
        let report = Machine::new(MachineConfig::paper(), vec![prog]).run();
        assert!(!report.timed_out);
        assert_eq!(report.per_proc.len(), 1);
        assert!(report.cycles >= 100);
        assert_eq!(report.total.stores, 1);
    }

    #[test]
    fn timeout_reported() {
        // A genuine infinite spin: flag never set.
        let prog = ProgramBuilder::new("t")
            .spin_until(0x2000, 1, R1)
            .halt()
            .build()
            .unwrap();
        let mut cfg = MachineConfig::paper_with(Model::Rc, Techniques::BOTH);
        cfg.max_cycles = 5_000;
        let report = Machine::new(cfg, vec![prog]).run();
        assert!(report.timed_out);
    }

    #[test]
    fn preload_makes_first_access_hit() {
        let prog = ProgramBuilder::new("t")
            .load(R1, 0x100u64)
            .halt()
            .build()
            .unwrap();
        let mut m = Machine::new(MachineConfig::paper(), vec![prog]);
        m.write_memory(0x100u64, 9);
        m.preload_cache(0, 0x100u64, false);
        let report = m.run();
        assert_eq!(report.reg(0, R1), 9);
        assert!(report.cycles < 10, "preloaded line hits: {}", report.cycles);
        assert_eq!(report.mem.demand_hits, 1);
    }

    #[test]
    fn contended_lock_serializes_critical_sections() {
        // Both processors increment a counter under a lock; the final
        // value must be exactly 2 under every model/technique combination
        // (atomicity + mutual exclusion).
        let worker = |name: &str| {
            ProgramBuilder::new(name)
                .lock(0x40, R1)
                .load(R2, 0x1000u64)
                .alu(R2, mcsim_isa::AluOp::Add, R2, 1u64)
                .store(0x1000u64, R2)
                .unlock(0x40)
                .halt()
                .build()
                .unwrap()
        };
        for model in Model::ALL {
            for t in Techniques::ALL {
                let cfg = MachineConfig::paper_with(model, t);
                let mut m = Machine::new(cfg, vec![worker("w0"), worker("w1")]);
                m.write_memory(0x1000u64, 0);
                let report = m.run();
                assert!(!report.timed_out, "{model}/{t}");
                assert_eq!(
                    report.mem_word(0x1000),
                    2,
                    "{model}/{t}: lost update — mutual exclusion broken"
                );
                assert_eq!(report.mem_word(0x40), 0, "{model}/{t}: lock released");
            }
        }
    }
}
